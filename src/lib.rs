//! Facade crate for the Warp systolic array compiler reproduction
//! (Gross & Lam, *Compilation for a High-performance Systolic Array*,
//! PLDI 1986).
//!
//! This crate re-exports the workspace crates under stable module names so
//! downstream users can depend on a single crate:
//!
//! ```
//! use warp::compiler::{compile, CompileOptions};
//!
//! let source = warp::compiler::corpus::POLYNOMIAL;
//! let module = compile(source, &CompileOptions::default()).expect("compiles");
//! assert!(module.skew.min_skew >= 0);
//! ```

pub use w2_lang as w2;
pub use warp_common as common;
pub use warp_compiler as compiler;
pub use warp_host as host;
pub use warp_iu as iu;
pub use warp_oracle as oracle;
pub use warp_service as service;
pub use warp_sim as sim;
pub use warp_skew as skew;

pub use warp_cell as cell;
pub use warp_ir as ir;
