//! The standalone `.w2` files under `corpus/` stay in sync with the
//! canonical sources in `warp_compiler::corpus`, and all of them pass
//! the front end.

use warp::compiler::corpus;

fn read(name: &str) -> String {
    let path = format!("{}/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn files_match_canonical_sources() {
    for (file, canon) in [
        ("polynomial.w2", corpus::POLYNOMIAL.to_owned()),
        ("conv1d.w2", corpus::ONED_CONV.to_owned()),
        ("binop.w2", corpus::BINOP.to_owned()),
        ("colorseg.w2", corpus::COLORSEG.to_owned()),
        ("mandelbrot.w2", corpus::MANDELBROT.to_owned()),
        ("fft16.w2", corpus::fft_source(16)),
        ("matmul_2x4x4.w2", corpus::matmul_source(2, 4, 4, 2)),
    ] {
        assert_eq!(read(file), canon.trim_start(), "{file} is out of sync");
    }
}

#[test]
fn files_compile() {
    for file in [
        "polynomial.w2",
        "conv1d.w2",
        "binop.w2",
        "colorseg.w2",
        "mandelbrot.w2",
        "fft16.w2",
        "matmul_2x4x4.w2",
    ] {
        let src = read(file);
        warp::compiler::compile(&src, &warp::compiler::CompileOptions::default())
            .unwrap_or_else(|e| panic!("{file} failed to compile:\n{e}"));
    }
}
