//! The oracle vs the simulator, end to end, on every standalone
//! corpus program.
//!
//! Each `corpus/*.w2` file is compiled through the full `Session`
//! pipeline and simulated on seeded inputs; the result must agree
//! **bitwise** with the reference interpreter in `warp-oracle` — both
//! the final `out` parameters and every word of the boundary output
//! streams. This is the hand-written-corpus half of the differential
//! harness (`w2c --differential` covers generated programs) and the
//! test the CI `differential-smoke` job runs.

use warp::compiler::differential::{check_case, CaseOutcome, DiffOptions};

fn read(name: &str) -> String {
    let path = format!("{}/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

const CORPUS: [&str; 7] = [
    "polynomial.w2",
    "conv1d.w2",
    "binop.w2",
    "colorseg.w2",
    "mandelbrot.w2",
    "fft16.w2",
    "matmul_2x4x4.w2",
];

/// Corpus programs are bigger than generated ones (colorseg runs >10M
/// cell cycles), so lift the fuzzing-oriented budgets.
fn corpus_opts() -> DiffOptions {
    DiffOptions {
        max_cell_cycles: 0,
        case_timeout: std::time::Duration::from_secs(120),
        ..DiffOptions::default()
    }
}

#[test]
fn corpus_agrees_with_oracle() {
    // Both cell-codegen modes must agree bitwise with the oracle: the
    // modulo-scheduled default and the `--no-pipeline` list-scheduled
    // baseline (check_case pins reassociation off, so pipelining may
    // not change a single output bit).
    for pipeline in [true, false] {
        let opts = DiffOptions {
            pipeline,
            ..corpus_opts()
        };
        for file in CORPUS {
            // Two input seeds per program: catches value-dependent paths
            // (e.g. mandelbrot's escape conditional) on different data.
            for input_seed in [1u64, 0xDEAD_BEEF] {
                let outcome = check_case(&read(file), input_seed, &opts);
                assert!(
                    matches!(outcome, CaseOutcome::Agree),
                    "{file} (input seed {input_seed}, pipeline {pipeline}): {outcome:?}"
                );
            }
        }
    }
}

#[test]
fn injected_corruption_is_visible_on_every_corpus_program() {
    // `corrupt=X:0` flips mantissa bits of one in-flight word and trips
    // no machine invariant — only the oracle comparison can catch it.
    // If any corpus program let it through, the differential harness
    // would be blind on that program's communication pattern.
    let opts = DiffOptions {
        inject: Some("seed=5,corrupt=X:0".parse().expect("valid spec")),
        ..corpus_opts()
    };
    for file in CORPUS {
        let outcome = check_case(&read(file), 1, &opts);
        assert!(
            matches!(outcome, CaseOutcome::Mismatch(_)),
            "{file}: corruption not detected: {outcome:?}"
        );
    }
}
