//! Integration tests for the `w2c` command line driver.

use std::path::PathBuf;
use std::process::Command;

fn w2c() -> Command {
    // cargo builds test binaries into target/debug/deps; the CLI lives
    // one level up.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("target");
    path.push("debug");
    path.push("w2c");
    Command::new(path)
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("w2c-test-{name}-{}.w2", std::process::id()));
    std::fs::write(&p, contents).expect("write temp source");
    p
}

const DOUBLE: &str = "module double (xs in, ys out)\nfloat xs[4];\nfloat ys[4];\n\
    cellprogram (cid : 0 : 0)\nbegin\n  function f\n  begin\n    float v;\n    int i;\n\
    for i := 0 to 3 do begin\n      receive (L, X, v, xs[i]);\n      send (R, X, v + v, ys[i]);\n\
    end;\n  end\n  call f;\nend\n";

#[test]
fn compiles_runs_and_checks() {
    let src = write_temp("ok", DOUBLE);
    let out = w2c()
        .arg(&src)
        .args(["--run", "xs=1,2,3,4", "--check", "--emit", "cell"])
        .output()
        .expect("w2c runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("compiled `double`"), "{stdout}");
    assert!(stdout.contains("ys = [2, 4, 6, 8]"), "{stdout}");
    assert!(
        stdout.contains("agrees with the reference interpreter"),
        "{stdout}"
    );
    assert!(stdout.contains("recv"), "listing expected: {stdout}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn reports_diagnostics_with_location() {
    let src = write_temp("bad", "module broken (a in)\nfloat a[4];\ncellprogram (c : 0 : 0)\nbegin\n  function f\n  begin\n    float x;\n    x := zz;\n  end\n  call f;\nend\n");
    let out = w2c().arg(&src).output().expect("w2c runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("undeclared variable `zz`"), "{stderr}");
    assert!(stderr.contains("line 8"), "{stderr}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn corpus_shortcut_works() {
    let out = w2c()
        .args(["--corpus", "polynomial"])
        .output()
        .expect("w2c runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compiled `polynomial`"), "{stdout}");
    assert!(stdout.contains("for 10 cells"), "{stdout}");
}
