//! Integration tests for the `w2c` command line driver.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Once;

fn w2c() -> Command {
    // `cargo test` on the root package does not build other members'
    // binaries, so build the CLI once before the first use.
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "warp-compiler", "--bin", "w2c"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .status()
            .expect("cargo runs");
        assert!(status.success(), "building w2c failed");
    });
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("target");
    path.push("debug");
    path.push("w2c");
    Command::new(path)
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("w2c-test-{name}-{}.w2", std::process::id()));
    std::fs::write(&p, contents).expect("write temp source");
    p
}

const DOUBLE: &str = "module double (xs in, ys out)\nfloat xs[4];\nfloat ys[4];\n\
    cellprogram (cid : 0 : 0)\nbegin\n  function f\n  begin\n    float v;\n    int i;\n\
    for i := 0 to 3 do begin\n      receive (L, X, v, xs[i]);\n      send (R, X, v + v, ys[i]);\n\
    end;\n  end\n  call f;\nend\n";

#[test]
fn compiles_runs_and_checks() {
    let src = write_temp("ok", DOUBLE);
    let out = w2c()
        .arg(&src)
        .args(["--run", "xs=1,2,3,4", "--check", "--emit", "cell"])
        .output()
        .expect("w2c runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("compiled `double`"), "{stdout}");
    assert!(stdout.contains("ys = [2, 4, 6, 8]"), "{stdout}");
    assert!(
        stdout.contains("agrees with the reference interpreter"),
        "{stdout}"
    );
    assert!(stdout.contains("recv"), "listing expected: {stdout}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn reports_diagnostics_with_location() {
    let src = write_temp("bad", "module broken (a in)\nfloat a[4];\ncellprogram (c : 0 : 0)\nbegin\n  function f\n  begin\n    float x;\n    x := zz;\n  end\n  call f;\nend\n");
    let out = w2c().arg(&src).output().expect("w2c runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("undeclared variable `zz`"), "{stderr}");
    assert!(stderr.contains("line 8"), "{stderr}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn corpus_shortcut_works() {
    let out = w2c()
        .args(["--corpus", "polynomial"])
        .output()
        .expect("w2c runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compiled `polynomial`"), "{stdout}");
    assert!(stdout.contains("for 10 cells"), "{stdout}");
}

#[test]
fn time_passes_prints_all_eight_stages() {
    let out = w2c()
        .args(["--corpus", "polynomial", "--time-passes"])
        .output()
        .expect("w2c runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("per-pass timing"), "{stdout}");
    for pass in [
        "frontend",
        "comm",
        "lower",
        "decompose",
        "cell-codegen",
        "skew",
        "iu-codegen",
        "host-codegen",
    ] {
        assert!(stdout.contains(pass), "missing pass `{pass}`: {stdout}");
    }
    assert!(stdout.contains("% of total"), "{stdout}");
}

/// The `--dump-after lower` output for the polynomial program is
/// deterministic; the golden file pins it so IR or dump-format changes
/// are reviewed deliberately (regenerate with
/// `w2c --corpus polynomial --dump-after lower`).
#[test]
fn dump_after_lower_matches_golden() {
    let out = w2c()
        .args(["--corpus", "polynomial", "--dump-after", "lower"])
        .output()
        .expect("w2c runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let dump = stdout
        .find("=== dump after lower")
        .map(|i| &stdout[i..])
        .expect("dump section present");
    let mut golden = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    golden.push("tests/golden/polynomial_lower.dump");
    let want = std::fs::read_to_string(golden).expect("golden file");
    assert_eq!(dump, want, "lower dump drifted from tests/golden");
}

#[test]
fn unknown_emit_kind_is_a_usage_error() {
    let out = w2c()
        .args(["--corpus", "polynomial", "--emit", "object"])
        .output()
        .expect("w2c runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown --emit kind `object`"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_dump_pass_is_a_usage_error() {
    let out = w2c()
        .args(["--corpus", "polynomial", "--dump-after", "linker"])
        .output()
        .expect("w2c runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown pass `linker`"), "{stderr}");
    assert!(
        stderr.contains("--dump-after PASS: one of frontend"),
        "{stderr}"
    );
}

#[test]
fn emit_kinds_map_to_pass_dumps() {
    let out = w2c()
        .args(["--corpus", "polynomial", "--emit", "hir", "--emit", "skew"])
        .output()
        .expect("w2c runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("=== dump after frontend (hir) ==="),
        "{stdout}"
    );
    assert!(
        stdout.contains("=== dump after skew (skew-report) ==="),
        "{stdout}"
    );
}

#[test]
fn corpus_all_batch_compiles_every_program() {
    let out = w2c().args(["--corpus", "all"]).output().expect("w2c runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["polynomial", "conv1d", "binop", "colorseg", "mandelbrot"] {
        assert!(stdout.contains(name), "missing `{name}`: {stdout}");
    }
    // Output rows follow the fixed corpus order, not completion order.
    let poly = stdout.find("polynomial").expect("row");
    let mandel = stdout.find("mandelbrot").expect("row");
    assert!(poly < mandel, "deterministic row order: {stdout}");
}

#[test]
fn audit_guarantees_passes_on_a_single_module() {
    let src = write_temp("audit", DOUBLE);
    let out = w2c()
        .arg(&src)
        .arg("--audit-guarantees")
        .output()
        .expect("w2c runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {stdout}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("guarantee audit `double`: PASS"),
        "{stdout}"
    );
    assert!(stdout.contains("nominal"), "{stdout}");
    assert!(stdout.contains("detect:hang"), "{stdout}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn corpus_all_audit_summarizes_per_program() {
    let out = w2c()
        .args(["--corpus", "all", "--audit-guarantees"])
        .output()
        .expect("w2c runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {stdout}",
        String::from_utf8_lossy(&out.stderr)
    );
    for name in ["polynomial", "conv1d", "binop", "colorseg", "mandelbrot"] {
        assert!(stdout.contains(name), "missing `{name}`: {stdout}");
    }
    assert!(stdout.contains("guarantee audit:"), "{stdout}");
    assert!(stdout.contains("0 failed"), "{stdout}");
}

#[test]
fn inject_prints_a_fault_report_and_fails() {
    let src = write_temp("inject", DOUBLE);
    let out = w2c()
        .arg(&src)
        .args(["--inject", "seed=3,truncate=X:2", "--run", "xs=1,2,3,4"])
        .output()
        .expect("w2c runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("injecting: seed=3,truncate=X:2"),
        "{stdout}"
    );
    assert!(stdout.contains("fault report: queue underflow"), "{stdout}");
    assert!(stdout.contains("injected faults:"), "{stdout}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn inject_with_no_trip_succeeds() {
    let src = write_temp("inject-ok", DOUBLE);
    // Corrupting a data word violates no invariant; the run survives.
    let out = w2c()
        .arg(&src)
        .args(["--inject", "seed=3,corrupt=X:1"])
        .output()
        .expect("w2c runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("survived the fault plan"), "{stdout}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn malformed_inject_spec_is_a_usage_error() {
    let out = w2c()
        .args(["--corpus", "polynomial", "--inject", "seed=x"])
        .output()
        .expect("w2c runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --inject spec"), "{stderr}");
}

#[test]
fn zero_cells_is_a_usage_error() {
    let out = w2c()
        .args(["--corpus", "polynomial", "--cells", "0"])
        .output()
        .expect("w2c runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cells must be at least 1"), "{stderr}");
}

#[test]
fn corpus_all_prints_batch_summary() {
    let out = w2c().args(["--corpus", "all"]).output().expect("w2c runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("batch: 5 ok (0 degraded), 0 failed, 0 timed out, 0 quarantined"),
        "{stdout}"
    );
    assert!(stdout.contains("<- slowest"), "{stdout}");
}

/// `DOUBLE` with one extra cell-local variable that is never used:
/// sema warns, the compile still succeeds.
const DOUBLE_UNUSED: &str = "module double (xs in, ys out)\nfloat xs[4];\nfloat ys[4];\n\
    cellprogram (cid : 0 : 0)\nbegin\n  function f\n  begin\n    float v;\n    float w;\n    int i;\n\
    for i := 0 to 3 do begin\n      receive (L, X, v, xs[i]);\n      send (R, X, v + v, ys[i]);\n\
    end;\n  end\n  call f;\nend\n";

#[test]
fn warnings_go_to_stderr_but_do_not_fail_the_compile() {
    let src = write_temp("warn", DOUBLE_UNUSED);
    let out = w2c().arg(&src).output().expect("w2c runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "warnings must not fail the compile: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning: unused cell-local variable `w`"),
        "{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compiled `double`"), "{stdout}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn error_diagnostics_exit_nonzero() {
    // Any error-severity diagnostic must turn into a non-zero exit —
    // scripts and CI depend on the exit code, not on parsing stderr.
    let src = write_temp(
        "error-exit",
        "module broken (a in)\nfloat a[4];\ncellprogram (c : 0 : 0)\nbegin\n  function f\n  begin\n    float x;\n    x := zz;\n  end\n  call f;\nend\n",
    );
    let out = w2c().arg(&src).output().expect("w2c runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn differential_smoke_is_clean() {
    let out = w2c()
        .args(["--differential", "5", "--seed", "1"])
        .output()
        .expect("w2c runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {stdout}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("5 agree"), "{stdout}");
    assert!(stdout.contains("0 mismatch"), "{stdout}");
}

#[test]
fn differential_check_agrees_on_a_file() {
    let src = write_temp("diff-check", DOUBLE);
    let out = w2c()
        .arg(&src)
        .args(["--differential-check", "--seed", "7"])
        .output()
        .expect("w2c runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {stdout}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("simulator agrees with the oracle"),
        "{stdout}"
    );
    let _ = std::fs::remove_file(src);
}

#[test]
fn differential_inject_fails_and_writes_shrunk_repros() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("w2c-test-repros-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = w2c()
        .args(["--differential", "5", "--seed", "1"])
        .args(["--inject", "skew=-1"])
        .arg("--repro-dir")
        .arg(&dir)
        .output()
        .expect("w2c runs");
    // skew=-1 ships every word one cycle early; at least one of the
    // first five generated programs must notice.
    assert_eq!(out.status.code(), Some(1));
    let repros: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("repro dir created")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with("case-") && n.ends_with(".w2") && !n.ends_with(".orig.w2")
            })
        })
        .collect();
    assert!(!repros.is_empty(), "no shrunk repro written");
    let repro = std::fs::read_to_string(&repros[0]).expect("read repro");
    assert!(
        repro.contains("--differential-check"),
        "repro must carry its replay command: {repro}"
    );
    let source_lines = repro
        .lines()
        .filter(|l| !l.trim_start().starts_with("/*"))
        .count();
    assert!(
        source_lines <= 10,
        "shrunk repro should be minimal, got {source_lines} source lines:\n{repro}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_all_rejects_single_module_flags() {
    let out = w2c()
        .args(["--corpus", "all", "--run", "xs=1"])
        .output()
        .expect("w2c runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--corpus all"), "{stderr}");
}
