//! Acceptance test for the kill/restart recovery soak: across ≥ 50
//! fired crash-points under seeded disk-fault injection, the store
//! must never serve a corrupt artifact (bitwise against fresh
//! compiles), account for every entry at each recovery scan, and
//! produce an identical report for an identical seed.

use warp_compiler::crash::{run_crash_soak, CrashSoakConfig};

#[test]
fn crash_soak_meets_the_acceptance_bar() {
    let config = CrashSoakConfig::default();
    let report = run_crash_soak(&config);
    assert!(
        report.is_clean(),
        "durability invariants violated: {:#?}",
        report.violations
    );
    assert_eq!(report.corrupt_served, 0, "corrupt artifact served");
    assert!(
        report.crash_points_fired >= 50,
        "only {} of {} lives actually crashed — below the ≥ 50 bar",
        report.crash_points_fired,
        config.lives
    );
    // The ordeal must still leave a useful store: the final fault-free
    // restart serves the whole universe warm.
    assert!(report.warm_hit_rate > 0.0, "nothing survived to serve warm");
    assert!(report.recovered_total > 0);
    // Faults actually fired — the run was not accidentally quiet.
    assert!(report.faults.total() > 0, "no background faults fired");
    assert!(report.ttl_expired > 0, "negative-TTL phase never expired");
}

#[test]
fn crash_soak_identity_is_a_function_of_the_seed() {
    let config = CrashSoakConfig {
        seed: 0xD15C_FA17,
        lives: 24,
        ..CrashSoakConfig::default()
    };
    let a = run_crash_soak(&config);
    let b = run_crash_soak(&config);
    assert_eq!(a.identity(), b.identity());
    assert_eq!(a.violations, b.violations);
    // A different seed must explore a different schedule (the armed
    // crash-points differ), or the "seeded" knob is dead.
    let c = run_crash_soak(&CrashSoakConfig {
        seed: 0xD15C_FA18,
        lives: 24,
        ..CrashSoakConfig::default()
    });
    assert_ne!(
        a.lives.iter().map(|l| l.crash_armed_at).collect::<Vec<_>>(),
        c.lives.iter().map(|l| l.crash_armed_at).collect::<Vec<_>>(),
    );
}
