//! Extension: innermost-loop unrolling (DESIGN.md "optional features").
//!
//! Unrolling merges consecutive iterations into one basic block, so the
//! list scheduler overlaps them across the pipelined FPUs — the static
//! stand-in for software pipelining. These tests verify correctness is
//! preserved and throughput improves.

use warp::compiler::{compile, corpus, reference, CompileOptions};
use warp::ir::LowerOptions;

fn with_unroll(u: u32) -> CompileOptions {
    CompileOptions {
        lower: LowerOptions {
            unroll: u,
            ..LowerOptions::default()
        },
        ..CompileOptions::default()
    }
}

#[test]
fn unrolled_polynomial_is_correct_and_faster() {
    let src = corpus::polynomial_source(4, 64);
    let base = compile(&src, &CompileOptions::default()).expect("compiles");
    let unrolled = compile(&src, &with_unroll(4)).expect("compiles");

    let c = vec![0.5f32, -1.0, 0.25, 2.0];
    let z: Vec<f32> = (0..64).map(|i| -1.0 + i as f32 / 32.0).collect();
    let expect = reference::polynomial(&c, &z);

    let r0 = base.run(&[("c", &c), ("z", &z)]).expect("runs");
    let r4 = unrolled.run(&[("c", &c), ("z", &z)]).expect("runs");
    assert_eq!(r0.host.get("results").unwrap(), &expect[..]);
    assert_eq!(r4.host.get("results").unwrap(), &expect[..]);
    assert!(
        r4.cycles * 10 < r0.cycles * 9,
        "unrolled {} should be >10% faster than {}",
        r4.cycles,
        r0.cycles
    );
}

#[test]
fn unrolled_conv_is_correct() {
    let src = corpus::conv1d_source(3, 24);
    let unrolled = compile(&src, &with_unroll(4)).expect("compiles");
    let w = vec![0.25f32, 0.5, 0.25];
    let x: Vec<f32> = (0..24).map(|i| ((i * 5) % 11) as f32).collect();
    let r = unrolled.run(&[("w", &w), ("x", &x)]).expect("runs");
    assert_eq!(r.host.get("y").unwrap(), &reference::conv1d(&w, &x)[..]);
}

#[test]
fn unrolled_binop_is_correct() {
    let src = corpus::binop_source(4, 8);
    let unrolled = compile(&src, &with_unroll(8)).expect("compiles");
    let a: Vec<f32> = (0..32).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..32).map(|i| (i % 7) as f32 - 3.0).collect();
    let r = unrolled.run(&[("a", &a), ("b", &b)]).expect("runs");
    assert_eq!(r.host.get("c").unwrap(), &reference::binop(&a, &b)[..]);
}

#[test]
fn unrolled_matmul_is_correct() {
    let src = corpus::matmul_source(2, 4, 4, 2);
    let unrolled = compile(&src, &with_unroll(2)).expect("compiles");
    let a: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
    let b: Vec<f32> = (0..16).map(|i| ((i * 3) % 5) as f32).collect();
    let r = unrolled.run(&[("a", &a), ("b", &b)]).expect("runs");
    assert_eq!(
        r.host.get("c").unwrap(),
        &reference::matmul(&a, &b, 4, 4, 4)[..]
    );
}

#[test]
fn throughput_approaches_result_per_few_cycles() {
    // With unrolling, the polynomial inner loop packs several results
    // per iteration; results/cycle should rise substantially toward the
    // paper's one-result-per-cycle regime.
    let src = corpus::polynomial_source(4, 128);
    let base = compile(&src, &CompileOptions::default()).expect("compiles");
    let unrolled = compile(&src, &with_unroll(8)).expect("compiles");
    let c = vec![1.0f32; 4];
    let z = vec![1.0f32; 128];
    let r0 = base.run(&[("c", &c), ("z", &z)]).expect("runs");
    let r8 = unrolled.run(&[("c", &c), ("z", &z)]).expect("runs");
    let t0 = 128.0 / r0.cycles as f64;
    let t8 = 128.0 / r8.cycles as f64;
    assert!(
        t8 > 1.8 * t0,
        "unroll-8 throughput {t8:.4} should be ~2x+ the baseline {t0:.4}"
    );
}
