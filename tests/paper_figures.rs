//! Reproductions of the paper's figures and tables as assertions
//! (experiments E1–E7 of DESIGN.md). Each test states which artifact it
//! regenerates.

use warp::cell::CodeRegion;
use warp::skew::{
    analyze, bound_pair, extract, paper, ModelComparison, SkewMethod, SkewOptions, Timeline,
};
use warp::w2::parse_and_check;
use warp_common::Rat;
use warp_ir::comm;

/// Figure 3-1: comparing latencies between the SIMD and skewed
/// computation models. A 4-step stage whose fourth step needs the
/// previous stage's fourth-step result has a per-cell latency of 4 in
/// the SIMD model but only 1 in the skewed model.
#[test]
fn fig3_1_simd_vs_skewed_latency() {
    // Receive consumed at step 4 (index 3); result for the next cell
    // produced at step 4 — but the consumer needs it one step after the
    // producer in the paper's picture, i.e. the dependency allows a skew
    // of one step: recv at step 2 (index 2), send at step 3 (index 3).
    let stage = paper::fig_3_1_stage(4, 2, 3);
    let cmp = ModelComparison::of(&stage, &paper::paper_loops(), w2_lang::ast::Dir::Right);
    assert_eq!(cmp.simd_latency, 4, "SIMD latency = whole stage");
    assert_eq!(cmp.skewed_latency, 1, "skewed latency = minimum skew");
    // Through a 3-cell array (the figure's width):
    assert_eq!(cmp.simd_array_latency(3), 12);
    assert_eq!(cmp.skewed_array_latency(3), 3);
}

/// Figure 3-1, parameterized: the SIMD/skewed latency gap grows with the
/// stage length while the skew stays fixed by the dependency distance.
#[test]
fn fig3_1_gap_grows_with_stage_length() {
    for steps in [4u32, 8, 16, 32] {
        let stage = paper::fig_3_1_stage(steps as usize, steps - 2, steps - 1);
        let cmp = ModelComparison::of(&stage, &paper::paper_loops(), w2_lang::ast::Dir::Right);
        assert_eq!(cmp.simd_latency, u64::from(steps));
        assert_eq!(cmp.skewed_latency, 1);
    }
}

/// Figure 4-2: the polynomial program's send/receive matching. The
/// first cell consumes c[0] and forwards c[1..9] plus a balancing 0.0;
/// word counts on each channel are conserved (10 on X for coefficients
/// + 100 for data, 100 on Y).
#[test]
fn fig4_2_polynomial_channel_accounting() {
    let m = warp::compiler::compile(
        warp::compiler::corpus::POLYNOMIAL,
        &warp::compiler::CompileOptions::default(),
    )
    .expect("compiles");
    assert_eq!(m.skew.words_per_channel[&w2_lang::ast::Chan::X], 110);
    assert_eq!(m.skew.words_per_channel[&w2_lang::ast::Chan::Y], 100);
    // The host supplies exactly the sequence of Figure 4-2: 10
    // coefficients then 100 data points on X, 100 zero seeds on Y.
    assert_eq!(m.host.inputs[&w2_lang::ast::Chan::X].len(), 110);
    assert_eq!(m.host.inputs[&w2_lang::ast::Chan::Y].len(), 100);
}

/// Figure 5-1: programs with and without communication cycles.
#[test]
fn fig5_1_cycle_classification() {
    let wrap = |body: &str| {
        let src = format!(
            "module m (zs in, rs out) float zs[8]; float rs[8]; \
             cellprogram (cid : 0 : 3) begin function f begin float a, b; \
             {body} end call f; end"
        );
        comm::analyze(&parse_and_check(&src).expect("valid"))
    };
    // Program A: values sent are unrelated to values received.
    let a = wrap(
        "receive (L, X, a, zs[0]); send (R, X, 1.0); \
         receive (R, Y, b); send (L, Y, 2.0);",
    );
    assert!(!a.right_cycle && !a.left_cycle);
    assert!(a.is_mappable());

    // Program B: each cell forwards what it received — a right cycle.
    let b = wrap("receive (L, X, a, zs[0]); send (R, X, a);");
    assert!(b.right_cycle && !b.left_cycle);
    assert!(b.is_mappable());

    // Both kinds of cycle: not mappable onto the skewed model.
    let both = wrap(
        "receive (L, X, a, zs[0]); send (R, X, a); \
         receive (R, Y, b); send (L, Y, b, rs[0]);",
    );
    assert!(both.right_cycle && both.left_cycle);
    assert!(!both.is_mappable());
}

/// Figure 6-2 and Table 6-1: the straight-line example's I/O timing and
/// minimum skew of 3.
#[test]
fn table6_1_straight_line_skew() {
    let code = paper::fig_6_2_code();
    let tl = Timeline::build(&code, &paper::paper_loops());
    use w2_lang::ast::{Chan, Dir};
    // Table 6-1 rows: τ_O = (0, 5), τ_I = (1, 2), diffs (−1, 3).
    assert_eq!(tl.sends[&(Dir::Right, Chan::X)], vec![0, 5]);
    assert_eq!(tl.recvs[&(Dir::Left, Chan::X)], vec![1, 2]);
    assert_eq!(tl.min_skew(Dir::Right), 3);
    // The analytic method agrees exactly on this program.
    let stmts = extract(&code);
    assert_eq!(warp::skew::min_skew_bound(&stmts, Dir::Right), Ok(3));
}

/// Figure 6-3: two cells executing with minimum skew — the second
/// cell's inputs never precede the matching outputs, and input_1 shares
/// cycle 5 with output_1.
#[test]
fn fig6_3_two_cells_at_minimum_skew() {
    use w2_lang::ast::{Chan, Dir};
    let code = paper::fig_6_2_code();
    let tl = Timeline::build(&code, &paper::paper_loops());
    let outs = &tl.sends[&(Dir::Right, Chan::X)];
    let ins = &tl.recvs[&(Dir::Left, Chan::X)];
    let skew = 3i64;
    for (n, (&o, &i)) in outs.iter().zip(ins).enumerate() {
        let cell2_input = i as i64 + skew;
        assert!(
            cell2_input >= o as i64,
            "input {n} at {cell2_input} precedes output at {o}"
        );
    }
    // The figure's cycle-5 coincidence.
    assert_eq!(outs[1], 5);
    assert_eq!(ins[1] as i64 + skew, 5);
    // And the whole execution occupies cycles 0..=8 (cell 2 ends at 8).
    assert_eq!(skew as u64 + tl.span - 1, 8);
}

/// Tables 6-2, 6-3, 6-4: the loop program of Figure 6-4.
#[test]
fn tables_6_2_to_6_4_loop_program() {
    use w2_lang::ast::{Chan, Dir};
    let code = paper::fig_6_4_code();

    // Table 6-2: the exact timing of all ten inputs and outputs.
    let tl = Timeline::build(&code, &paper::paper_loops());
    let tau_i = &tl.recvs[&(Dir::Left, Chan::X)];
    let tau_o = &tl.sends[&(Dir::Right, Chan::X)];
    assert_eq!(tau_i, &vec![1, 2, 4, 5, 7, 8, 10, 11, 13, 14]);
    assert_eq!(tau_o, &vec![18, 19, 20, 21, 24, 25, 26, 29, 30, 31]);
    let diffs: Vec<i64> = tau_o
        .iter()
        .zip(tau_i)
        .map(|(&o, &i)| o as i64 - i as i64)
        .collect();
    assert_eq!(diffs, vec![17, 17, 16, 16, 17, 17, 16, 18, 17, 17]);
    assert_eq!(tl.min_skew(Dir::Right), 18);

    // Table 6-3: the five vectors (verified in detail in warp-skew's
    // unit tests; spot-check O(2) here).
    let stmts = extract(&code);
    let outputs: Vec<_> = stmts.iter().filter(|s| !s.is_recv).collect();
    let o2 = &outputs[2].tf;
    assert_eq!(
        o2.levels
            .iter()
            .map(|l| (l.r, l.n, l.s, l.l, l.t))
            .collect::<Vec<_>>(),
        vec![(2, 3, 4, 5, 24), (1, 1, 0, 1, 0)]
    );

    // Table 6-4: closed forms and domains.
    assert_eq!(o2.base(), Ok(Rat::new(52, 3)));
    assert_eq!(o2.slope(), Ok(Rat::new(5, 3)));
    let i0 = &stmts.iter().find(|s| s.is_recv).unwrap().tf;
    assert_eq!(i0.eval(4), Some(7));
    assert_eq!(i0.eval(3), None, "n=3 belongs to I(1)");

    // The paper's bound for the completely-overlapped pair is 17; ours
    // matches exactly. For the partially-overlapped pair the paper
    // bounds 17⅔; ours is at most that and still sound.
    let o0 = &outputs[0].tf;
    assert_eq!(bound_pair(o0, i0), Ok(Some(Rat::from(17))));
    let o4 = &outputs[4].tf;
    let b = bound_pair(o4, i0).expect("no overflow").expect("overlaps");
    assert!(b <= Rat::new(53, 3));

    // End to end, both skew methods safely cover the exact minimum.
    let exact = analyze(&code, &paper::paper_loops(), &SkewOptions::default()).unwrap();
    let analytic = analyze(
        &code,
        &paper::paper_loops(),
        &SkewOptions {
            method: SkewMethod::Analytic,
            ..SkewOptions::default()
        },
    )
    .unwrap();
    assert_eq!(exact.min_skew, 18);
    assert!(analytic.min_skew >= 18);
}

/// Table 6-5: the three operand allocations for `a[i,j+1]` and
/// `b[i+j,j]` and their costs.
#[test]
fn table6_5_iu_operand_allocation() {
    let rows = warp::iu::table_6_5();
    let costs: Vec<(usize, usize, usize)> = rows
        .iter()
        .map(|(_, c)| (c.registers, c.arith_ops, c.update_ops))
        .collect();
    assert_eq!(costs, vec![(3, 6, 2), (4, 2, 2), (5, 1, 3)]);
}

/// The paper's remark that loop programs like Figure 6-4 admit varying
/// skews: inserting extra delay before inputs does not reduce the
/// minimum skew (it is limited by the worst pair), and any skew at or
/// above the minimum keeps every pair safe.
#[test]
fn skew_above_minimum_is_always_safe() {
    use w2_lang::ast::{Chan, Dir};
    let tl = Timeline::build(&paper::fig_6_4_code(), &paper::paper_loops());
    let outs = &tl.sends[&(Dir::Right, Chan::X)];
    let ins = &tl.recvs[&(Dir::Left, Chan::X)];
    for extra in [0i64, 1, 5, 100] {
        let skew = 18 + extra;
        for (&o, &i) in outs.iter().zip(ins) {
            assert!(i as i64 + skew >= o as i64);
        }
    }
}

/// Sequencing sanity for the code regions the skew machinery consumes:
/// static and dynamic lengths of the Figure 6-4 program.
#[test]
fn fig6_4_program_shape() {
    let code = paper::fig_6_4_code();
    assert_eq!(code.dynamic_len(), 1 + 15 + 2 + 4 + 2 + 10 + 1);
    let n_loops = code
        .regions
        .iter()
        .filter(|r| matches!(r, CodeRegion::Loop { .. }))
        .count();
    assert_eq!(n_loops, 3);
}
