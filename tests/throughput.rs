//! Experiment E9: the paper's throughput claims.
//!
//! Table 7-1 notes that 1d-Conv and Polynomial reach "a throughput of
//! one result per cycle" on the real machine; that requires the
//! cross-iteration software pipelining of the authors' later work. This
//! reproduction schedules one loop iteration at a time, so the steady
//! state is one result per *iteration* — these tests pin the actual
//! numbers and the scaling shape (throughput independent of array
//! length, FLOPs proportional to both).

use warp::compiler::{compile, corpus, CompileOptions};

#[test]
fn polynomial_throughput_and_flops() {
    let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
    let c: Vec<f32> = vec![0.5; 10];
    let z: Vec<f32> = vec![1.0; 100];
    let r = m.run(&[("c", &c), ("z", &z)]).expect("runs");

    // 100 results + 110 coefficient words pass out of the array.
    assert_eq!(r.words_out, 210);
    // Each of the 10 cells does one multiply and one add per point.
    assert_eq!(r.fp_ops, 10 * 100 * 2);

    // Steady-state: one result per inner-loop iteration. The whole run
    // is fill + 100 iterations, so throughput ≥ 1 result per
    // (iteration length + small constant).
    let iter_len = inner_loop_len(&m.cell_code);
    let results_per_cycle = 100.0 / r.cycles as f64;
    assert!(
        results_per_cycle >= 0.8 / iter_len as f64,
        "throughput {results_per_cycle:.4} too low for iteration length {iter_len}"
    );
}

#[test]
fn throughput_is_independent_of_array_length() {
    // Pipeline mode: adding cells adds fill latency but not per-result
    // cost. Compare 2 vs 8 cells on proportional problems.
    let short = compile(
        &corpus::polynomial_source(2, 64),
        &CompileOptions::default(),
    )
    .unwrap();
    let long = compile(
        &corpus::polynomial_source(8, 64),
        &CompileOptions::default(),
    )
    .unwrap();
    let z = vec![0.5f32; 64];
    let r_short = short.run(&[("c", &[1.0; 2]), ("z", &z)]).expect("runs");
    let r_long = long.run(&[("c", &[1.0; 8]), ("z", &z)]).expect("runs");
    // The long pipeline costs only the extra fill (skew × extra cells),
    // not 4× the cycles.
    let fill_long = long.skew.pipeline_fill(8);
    let fill_short = short.skew.pipeline_fill(2);
    let extra = r_long.cycles as i64 - r_short.cycles as i64;
    assert!(
        extra <= (fill_long as i64 - fill_short as i64) + 64,
        "extra cycles {extra} exceed the expected fill difference"
    );
}

#[test]
fn peak_rate_scales_with_cells() {
    // Parallel FLOP capacity: 2 FLOP/cycle/cell. The polynomial uses
    // both units every iteration, so FLOP rate scales ~linearly in
    // cells once the pipeline is full.
    let m2 = compile(
        &corpus::polynomial_source(2, 128),
        &CompileOptions::default(),
    )
    .unwrap();
    let m8 = compile(
        &corpus::polynomial_source(8, 128),
        &CompileOptions::default(),
    )
    .unwrap();
    let z = vec![1.0f32; 128];
    let r2 = m2.run(&[("c", &[1.0; 2]), ("z", &z)]).unwrap();
    let r8 = m8.run(&[("c", &[1.0; 8]), ("z", &z)]).unwrap();
    let rate2 = r2.fp_ops as f64 / r2.cycles as f64;
    let rate8 = r8.fp_ops as f64 / r8.cycles as f64;
    assert!(
        rate8 > 3.0 * rate2,
        "8 cells should deliver ~4x the FLOP rate of 2 cells, got {rate2:.3} vs {rate8:.3}"
    );
}

#[test]
fn conv_throughput() {
    let m = compile(corpus::ONED_CONV, &CompileOptions::default()).expect("compiles");
    let w = vec![1.0f32; 9];
    let x = vec![1.0f32; 128];
    let r = m.run(&[("w", &w), ("x", &x)]).expect("runs");
    assert_eq!(r.fp_ops, 9 * 128 * 2, "one MAC per cell per sample");
    let iter_len = inner_loop_len(&m.cell_code);
    let results_per_cycle = 120.0 / r.cycles as f64;
    assert!(results_per_cycle >= 0.8 / iter_len as f64);
}

/// Longest loop-body length in the program (the steady-state iteration
/// interval).
fn inner_loop_len(code: &warp::cell::CellCode) -> u64 {
    fn walk(r: &warp::cell::CodeRegion) -> u64 {
        match r {
            warp::cell::CodeRegion::Block(_) => 0,
            warp::cell::CodeRegion::Loop { body, .. } => body
                .iter()
                .map(|b| match b {
                    warp::cell::CodeRegion::Block(bc) => u64::from(bc.len()),
                    other => walk(other),
                })
                .max()
                .unwrap_or(0),
        }
    }
    code.regions.iter().map(walk).max().unwrap_or(1).max(1)
}
