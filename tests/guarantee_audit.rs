//! Integration tests for the guarantee-audit subsystem: the corpus
//! passes the audit, the audit catches planted compiler bugs, batches
//! degrade gracefully, and error sources chain to their root cause.

use warp::compiler::audit::{audit, audit_corpus, AuditOptions};
use warp::compiler::{compile, compile_many, corpus, CompileOptions, CompileOrSimError};
use warp::sim::{Fault, FaultPlan, SimError, SimOptions};

#[test]
fn every_corpus_program_passes_the_audit() {
    let results = audit_corpus(&AuditOptions::default(), &CompileOptions::default());
    assert!(results.len() >= 5, "audit corpus covers Table 7-1");
    for (name, result) in results {
        let report = result.unwrap_or_else(|e| panic!("{name} failed to compile:\n{e}"));
        assert!(report.passed(), "{name} failed its audit:\n{report}");
    }
}

#[test]
fn audit_catches_a_loose_skew_claim() {
    // Plant the bug the audit exists to catch: a skew analysis that
    // claims one cycle more than the true minimum. Running at
    // claimed - 1 then succeeds, which must fail the tightness check.
    let mut m =
        compile(&corpus::polynomial_source(3, 8), &CompileOptions::default()).expect("compiles");
    assert!(m.skew.min_skew > 0);
    m.skew.min_skew += 1;
    let report = audit(&m, &AuditOptions::default());
    assert!(!report.passed(), "loose claim must fail:\n{report}");
    let tightness = report
        .checks
        .iter()
        .find(|c| c.name == "skew-tightness")
        .expect("check ran");
    assert!(!tightness.passed, "{report}");
    assert!(tightness.detail.contains("not minimal"), "{report}");
}

#[test]
fn audit_catches_an_understated_occupancy_claim() {
    // The dual bug: an analysis that claims a lower queue bound than
    // the machine actually reaches.
    let mut m =
        compile(&corpus::polynomial_source(3, 8), &CompileOptions::default()).expect("compiles");
    let (chan, bound) = m
        .skew
        .queue_occupancy
        .iter()
        .map(|(c, b)| (*c, *b))
        .max_by_key(|&(_, b)| b)
        .expect("has queue traffic");
    assert!(bound > 0);
    m.skew.queue_occupancy.insert(chan, bound - 1);
    let report = audit(&m, &AuditOptions::default());
    let occupancy = report
        .checks
        .iter()
        .find(|c| c.name == "occupancy-bound")
        .expect("check ran");
    assert!(!occupancy.passed, "understated bound must fail:\n{report}");
}

#[test]
fn batch_with_a_broken_program_still_completes() {
    // One deliberately broken program must yield a per-program failure
    // record while every other program compiles normally.
    let small = corpus::binop_source(4, 4);
    let sources = [
        corpus::POLYNOMIAL,
        "module broken (a in) float a[4]; cellprogram (c : 0 : 0) begin \
         function f begin float x; x := zz; end call f; end",
        small.as_str(),
    ];
    let results = compile_many(&sources, &CompileOptions::default());
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[0].as_ref().map(|m| m.name.as_str()),
        Ok("polynomial")
    );
    let diags = results[1].as_ref().expect_err("broken program fails");
    assert!(diags.has_errors());
    assert!(diags.to_string().contains("zz"), "{diags}");
    assert_eq!(results[2].as_ref().map(|m| m.name.as_str()), Ok("binop"));
}

#[test]
fn run_audited_returns_a_structured_report() {
    let m =
        compile(&corpus::polynomial_source(3, 8), &CompileOptions::default()).expect("compiles");
    let inputs_owned = warp::compiler::audit::seeded_inputs(&m, 11);
    let inputs: Vec<(&str, &[f32])> = inputs_owned
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();
    let report = m
        .run_audited(
            m.n_cells,
            m.skew.min_skew,
            &inputs,
            &SimOptions {
                plan: FaultPlan::new(11).with(Fault::SkewDelta(-1)),
                claims: Some(m.claims()),
                ..SimOptions::default()
            },
        )
        .expect_err("jittered skew trips");
    assert!(matches!(report.error, SimError::QueueUnderflow { .. }));
    assert_eq!(
        report.claims.as_ref().map(|c| c.min_skew),
        Some(m.skew.min_skew)
    );
    assert!(!report.injected.is_empty());
    // The report itself is an error whose source is the SimError.
    let source = std::error::Error::source(&*report).expect("chains");
    assert!(source.to_string().contains("underflow"));
}

#[test]
fn error_sources_chain_to_the_root_cause() {
    use std::error::Error as _;
    let m = compile(&corpus::binop_source(4, 4), &CompileOptions::default()).expect("compiles");
    // A wrong-length binding: run() -> SimError::Host(HostError).
    let sim_err = m.run(&[("a", &[1.0][..])]).expect_err("wrong length");
    let wrapped = CompileOrSimError::from(sim_err);
    // CompileOrSimError -> SimError -> HostError: two hops to the root.
    let hop1 = wrapped.source().expect("Sim variant has a source");
    let hop2 = hop1.source().expect("Host error is the root cause");
    assert!(hop2.to_string().contains("word"), "{hop2}");
    assert!(hop2.source().is_none(), "chain terminates at the root");
    // Compile diagnostics are an aggregate: no single source.
    let diags = compile("module broken", &CompileOptions::default()).unwrap_err();
    assert!(CompileOrSimError::from(diags).source().is_none());
}
