//! Property tests for the persistent artifact codec: seeded random
//! `CompiledModule`s must round-trip bitwise through the wire format,
//! and no single-bit corruption of a framed artifact may ever reach
//! the decoder — the record checksum catches every flip.

use warp_common::vfs::record;
use warp_common::wire::from_bytes;
use warp_common::SplitMix64;
use warp_compiler::store::{artifact_bytes, canonical_artifact_bytes, STORE_SCHEMA_VERSION};
use warp_compiler::{corpus, CompileOptions, CompiledModule, Session};

fn compile(source: &str) -> CompiledModule {
    Session::new(CompileOptions::default())
        .try_compile(source)
        .expect("generated corpus program compiles")
}

/// Draws a generator-built source with seeded parameters, so each
/// seed yields modules of different shapes (cells, loop trips, array
/// sizes, pipeline structure).
fn random_source(rng: &mut SplitMix64) -> String {
    match rng.below(3) {
        0 => corpus::polynomial_source(1 + rng.below(6) as u32, 4 + rng.below(12) as u32),
        1 => {
            let taps = 2 + rng.below(5) as u32;
            corpus::conv1d_source(taps, taps + 2 + rng.below(12) as u32)
        }
        _ => corpus::binop_source(1 + rng.below(4) as u32, 2 + rng.below(6) as u32),
    }
}

#[test]
fn seeded_random_modules_round_trip_bitwise() {
    let mut rng = SplitMix64::new(0xA27F_0001);
    for case in 0..12 {
        let source = random_source(&mut rng);
        let module = compile(&source);
        let bytes = artifact_bytes(&module);
        let back: CompiledModule =
            from_bytes(&bytes).unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        // Re-encoding the decoded module must reproduce the exact
        // bytes: the codec has one canonical form, no drift.
        assert_eq!(bytes, artifact_bytes(&back), "case {case}: bytes drifted");
        // The decoded module is semantically the module: programs,
        // analyses, and metrics all survive.
        assert_eq!(module.name, back.name, "case {case}");
        assert_eq!(module.n_cells, back.n_cells, "case {case}");
        assert_eq!(module.ir, back.ir, "case {case}");
        assert_eq!(module.cell_code, back.cell_code, "case {case}");
        assert_eq!(module.iu, back.iu, "case {case}");
        assert_eq!(module.host, back.host, "case {case}");
        assert_eq!(module.skew, back.skew, "case {case}");
        assert_eq!(module.machine, back.machine, "case {case}");
        assert_eq!(module.warnings, back.warnings, "case {case}");
        // And it round-trips through the record framing too.
        let framed = record::encode(STORE_SCHEMA_VERSION, &bytes);
        let payload = record::decode(&framed, STORE_SCHEMA_VERSION)
            .unwrap_or_else(|e| panic!("case {case}: record decode failed: {e:?}"));
        assert_eq!(payload, bytes, "case {case}: framing corrupted payload");
    }
}

#[test]
fn canonical_bytes_are_compile_invariant() {
    let mut rng = SplitMix64::new(0xA27F_0002);
    for _ in 0..4 {
        let source = random_source(&mut rng);
        let first = compile(&source);
        let second = compile(&source);
        assert_eq!(
            canonical_artifact_bytes(&first),
            canonical_artifact_bytes(&second),
            "two compiles of one source must agree canonically"
        );
    }
}

#[test]
fn every_single_bit_flip_is_detected_as_corrupt() {
    // The smallest generator program keeps the exhaustive sweep fast;
    // the framing math is byte-position-independent, so coverage at
    // this size is coverage at any size.
    let module = compile(&corpus::binop_source(1, 2));
    let payload = artifact_bytes(&module);
    let framed = record::encode(STORE_SCHEMA_VERSION, &payload);
    let mut bytes = framed.clone();
    for i in 0..bytes.len() {
        for bit in 0..8 {
            bytes[i] ^= 1 << bit;
            let verdict = record::decode(&bytes, STORE_SCHEMA_VERSION);
            assert!(
                verdict.is_err(),
                "flip at byte {i} bit {bit} decoded successfully"
            );
            bytes[i] ^= 1 << bit;
        }
    }
    assert_eq!(bytes, framed, "sweep must restore the original");
    // Sanity: the unflipped record still decodes.
    assert_eq!(
        record::decode(&framed, STORE_SCHEMA_VERSION).expect("intact record decodes"),
        payload
    );
}
