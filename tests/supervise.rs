//! Integration tests for the self-healing supervision layer: heartbeat
//! wedge detection on a `ManualClock`, the hard-isolation escalation
//! ladder against a real re-exec'd child binary, and the wedge-soak
//! determinism guard.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

use warp_common::{Clock, ManualClock};
use warp_compiler::cache::CacheConfig;
use warp_compiler::corpus;
use warp_compiler::daemon::{CompileDaemon, DaemonConfig};
use warp_compiler::service::ServiceConfig;
use warp_compiler::supervise::{run_wedge_soak, WedgeSoakConfig};
use warp_compiler::CompileOptions;
use warp_service::{ExecutorConfig, JobOutcome, ShutdownMode};

/// Builds (once) and returns the debug `w2cd` binary — the isolation
/// child the escalation ladder re-execs. Library tests must never let
/// the ladder fall back to `current_exe()`: that is the test harness
/// itself, which does not speak the child protocol.
fn isolate_exe() -> PathBuf {
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "warp-compiler", "--bin", "w2cd"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .status()
            .expect("cargo runs");
        assert!(status.success(), "building w2cd failed");
    });
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("target");
    path.push("debug");
    path.push("w2cd");
    path
}

fn daemon_config(workers: usize, breaker_threshold: u32, grace_ticks: u64) -> DaemonConfig {
    DaemonConfig {
        service: ServiceConfig {
            exec: ExecutorConfig {
                queue_capacity: 64,
                breaker_threshold,
                ..ExecutorConfig::default()
            },
            workers,
            skew_max_events: 50_000_000,
            max_cell_cycles: 100_000_000,
            max_source_bytes: 4 * 1024 * 1024,
            supervise_grace_ticks: grace_ticks,
            supervise_interval_ms: warp_service::SUPERVISE_MANUAL,
        },
        cache: CacheConfig::default(),
        store: None,
    }
}

/// Real-time spin until `cond` holds (dispatch progress does not need
/// the manual clock to advance).
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn supervisor_wedges_a_cancellation_ignoring_job_and_recovers() {
    let release = Arc::new(AtomicBool::new(false));
    let clock = Arc::new(ManualClock::new(0));
    let grace = 500u64;
    let daemon = CompileDaemon::new(
        CompileOptions::default(),
        daemon_config(2, 10, grace),
        clock.clone(),
    )
    .with_chaos_spin_once_marker("!hang", release.clone());

    // A job that spins without ever polling its cancel token.
    let id = daemon
        .submit("victim!hang", corpus::POLYNOMIAL)
        .id()
        .expect("accepted");
    wait_for("the spinner to reach a worker", || {
        daemon.queue_len() == 0 && daemon.running_len() == 1
    });

    // Within the grace nothing happens; one tick past it the
    // supervisor declares the wedge.
    clock.sleep_ticks(grace);
    assert_eq!(daemon.supervise_now(), 0, "wedged inside the grace");
    clock.sleep_ticks(1);
    assert_eq!(daemon.supervise_now(), 1, "missed the stale heartbeat");

    // Exactly one Wedged report; a second wait yields nothing.
    let reports = daemon.wait(&[id]);
    assert_eq!(reports.len(), 1);
    match reports[0].outcome {
        JobOutcome::Wedged { stalled_for_ticks } => {
            assert!(stalled_for_ticks > grace, "{stalled_for_ticks}")
        }
        ref other => panic!("expected wedged, got {}", other.label()),
    }
    assert!(daemon.wait(&[id]).is_empty(), "duplicate wedge report");
    assert!(daemon.wedged_names().contains(&"victim!hang".to_owned()));

    // The replacement worker serves subsequent jobs at full strength.
    assert_eq!(daemon.live_workers(), 2);
    let after: Vec<usize> = (0..4)
        .map(|i| {
            daemon
                .submit(format!("after-{i}"), corpus::POLYNOMIAL)
                .id()
                .expect("accepted")
        })
        .collect();
    let reports = daemon.wait(&after);
    assert_eq!(reports.len(), 4);
    for r in &reports {
        assert_eq!(r.outcome.label(), "ok", "{}", r.name);
    }

    release.store(true, Ordering::SeqCst);
    daemon.shutdown(ShutdownMode::Drain);
}

#[test]
fn escalation_ladder_probes_retries_and_quarantines() {
    let release = Arc::new(AtomicBool::new(false));
    let clock = Arc::new(ManualClock::new(0));
    let grace = 500u64;
    let daemon = CompileDaemon::new(
        CompileOptions::default(),
        daemon_config(2, 2, grace),
        clock.clone(),
    )
    .with_chaos_spin_once_marker("!soft", release.clone())
    .with_chaos_spin_marker("!hard", release.clone())
    .with_isolate_exe(isolate_exe())
    .with_isolate_timeout(Duration::from_millis(1_500));

    let wedge_one = |name: &str| {
        let id = daemon
            .submit(name, corpus::POLYNOMIAL)
            .id()
            .expect("accepted");
        wait_for("spinner dispatch", || {
            daemon.queue_len() == 0 && daemon.running_len() == 1
        });
        clock.sleep_ticks(grace + 1);
        assert_eq!(daemon.supervise_now(), 1, "{name} not wedged");
        let reports = daemon.wait(&[id]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcome.label(), "wedged", "{name}");
    };

    // An environmental (first-run-only) hang: the wedge marks the
    // name, and the escalated retry — subprocess probe, then
    // in-process reproduce — succeeds.
    wedge_one("job!soft");
    let id = daemon
        .submit("job!soft", corpus::POLYNOMIAL)
        .id()
        .expect("accepted");
    let reports = daemon.wait(&[id]);
    assert_eq!(
        reports[0].outcome.label(),
        "ok",
        "escalated retry must recover"
    );

    // A reproducible hard wedge: the sacrificial child spins too and
    // is SIGKILLed, the retry fails permanently, and the second
    // failure (wedge + killed probe) trips the breaker.
    wedge_one("job!hard");
    let id = daemon
        .submit("job!hard", corpus::POLYNOMIAL)
        .id()
        .expect("accepted");
    let reports = daemon.wait(&[id]);
    assert_eq!(
        reports[0].outcome.label(),
        "failed",
        "killed probe must fail the retry"
    );
    let id = daemon
        .submit("job!hard", corpus::POLYNOMIAL)
        .id()
        .expect("accepted");
    let reports = daemon.wait(&[id]);
    assert_eq!(reports[0].outcome.label(), "quarantined");
    assert!(daemon.is_quarantined("job!hard"));
    assert!(
        !daemon.is_quarantined("job!soft"),
        "no collateral quarantine"
    );

    release.store(true, Ordering::SeqCst);
    daemon.shutdown(ShutdownMode::Drain);
}

#[test]
fn wedge_soak_with_escalation_is_deterministic_across_runs() {
    let config = WedgeSoakConfig {
        workers: 2,
        jobs: 40,
        queue_capacity: 8,
        wedge_per_mille: 200,
        native_per_mille: 150,
        isolate_exe: Some(isolate_exe()),
        isolate_timeout_ms: 1_200,
        ..WedgeSoakConfig::default()
    };
    let a = run_wedge_soak(&config, Arc::new(ManualClock::new(0)));
    assert!(a.is_clean(), "violations: {:?}", a.violations);
    assert!(a.wedge_injected > 0, "seed injected no wedges");
    assert_eq!(a.respawned, a.wedges_detected);
    assert!(a.escalations_probed > 0, "{a:?}");
    assert!(a.native_fallbacks >= 1, "{a:?}");

    let b = run_wedge_soak(&config, Arc::new(ManualClock::new(0)));
    assert!(b.is_clean(), "violations: {:?}", b.violations);
    assert_eq!(a.identity(), b.identity(), "same seed must agree");
    assert_eq!(a.quarantined, b.quarantined);
}
