//! Ablation experiments A1–A4 of DESIGN.md: turn off a design choice
//! and observe the cost the paper's compiler avoids.

use warp::compiler::{compile, corpus, CompileOptions};
use warp::ir::LowerOptions;
use warp::iu::IuOptions;

/// A1: without the local optimizations (CSE, constant folding,
/// identity removal, height reduction), the cell microcode gets longer
/// — yet the results stay identical.
#[test]
fn ablation_a1_local_optimizations() {
    // An un-Horner'd polynomial: x*x, x*x*x, ... are textbook common
    // subexpressions, the long add chain benefits from height
    // reduction, and 1.0*/+0.0 exercise identity removal.
    let src = "module poly4 (xs in, ys out) float xs[16]; float ys[16]; \
        cellprogram (cid : 0 : 0) begin function f begin float x, y; int i; \
        for i := 0 to 15 do begin \
          receive (L, X, x, xs[i]); \
          y := 1.0*x + 0.0 + x*x + x*x*x + x*x*x*x + x*x*x*x*x + 2.0*3.0; \
          send (R, X, y, ys[i]); \
        end; end call f; end";
    let optimized = compile(src, &CompileOptions::default()).expect("compiles");
    let unoptimized = compile(
        src,
        &CompileOptions {
            lower: LowerOptions {
                optimize: false,
                ..LowerOptions::default()
            },
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    assert!(
        unoptimized.metrics.cell_ucode > optimized.metrics.cell_ucode,
        "no-opt {} should exceed opt {}",
        unoptimized.metrics.cell_ucode,
        optimized.metrics.cell_ucode
    );

    // Both versions compute the same result on exact inputs (small
    // integers: reassociation cannot change the f32 values).
    let xs: Vec<f32> = (0..16).map(|i| (i % 5) as f32).collect();
    let a = optimized.run(&[("xs", &xs)]).unwrap();
    let b = unoptimized.run(&[("xs", &xs)]).unwrap();
    assert_eq!(a.host.get("ys").unwrap(), b.host.get("ys").unwrap());
    // The optimized version is also faster end to end.
    assert!(a.cycles < b.cycles, "{} !< {}", a.cycles, b.cycles);
}

/// A3: without strength reduction every loop-variant address must be
/// pre-stored in the table (the IU cannot multiply); nested loops chew
/// through table memory fast, exactly as §6.3.2 warns.
#[test]
fn ablation_a3_strength_reduction() {
    let src = corpus::matmul_source(2, 4, 4, 2);
    let with = compile(&src, &CompileOptions::default()).expect("compiles");
    let without = compile(
        &src,
        &CompileOptions {
            iu: IuOptions {
                strength_reduction: false,
                ..IuOptions::default()
            },
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    assert!(
        with.iu.table.is_empty(),
        "strength reduction avoids the table"
    );
    assert!(
        !without.iu.table.is_empty(),
        "without strength reduction the table fills"
    );
    assert!(with.iu.regs_used > 0);
    assert_eq!(without.iu.regs_used, 0);

    // Same results either way.
    let a: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
    let b: Vec<f32> = (0..16).map(|i| (15 - i) as f32).collect();
    let ra = with.run(&[("a", &a), ("b", &b)]).unwrap();
    let rb = without.run(&[("a", &a), ("b", &b)]).unwrap();
    assert_eq!(ra.host.get("c").unwrap(), rb.host.get("c").unwrap());
}

/// A3 continued: at full image scale the table cannot hold the address
/// stream at all — a compile error, matching the paper's remark that
/// nested-loop addresses "can overflow the table memory easily".
#[test]
fn ablation_a3_table_overflow_at_scale() {
    // A buffered transpose program with loop-variant addresses on a
    // 256×256 tile: 65536 stores + 65536 loads > 32768 table words.
    let src = "module tile (xs in, ys out) float xs[4096]; float ys[4096]; \
        cellprogram (cid : 0 : 0) begin function f begin float v; float t[3000]; int i; \
        for i := 0 to 2999 do begin receive (L, X, v, xs[0]); t[i] := v; end; \
        for i := 0 to 2999 do begin v := t[i]; send (R, X, v); end; \
        for i := 0 to 95 do begin receive (L, X, v, xs[i]); send (R, X, v, ys[i]); end; \
        end call f; end";
    let err = compile(
        src,
        &CompileOptions {
            iu: IuOptions {
                strength_reduction: false,
                table_words: 4000,
                ..IuOptions::default()
            },
            ..CompileOptions::default()
        },
    )
    .expect_err("6000 table words exceed 4000");
    assert!(err.to_string().contains("table memory exhausted"), "{err}");
}

/// A4: the smallest queue capacity that still runs matches the
/// compiler's occupancy bound exactly.
#[test]
fn ablation_a4_queue_capacity() {
    let src = corpus::polynomial_source(3, 16);
    let m = compile(&src, &CompileOptions::default()).expect("compiles");
    let bound = m
        .skew
        .queue_occupancy
        .values()
        .copied()
        .max()
        .expect("has channels");
    assert!(bound >= 1);

    let run_with_capacity = |cap: u32| {
        let machine = warp::cell::CellMachine {
            queue_capacity: cap,
            ..warp::cell::CellMachine::default()
        };
        let module = warp::compiler::CompiledModule {
            machine,
            ..m.clone()
        };
        let c = vec![1.0f32; 3];
        let z = vec![2.0f32; 16];
        module.run(&[("c", &c), ("z", &z)])
    };

    // At the bound: runs. One word less: overflows.
    run_with_capacity(bound as u32).expect("capacity at the bound suffices");
    if bound > 1 {
        let err = run_with_capacity(bound as u32 - 1).expect_err("must overflow");
        assert!(
            matches!(err, warp::sim::SimError::QueueOverflow { .. }),
            "{err}"
        );
    }
}

/// A2 is the SIMD-model comparison, covered by
/// `paper_figures::fig3_1_simd_vs_skewed_latency`; here we pin that the
/// compiled polynomial's skew is far below its stage span (what a SIMD
/// execution would pay per cell).
#[test]
fn ablation_a2_skew_vs_stage_span() {
    let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
    assert!(
        (m.skew.min_skew as u64) * 4 < m.skew.span,
        "skew {} should be far below the stage span {}",
        m.skew.min_skew,
        m.skew.span
    );
}
