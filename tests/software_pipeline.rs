//! Extension: restricted modulo scheduling (software pipelining) of
//! innermost loops — the technique the paper's scheduling references
//! (Rau & Glaeser) grew into. Pipelining is on by default; the
//! unpipelined baseline is recovered with `SessionCtrl::pipeline =
//! false`. Verified bit-for-bit against the baseline build and the
//! reference implementations.

use warp::compiler::{
    compile, corpus, reference, CompileOptions, CompiledModule, Session, SessionCtrl,
};

/// The unpipelined baseline: the same compile with modulo scheduling
/// switched off at the session level.
fn compile_baseline(source: &str, opts: &CompileOptions) -> CompiledModule {
    Session::new(opts.clone())
        .with_ctrl(SessionCtrl {
            pipeline: false,
            ..SessionCtrl::default()
        })
        .compile(source)
        .expect("baseline compiles")
}

#[test]
fn pipelined_polynomial_is_correct_and_faster() {
    let src = corpus::polynomial_source(4, 64);
    let base = compile_baseline(&src, &CompileOptions::default());
    let piped = compile(&src, &CompileOptions::default()).expect("compiles");

    let c = vec![0.5f32, -1.0, 0.25, 2.0];
    let z: Vec<f32> = (0..64).map(|i| -1.0 + i as f32 / 32.0).collect();
    let expect = reference::polynomial(&c, &z);

    let r0 = base.run(&[("c", &c), ("z", &z)]).expect("runs");
    let r1 = piped.run(&[("c", &c), ("z", &z)]).expect("runs");
    assert_eq!(r0.host.get("results").unwrap(), &expect[..]);
    assert_eq!(r1.host.get("results").unwrap(), &expect[..]);
    assert!(
        r1.cycles < r0.cycles,
        "pipelined {} should beat baseline {}",
        r1.cycles,
        r0.cycles
    );
}

#[test]
fn pipelined_conv_is_correct() {
    // conv has a loop-carried scalar (xprev) through memory.
    let src = corpus::conv1d_source(3, 24);
    let piped = compile(&src, &CompileOptions::default()).expect("compiles");
    let w = vec![0.25f32, 0.5, 0.25];
    let x: Vec<f32> = (0..24).map(|i| ((i * 5) % 11) as f32).collect();
    let r = piped.run(&[("w", &w), ("x", &x)]).expect("runs");
    assert_eq!(r.host.get("y").unwrap(), &reference::conv1d(&w, &x)[..]);
}

#[test]
fn pipelined_full_conv_runs() {
    let base = compile_baseline(corpus::ONED_CONV, &CompileOptions::default());
    let piped = compile(corpus::ONED_CONV, &CompileOptions::default()).expect("compiles");
    let w: Vec<f32> = (0..9).map(|k| 1.0 / (k as f32 + 1.0)).collect();
    let x: Vec<f32> = (0..128).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
    let r0 = base.run(&[("w", &w), ("x", &x)]).expect("runs");
    let r1 = piped.run(&[("w", &w), ("x", &x)]).expect("runs");
    assert_eq!(r0.host.get("y").unwrap(), r1.host.get("y").unwrap());
    assert!(r1.cycles <= r0.cycles);
}

#[test]
fn pipelined_binop_is_correct() {
    let src = corpus::binop_source(4, 8);
    let piped = compile(&src, &CompileOptions::default()).expect("compiles");
    let a: Vec<f32> = (0..32).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..32).map(|i| (i % 7) as f32 - 3.0).collect();
    let r = piped.run(&[("a", &a), ("b", &b)]).expect("runs");
    assert_eq!(r.host.get("c").unwrap(), &reference::binop(&a, &b)[..]);
}

#[test]
fn unroll_and_pipeline_compose() {
    let src = corpus::polynomial_source(4, 128);
    let both = compile(
        &src,
        &CompileOptions {
            lower: warp::ir::LowerOptions {
                unroll: 4,
                ..warp::ir::LowerOptions::default()
            },
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    let c = vec![1.0f32, 0.5, -0.5, 2.0];
    let z: Vec<f32> = (0..128).map(|i| (i % 9) as f32 * 0.2 - 0.8).collect();
    let r = both.run(&[("c", &c), ("z", &z)]).expect("runs");
    assert_eq!(
        r.host.get("results").unwrap(),
        &reference::polynomial(&c, &z)[..]
    );
}

#[test]
fn throughput_gain_measured() {
    let src = corpus::polynomial_source(4, 256);
    let base = compile_baseline(&src, &CompileOptions::default());
    let piped = compile(&src, &CompileOptions::default()).expect("compiles");
    let c = vec![1.0f32; 4];
    let z = vec![1.0f32; 256];
    let r0 = base.run(&[("c", &c), ("z", &z)]).expect("runs");
    let r1 = piped.run(&[("c", &c), ("z", &z)]).expect("runs");
    let t0 = 256.0 / r0.cycles as f64;
    let t1 = 256.0 / r1.cycles as f64;
    assert!(
        t1 > 1.5 * t0,
        "pipelining should give >1.5x throughput: {t0:.4} -> {t1:.4}"
    );
}

#[test]
fn pipelined_skew_is_still_minimal() {
    // The skew analysis runs on the emitted prologue/kernel/epilogue
    // structure; its minimum must still be exactly the underflow
    // boundary.
    let src = corpus::polynomial_source(3, 32);
    let m = compile(&src, &CompileOptions::default()).expect("compiles");
    let c = vec![1.0f32; 3];
    let z = vec![2.0f32; 32];
    m.run_with(3, m.skew.min_skew, &[("c", &c), ("z", &z)])
        .expect("minimum skew runs");
    let err = m
        .run_with(3, m.skew.min_skew - 1, &[("c", &c), ("z", &z)])
        .expect_err("below minimum underflows");
    assert!(matches!(err, warp::sim::SimError::QueueUnderflow { .. }));
}

#[test]
fn pipelined_queue_bound_is_exact() {
    let src = corpus::polynomial_source(3, 32);
    let m = compile(&src, &CompileOptions::default()).expect("compiles");
    let bound = m.skew.queue_occupancy.values().copied().max().unwrap();
    let c = vec![1.0f32; 3];
    let z = vec![2.0f32; 32];
    let r = m.run(&[("c", &c), ("z", &z)]).expect("runs");
    assert!(r.max_queue_occupancy as u64 <= bound);
}

#[test]
fn kernel_loops_are_marked_in_cell_code() {
    // A profitable pipelined loop must surface in the CellCode
    // metadata (and thus the listing) with a kernel II strictly below
    // the baseline body length.
    let src = corpus::polynomial_source(4, 64);
    let base = compile_baseline(&src, &CompileOptions::default());
    let piped = compile(&src, &CompileOptions::default()).expect("compiles");
    assert!(base.cell_code.pipelined.is_empty());
    assert!(
        !piped.cell_code.pipelined.is_empty(),
        "polynomial's inner loop should pipeline"
    );
    for info in &piped.cell_code.pipelined {
        assert!(info.ii >= 1);
        assert!(info.stages >= 2, "a one-stage kernel is not a pipeline");
        assert!(info.kernel_count >= 1);
    }
    let listing = piped.cell_code.listing();
    assert!(listing.contains("; pipelined"), "listing: {listing}");
}
