//! Golden snapshot tests for `w2c --emit` output.
//!
//! The full `--emit cell --emit iu` listing for `corpus/binop.w2` and
//! `corpus/conv1d.w2` is compared line-for-line against checked-in
//! snapshots under `tests/golden/`. Any change to instruction
//! selection, scheduling, skew, or the listing format shows up as a
//! readable diff here instead of only as a perf or correctness shift
//! downstream.
//!
//! When an intentional compiler change moves the output, refresh the
//! snapshots with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_emit
//! ```
//!
//! then review the diff of `tests/golden/*.txt` like any other code
//! change. The wall-clock `compile time` line is stripped before
//! comparison; everything else the driver prints is deterministic.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Once;

fn w2c() -> Command {
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "warp-compiler", "--bin", "w2c"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .status()
            .expect("cargo runs");
        assert!(status.success(), "building w2c failed");
    });
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("target");
    path.push("debug");
    path.push("w2c");
    Command::new(path)
}

/// Emits the listing for one corpus file with the nondeterministic
/// `compile time` line removed. `extra` is appended to the argument
/// list (e.g. `--no-pipeline` for the list-scheduled baseline).
fn emit(corpus_file: &str, extra: &[&str]) -> String {
    let src = format!("{}/corpus/{corpus_file}", env!("CARGO_MANIFEST_DIR"));
    let out = w2c()
        .args([src.as_str(), "--emit", "cell", "--emit", "iu"])
        .args(extra)
        .output()
        .expect("w2c runs");
    assert!(
        out.status.success(),
        "w2c failed on {corpus_file}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut kept: Vec<&str> = stdout
        .lines()
        .filter(|l| !l.contains("compile time"))
        .collect();
    // Normalize the trailing newline so editors that add one don't
    // break the comparison.
    while kept.last().is_some_and(|l| l.trim().is_empty()) {
        kept.pop();
    }
    kept.join("\n") + "\n"
}

fn check_golden(corpus_file: &str, snapshot: &str) {
    check_golden_with(corpus_file, snapshot, &[]);
}

fn check_golden_with(corpus_file: &str, snapshot: &str, extra: &[&str]) {
    let got = emit(corpus_file, extra);
    let path = format!("{}/tests/golden/{snapshot}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).unwrap_or_else(|e| panic!("write {path}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("read {path}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test golden_emit` to create it")
    });
    if got != want {
        let first_diff = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .map_or_else(
                || got.lines().count().min(want.lines().count()) + 1,
                |i| i + 1,
            );
        panic!(
            "{snapshot} drifted from `w2c --emit` output (first difference at line \
             {first_diff}).\nIf the change is intentional, refresh with \
             `UPDATE_GOLDEN=1 cargo test --test golden_emit` and review the diff.\n\
             --- got ---\n{got}\n--- want ---\n{want}"
        );
    }
}

#[test]
fn binop_emit_matches_golden() {
    check_golden("binop.w2", "binop_emit.txt");
}

#[test]
fn conv1d_emit_matches_golden() {
    check_golden("conv1d.w2", "conv1d_emit.txt");
}

#[test]
fn conv1d_no_pipeline_emit_matches_golden() {
    // The list-scheduled baseline: the same program without modulo
    // scheduling. Pins the `--no-pipeline` escape hatch and makes the
    // kernel-vs-baseline difference reviewable as a snapshot diff.
    check_golden_with(
        "conv1d.w2",
        "conv1d_no_pipeline_emit.txt",
        &["--no-pipeline"],
    );
}
