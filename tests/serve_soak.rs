//! Acceptance test for the always-on compile service: the seeded
//! chaos/soak harness at full scale (the same run the CI `serve-soak`
//! job executes via `wserve`) must hold every robustness invariant —
//! no lost or duplicated responses, rejections with retry hints,
//! poison quarantined without collateral damage, bounded queue, clean
//! mid-flight shutdown — and the whole run must be a pure function of
//! the seed.

use std::sync::Arc;

use warp::common::ManualClock;
use warp::compiler::soak::{run_soak, SoakConfig, SoakReport, POISON_ICE, POISON_SYNTAX};

/// The acceptance configuration: ≥4 workers, ≥200 jobs, a nonzero
/// poison fraction, overload probes at 1×/4×/16×.
fn acceptance_config() -> SoakConfig {
    let config = SoakConfig::default();
    assert!(config.workers >= 4);
    assert!(config.jobs >= 200);
    assert!(config.poison_per_mille > 0);
    assert_eq!(config.overload_factors, vec![1, 4, 16]);
    config
}

fn run(config: &SoakConfig) -> SoakReport {
    // The poison classes panic by design; silence their backtraces.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_soak(config, Arc::new(ManualClock::new(0)));
    std::panic::set_hook(hook);
    report
}

#[test]
fn full_soak_holds_every_invariant() {
    let config = acceptance_config();
    let report = run(&config);

    // The harness records violations instead of panicking; a clean run
    // means exactly-one-response, retry hints on every rejection, no
    // queue overflow, no collateral quarantine, and a clean abort.
    assert!(
        report.is_clean(),
        "soak violations: {:#?}",
        report.violations
    );
    assert!(report.accepted >= config.jobs as u64);
    assert_eq!(
        report.outcomes.len(),
        report.accepted as usize,
        "every accepted job reports exactly once"
    );

    // Poison is quarantined; the bombs (unique names) never are.
    assert_eq!(
        report.quarantined,
        vec![POISON_ICE.to_owned(), POISON_SYNTAX.to_owned()]
    );

    // Healthy jobs are untouched by the chaos around them.
    for (name, label) in &report.outcomes {
        if !name.starts_with("poison-")
            && !name.starts_with("bomb#")
            && !name.starts_with("shutdown#")
        {
            assert!(
                label == "ok" || label == "degraded",
                "healthy `{name}` ended `{label}`"
            );
        }
    }

    // The content-addressed cache carries the repeated mix.
    assert!(
        report.cache.hit_rate() > 0.5,
        "cache hit rate {:.2} <= 0.5 ({:?})",
        report.cache.hit_rate(),
        report.cache
    );

    // Graceful saturation: nothing sheds at 1×, exactly the overflow
    // sheds at 4× and 16× (admission is lockstep, so these are exact).
    assert_eq!(report.overload[0].shed, 0);
    let cap = config.queue_capacity as u64;
    assert_eq!(report.overload[1].shed, 3 * cap);
    assert_eq!(report.overload[2].shed, 15 * cap);
    assert!(report.max_queue_depth <= config.queue_capacity);
}

#[test]
fn same_seed_twice_gives_identical_outcome_sets() {
    // The loom-free determinism guard: per-name FIFO dispatch plus
    // lockstep admission make the sorted (name, label) multiset — and
    // the shed counts and quarantine set — a pure function of the
    // seed, regardless of thread interleaving.
    let config = acceptance_config();
    let a = run(&config);
    let b = run(&config);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.quarantined, b.quarantined);
    assert_eq!(a.cache.hits, b.cache.hits);
    assert_eq!(a.cache.negative_hits, b.cache.negative_hits);
}

#[test]
fn bench_serve_json_is_written_and_well_formed() {
    let report = run(&acceptance_config());
    let json = report.to_json();

    let mut path = std::env::temp_dir();
    path.push(format!("BENCH_serve-test-{}.json", std::process::id()));
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    let round_trip = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);

    assert_eq!(round_trip, json);
    assert!(json.contains("\"schema\": \"warp-serve-bench-v1\""));
    for key in [
        "\"jobs_per_sec\"",
        "\"p50_latency_ticks\"",
        "\"p99_latency_ticks\"",
        "\"cache_hit_rate\"",
        "\"shed_rate\"",
        "\"overload\"",
        "\"quarantined\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.contains("\"violations\": []"), "{json}");
    // Balanced braces/brackets as a cheap well-formedness check.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes);
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
