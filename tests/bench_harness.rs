//! Acceptance test for the modulo-scheduling rollout: across the
//! on-disk corpus, the pipelined default must drop simulated cycles on
//! at least three programs and regress on **none** (the scheduler's
//! profitability gate keeps unprofitable loops on their list
//! schedules, so any regression is a bug). This is the same
//! measurement `wbench` writes to `BENCH_compile.json`.

use warp::compiler::{bench, CompileOptions};

fn corpus_programs() -> Vec<(String, String)> {
    let dir = format!("{}/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut programs: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir}: {e}"))
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            if path.extension()? != "w2" {
                return None;
            }
            let name = path.file_stem()?.to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).expect("readable corpus file");
            Some((name, src))
        })
        .collect();
    programs.sort();
    programs
}

#[test]
fn pipelining_improves_the_corpus_and_regresses_nothing() {
    let programs = corpus_programs();
    assert_eq!(programs.len(), 7, "the Table 7-1 corpus has 7 programs");
    let report =
        bench::run_bench(&programs, &CompileOptions::default(), 1).expect("corpus benches");
    for r in &report.programs {
        assert!(
            r.cycles_pipelined <= r.cycles_baseline,
            "{} regressed: {} -> {} cycles",
            r.name,
            r.cycles_baseline,
            r.cycles_pipelined
        );
    }
    assert!(
        report.improved() >= 3,
        "expected >= 3 programs to improve, got {}:\n{}",
        report.improved(),
        report.table()
    );
    // The JSON payload round-trips the acceptance numbers.
    let json = report.to_json();
    assert!(json.contains(&format!("\"improved\": {}", report.improved())));
    assert!(json.contains("\"regressed\": 0"));
}
