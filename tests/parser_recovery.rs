//! Regression tests for parser error recovery.
//!
//! Malformed programs must produce bounded, useful diagnostics: never
//! a panic, never an unbounded error cascade (the parser caps itself
//! at [`MAX_SYNTAX_ERRORS`]), and — because recovery resynchronizes at
//! statement boundaries — an error early in a body must not mask a
//! distinct error later in the same body.

use warp::w2::parser::{parse, MAX_SYNTAX_ERRORS};

/// Parses and returns the rendered diagnostics (empty when accepted).
fn diagnostics(src: &str) -> Vec<String> {
    match parse(src) {
        Ok(_) => Vec::new(),
        Err(bag) => bag.iter().map(|d| d.to_string()).collect(),
    }
}

fn wrap(body: &str) -> String {
    format!(
        "module m (a in, r out)\nfloat a[4];\nfloat r[4];\n\
         cellprogram (cid : 0 : 0)\nbegin\n  function f\n  begin\n\
         float v;\nint i;\n{body}\n  end\n  call f;\nend\n"
    )
}

#[test]
fn missing_semicolon_recovers_and_reports_later_errors() {
    // First statement is missing its `;`; a distinct parse error (a
    // `for` without `do`) sits in a later statement and must still be
    // seen. (The later error must be parse-level: lexer errors such as
    // a stray `@` abort before recovery ever runs.)
    let diags = diagnostics(&wrap(
        "receive (L, X, v, a[0])\nv := v + 1.0;\nfor i := 0 to 3 begin\nv := v + 1.0;\nend;",
    ));
    assert!(!diags.is_empty());
    assert!(diags.len() <= MAX_SYNTAX_ERRORS + 2, "{diags:?}");
    assert!(
        diags.iter().any(|d| d.contains(';')),
        "missing-semicolon diagnostic expected: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.contains("`do`")),
        "the later error must survive recovery: {diags:?}"
    );
}

#[test]
fn unterminated_for_is_a_diagnostic_not_a_panic() {
    let diags = diagnostics(&wrap("for i := 0 to 3 do begin\nv := v + 1.0;"));
    assert!(!diags.is_empty());
    assert!(diags.len() <= MAX_SYNTAX_ERRORS + 2, "{diags:?}");
}

#[test]
fn stray_end_is_a_diagnostic_not_a_panic() {
    let diags = diagnostics(&wrap("end;\nv := v + 1.0;"));
    assert!(!diags.is_empty());
    assert!(diags.len() <= MAX_SYNTAX_ERRORS + 2, "{diags:?}");
}

#[test]
fn pathological_garbage_is_capped() {
    // A long run of junk statements must hit the cap, not emit one
    // diagnostic per token. The bound allows two extras beyond the cap:
    // the "giving up" note, plus one module-level `expected \`end\``
    // as the parser unwinds out of the abandoned statement list.
    let body: String = (0..200).map(|_| ":= := ;\n").collect();
    let diags = diagnostics(&wrap(&body));
    assert!(!diags.is_empty());
    assert!(
        diags.len() <= MAX_SYNTAX_ERRORS + 2,
        "cap exceeded: {} diagnostics",
        diags.len()
    );
    assert!(
        diags.iter().any(|d| d.contains("giving up")),
        "cap note expected: {diags:?}"
    );
}

#[test]
fn truncated_source_never_panics() {
    // Every prefix of a valid program parses to Ok or Err, never a
    // panic — the classic truncation sweep.
    let full =
        wrap("for i := 0 to 3 do begin\nreceive (L, X, v, a[i]);\nsend (R, X, v, r[i]);\nend;");
    for len in 0..full.len() {
        if !full.is_char_boundary(len) {
            continue;
        }
        let _ = parse(&full[..len]);
    }
}
