//! Integration tests for the `w2cd` compile-service front end: the
//! stdin line protocol (EOF drain, duplicate-name rejection, breaker
//! reset), argument validation, and the `--listen` socket mode.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Once;

fn w2cd() -> Command {
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "warp-compiler", "--bin", "w2cd"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .status()
            .expect("cargo runs");
        assert!(status.success(), "building w2cd failed");
    });
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("target");
    path.push("debug");
    path.push("w2cd");
    Command::new(path)
}

const DOUBLE: &str = "module double (xs in, ys out)\nfloat xs[4];\nfloat ys[4];\n\
    cellprogram (cid : 0 : 0)\nbegin\n  function f\n  begin\n    float v;\n    int i;\n\
    for i := 0 to 3 do begin\n      receive (L, X, v, xs[i]);\n      send (R, X, v + v, ys[i]);\n\
    end;\n  end\n  call f;\nend\n";

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("w2cd-test-{name}-{}.w2", std::process::id()));
    std::fs::write(&p, contents).expect("write temp source");
    p
}

/// Pipes `input` into a stdin-mode session and returns (stdout, ok).
fn session(input: &str) -> (String, bool) {
    let out = w2cd()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("stdin")
                .write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("w2cd runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn eof_drains_outstanding_jobs_exactly_once() {
    // Queue the corpus and hang up without `run`: the daemon must
    // flush the batch exactly once and exit clean.
    let (stdout, ok) = session("corpus all\n");
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("draining 5 outstanding job(s) at EOF"),
        "{stdout}"
    );
    assert_eq!(
        stdout.matches("draining").count(),
        1,
        "drain ran more than once: {stdout}"
    );
    assert_eq!(
        stdout.matches("batch:").count(),
        1,
        "batch summary printed more than once: {stdout}"
    );
    assert!(
        stdout.contains("batch: 5 ok (0 degraded), 0 failed, 0 timed out, 0 quarantined"),
        "{stdout}"
    );
}

#[test]
fn eof_drain_exit_code_reflects_the_drained_batch() {
    // A failing job collected by the EOF drain must still fail the
    // session even though no explicit `run` was issued.
    let src = write_temp(
        "drain-bad",
        "module broken (a in)\nfloat a[4];\nnot w2 at all\n",
    );
    let (stdout, ok) = session(&format!("submit willfail {}\n", src.display()));
    let _ = std::fs::remove_file(src);
    assert!(!ok, "drained failure must be reflected in the exit code");
    assert!(
        stdout.contains("draining 1 outstanding job(s) at EOF"),
        "{stdout}"
    );
    assert!(stdout.contains("1 failed"), "{stdout}");
}

#[test]
fn reset_of_unknown_name_reports_no_history() {
    let (stdout, ok) = session("reset nosuchjob\nquit\n");
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("no breaker history for nosuchjob"),
        "{stdout}"
    );
}

#[test]
fn duplicate_outstanding_name_is_rejected() {
    let src = write_temp("dup", DOUBLE);
    let input = format!(
        "submit samename {p}\nsubmit samename {p}\nrun\nsubmit samename {p}\nrun\nquit\n",
        p = src.display()
    );
    let (stdout, ok) = session(&input);
    let _ = std::fs::remove_file(src);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("error: duplicate name `samename` already outstanding"),
        "{stdout}"
    );
    // Exactly one rejection: the resubmit after `run` collected the
    // first job is fine.
    assert_eq!(stdout.matches("duplicate name").count(), 1, "{stdout}");
    assert_eq!(
        stdout
            .matches("batch: 1 ok (0 degraded), 0 failed, 0 timed out, 0 quarantined")
            .count(),
        2,
        "{stdout}"
    );
}

#[test]
fn workers_flag_rejects_garbage_at_parse_time() {
    let out = w2cd()
        .args(["--workers", "banana"])
        .output()
        .expect("w2cd runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: --workers expects a non-negative integer, got `banana`"),
        "{stderr}"
    );
}

#[test]
fn workers_flag_resolves_zero_to_available_parallelism() {
    let (stdout, ok) = session("health\nquit\n");
    assert!(ok, "{stdout}");
    // `--workers` defaults to 0 = auto; the banner and health line
    // must report the resolved count, never 0.
    let banner = stdout.lines().next().expect("banner");
    assert!(banner.starts_with("w2cd ready ("), "{stdout}");
    assert!(!banner.contains("workers 0"), "{stdout}");
    let health = stdout
        .lines()
        .find(|l| l.starts_with("healthy "))
        .expect("health line");
    assert!(health.contains("workers="), "{stdout}");
    assert!(!health.contains("workers=0"), "{stdout}");
}

#[test]
fn health_reports_degraded_when_the_store_cannot_open() {
    // A store dir that is a regular file cannot be opened: the daemon
    // must come up memory-only and *say so* — in the banner's health
    // line and in `health` — instead of claiming to be healthy.
    let blocker = write_temp("store-blocker", "not a directory");
    let out = w2cd()
        .args(["--store-dir", blocker.to_str().expect("utf-8 path")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("stdin")
                .write_all(b"health\nquit\n")?;
            child.wait_with_output()
        })
        .expect("w2cd runs");
    let _ = std::fs::remove_file(blocker);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("health: degraded"),
        "banner must carry the verdict: {stdout}"
    );
    let health = stdout
        .lines()
        .find(|l| l.starts_with("degraded "))
        .unwrap_or_else(|| panic!("no degraded health line in: {stdout}"));
    assert!(health.contains("memory-only"), "{health}");
    assert!(
        !stdout.lines().any(|l| l.starts_with("healthy ")),
        "daemon with a failed store must not claim healthy: {stdout}"
    );
}

#[test]
fn health_reports_degraded_when_the_breaker_quarantines() {
    // Trip the circuit breaker with a deterministic front-end failure;
    // `health` must drop to degraded and name the quarantine.
    let src = write_temp("health-bad", "module broken (a in)\nnot w2\n");
    let input = format!(
        "health\nsubmit willfail {}\nrun\nhealth\nquit\n",
        src.display()
    );
    let out = w2cd()
        .args(["--breaker-threshold", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("stdin")
                .write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("w2cd runs");
    let _ = std::fs::remove_file(src);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The failing batch makes the session exit non-zero; that is the
    // point. Health must have moved healthy → degraded across it.
    assert!(!out.status.success(), "{stdout}");
    let levels: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("healthy ") || l.starts_with("degraded "))
        .collect();
    assert_eq!(levels.len(), 2, "{stdout}");
    assert!(levels[0].starts_with("healthy "), "{stdout}");
    assert!(levels[1].starts_with("degraded "), "{stdout}");
    assert!(
        levels[1].contains("quarantined by the circuit breaker"),
        "{stdout}"
    );
}

#[test]
fn socket_mode_serves_a_client_and_shuts_down() {
    let mut sock = std::env::temp_dir();
    sock.push(format!("w2cd-test-sock-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);

    let mut child = w2cd()
        .args(["--listen", sock.to_str().expect("utf-8 path")])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("w2cd spawns");

    // Wait for the listener to come up.
    let mut tries = 0;
    let stream = loop {
        match std::os::unix::net::UnixStream::connect(&sock) {
            Ok(s) => break s,
            Err(_) if tries < 100 => {
                tries += 1;
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => panic!("cannot connect to {}: {e}", sock.display()),
        }
    };

    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");
    assert!(line.starts_with("w2cd ready ("), "{line}");

    writer.write_all(b"corpus polynomial\nrun\n").expect("send");
    let mut saw_batch = false;
    while !saw_batch {
        line.clear();
        assert_ne!(reader.read_line(&mut line).expect("read"), 0, "early EOF");
        if line.starts_with("batch: ") {
            assert!(line.contains("1 ok"), "{line}");
            saw_batch = true;
        }
    }

    writer.write_all(b"shutdown\n").expect("send shutdown");
    let status = child.wait().expect("w2cd exits");
    assert!(status.success(), "socket session must exit clean");
    assert!(!sock.exists(), "socket file must be removed on shutdown");
}

#[test]
fn kill_dash_nine_then_restart_recovers_the_persistent_store() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("w2cd-test-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: compile the corpus into the persistent tier, then
    // die without any shutdown handshake (SIGKILL — no drop glue, no
    // flush, exactly the crash the store must survive).
    let mut child = w2cd()
        .args(["--store-dir", dir.to_str().expect("utf-8 path")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("w2cd spawns");
    let mut stdin = child.stdin.take().expect("stdin");
    stdin
        .write_all(b"corpus all\nrun\nstore\n")
        .expect("send work");
    stdin.flush().expect("flush");
    // Keep stdin open: EOF would trigger the orderly drain-and-exit
    // path, and this test is about the disorderly one.
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    let store_line = loop {
        line.clear();
        assert_ne!(reader.read_line(&mut line).expect("read"), 0, "early EOF");
        if line.starts_with("store: dir=") {
            break line.clone();
        }
    };
    assert!(store_line.contains("puts=5"), "{store_line}");
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    drop(stdin);

    // Second life: every artifact recovers, nothing is quarantined,
    // and the same corpus is served from disk without recompiling.
    let out = w2cd()
        .args(["--store-dir", dir.to_str().expect("utf-8 path")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("stdin")
                .write_all(b"corpus all\nrun\ncache\nquit\n")?;
            child.wait_with_output()
        })
        .expect("w2cd restarts");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("store: 5 artifact(s) recovered, 0 corrupt quarantined"),
        "{stdout}"
    );
    assert!(
        stdout.contains("batch: 5 ok (0 degraded), 0 failed, 0 timed out, 0 quarantined"),
        "{stdout}"
    );
    let disk = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("disk: "))
        .expect("disk stats line");
    assert!(disk.contains("artifacts=5"), "{disk}");
    assert!(disk.contains("hits=5"), "{disk}");
    assert!(disk.contains("quarantined=0"), "{disk}");

    let _ = std::fs::remove_dir_all(&dir);
}
