//! Three-way differential testing on the standalone corpus: the
//! oracle, the cycle-level simulator, and the native backend must
//! agree **bitwise** on every program, in both cell-codegen modes,
//! on multiple input seeds.
//!
//! This is the corpus half of the native conformance story
//! (`w2c --differential --backend all` covers generated programs) and
//! the test the CI `native-differential` job runs. The corruption test
//! at the bottom is the harness's own smoke check: a fault injected
//! into the *simulator only* must surface as a mismatch that names the
//! simulator — with three executors, pairwise comparison localizes a
//! lone faulty one instead of just reporting "something diverged".

use warp::compiler::differential::{check_case, BackendSel, CaseOutcome, DiffOptions};

fn read(name: &str) -> String {
    let path = format!("{}/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

const CORPUS: [&str; 7] = [
    "polynomial.w2",
    "conv1d.w2",
    "binop.w2",
    "colorseg.w2",
    "mandelbrot.w2",
    "fft16.w2",
    "matmul_2x4x4.w2",
];

/// Corpus programs are bigger than generated ones (colorseg runs >10M
/// cell cycles), so lift the fuzzing-oriented budgets and select the
/// three-way backend.
fn corpus_opts() -> DiffOptions {
    DiffOptions {
        max_cell_cycles: 0,
        case_timeout: std::time::Duration::from_secs(120),
        backend: BackendSel::All,
        ..DiffOptions::default()
    }
}

#[test]
fn corpus_agrees_three_ways() {
    // Both cell-codegen modes: the modulo-scheduled default and the
    // `--no-pipeline` list-scheduled baseline. check_case pins
    // reassociation off, so neither scheduling mode nor executor choice
    // may change a single output bit.
    for pipeline in [true, false] {
        let opts = DiffOptions {
            pipeline,
            ..corpus_opts()
        };
        for file in CORPUS {
            // Two input seeds per program: catches value-dependent
            // paths (e.g. mandelbrot's escape conditional).
            for input_seed in [1u64, 0xDEAD_BEEF] {
                let outcome = check_case(&read(file), input_seed, &opts);
                assert!(
                    matches!(outcome, CaseOutcome::Agree),
                    "{file} (input seed {input_seed}, pipeline {pipeline}): {outcome:?}"
                );
            }
        }
    }
}

#[test]
fn corruption_in_the_simulator_is_localized_to_the_simulator() {
    // `corrupt=X:0` flips mantissa bits of one in-flight word inside
    // the simulator and trips no machine invariant. The oracle and the
    // native backend are untouched, so the first diverging pair must
    // involve the simulator — if a mismatch ever blamed oracle-vs-
    // native here, the pairwise localization would be broken.
    let opts = DiffOptions {
        inject: Some("seed=5,corrupt=X:0".parse().expect("valid spec")),
        ..corpus_opts()
    };
    for file in CORPUS {
        let outcome = check_case(&read(file), 1, &opts);
        match outcome {
            CaseOutcome::Mismatch(detail) => assert!(
                detail.contains("simulator"),
                "{file}: mismatch does not name the simulator: {detail}"
            ),
            other => panic!("{file}: corruption not detected: {other:?}"),
        }
    }
}
