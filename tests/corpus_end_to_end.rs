//! End-to-end validation: compile every corpus program, run it on the
//! simulated array, and compare against the plain-Rust reference
//! implementations bit-for-bit (the cell programs and references use
//! identical f32 operation orders).

use warp::compiler::{compile, corpus, reference, CompileOptions};

fn opts() -> CompileOptions {
    CompileOptions::default()
}

#[test]
fn polynomial_full_size_ten_cells() {
    let m = compile(corpus::POLYNOMIAL, &opts()).expect("compiles");
    assert_eq!(m.n_cells, 10);
    let c: Vec<f32> = (0..10).map(|k| (k as f32 - 4.5) * 0.25).collect();
    let z: Vec<f32> = (0..100).map(|i| -1.0 + i as f32 * 0.02).collect();
    let r = m.run(&[("c", &c), ("z", &z)]).expect("runs");
    assert_eq!(
        r.host.get("results").unwrap(),
        &reference::polynomial(&c, &z)[..]
    );
    // The array never violated any queue bound.
    assert!(r.max_queue_occupancy <= 128);
}

#[test]
fn polynomial_more_cells_than_declared_data() {
    // Three cells, eight points: the program template scales.
    let src = corpus::polynomial_source(3, 8);
    let m = compile(&src, &opts()).expect("compiles");
    let c = vec![1.0, -2.0, 0.5];
    let z: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
    let r = m.run(&[("c", &c), ("z", &z)]).expect("runs");
    assert_eq!(
        r.host.get("results").unwrap(),
        &reference::polynomial(&c, &z)[..]
    );
}

#[test]
fn conv1d_full_size_nine_cells() {
    let m = compile(corpus::ONED_CONV, &opts()).expect("compiles");
    assert_eq!(m.n_cells, 9);
    let w: Vec<f32> = (0..9).map(|k| 1.0 / (k as f32 + 1.0)).collect();
    let x: Vec<f32> = (0..128).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
    let r = m.run(&[("w", &w), ("x", &x)]).expect("runs");
    assert_eq!(r.host.get("y").unwrap(), &reference::conv1d(&w, &x)[..]);
}

#[test]
fn conv1d_small_kernel() {
    let src = corpus::conv1d_source(3, 16);
    let m = compile(&src, &opts()).expect("compiles");
    let w = vec![0.5, -1.0, 0.25];
    let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
    let r = m.run(&[("w", &w), ("x", &x)]).expect("runs");
    assert_eq!(r.host.get("y").unwrap(), &reference::conv1d(&w, &x)[..]);
}

#[test]
fn binop_small_image() {
    let src = corpus::binop_source(8, 8);
    let m = compile(&src, &opts()).expect("compiles");
    let a: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
    let b: Vec<f32> = (0..64).map(|i| (64 - i) as f32).collect();
    let r = m.run(&[("a", &a), ("b", &b)]).expect("runs");
    assert_eq!(r.host.get("c").unwrap(), &reference::binop(&a, &b)[..]);
}

#[test]
fn colorseg_small_image() {
    let src = corpus::colorseg_source(8, 8);
    let m = compile(&src, &opts()).expect("compiles");
    // Interleaved r,g,b covering all four classes, including ties.
    let img: Vec<f32> = (0..192).map(|i| ((i * 37) % 256) as f32).collect();
    let r = m.run(&[("img", &img)]).expect("runs");
    assert_eq!(
        r.host.get("seg").unwrap(),
        &reference::colorseg_rgb(&img)[..]
    );
}

#[test]
fn grayseg_small_image() {
    let src = corpus::grayseg_source(8, 8);
    let m = compile(&src, &opts()).expect("compiles");
    let img: Vec<f32> = (0..64).map(|i| (i * 4) as f32).collect();
    let r = m.run(&[("img", &img)]).expect("runs");
    assert_eq!(r.host.get("seg").unwrap(), &reference::colorseg(&img)[..]);
}

#[test]
fn mandelbrot_paper_size() {
    // The paper's configuration: 32×32, 4 iterations, one cell.
    let m = compile(corpus::MANDELBROT, &opts()).expect("compiles");
    assert_eq!(m.n_cells, 1);
    let n = 32;
    let mut cre = Vec::with_capacity(n * n);
    let mut cim = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            cre.push(-2.0 + 3.0 * j as f32 / n as f32);
            cim.push(-1.5 + 3.0 * i as f32 / n as f32);
        }
    }
    let r = m.run(&[("cre", &cre), ("cim", &cim)]).expect("runs");
    assert_eq!(
        r.host.get("count").unwrap(),
        &reference::mandelbrot(&cre, &cim, 4)[..]
    );
}

#[test]
fn matmul_two_cells() {
    // C = A·B with A 3×4, B 4×4, two cells computing two columns each.
    let src = corpus::matmul_source(2, 3, 4, 2);
    let m = compile(&src, &opts()).expect("compiles");
    let a: Vec<f32> = (0..12).map(|i| i as f32 * 0.5 - 2.0).collect();
    let b: Vec<f32> = (0..16).map(|i| ((i * 3) % 7) as f32 - 3.0).collect();
    let r = m.run(&[("a", &a), ("b", &b)]).expect("runs");
    assert_eq!(
        r.host.get("c").unwrap(),
        &reference::matmul(&a, &b, 3, 4, 4)[..]
    );
}

#[test]
fn matmul_four_cells() {
    let src = corpus::matmul_source(4, 2, 3, 1);
    let m = compile(&src, &opts()).expect("compiles");
    assert_eq!(m.n_cells, 4);
    let a: Vec<f32> = (0..6).map(|i| i as f32 + 1.0).collect();
    let b: Vec<f32> = (0..12).map(|i| (i % 5) as f32 - 2.0).collect();
    let r = m.run(&[("a", &a), ("b", &b)]).expect("runs");
    assert_eq!(
        r.host.get("c").unwrap(),
        &reference::matmul(&a, &b, 2, 3, 4)[..]
    );
}

#[test]
fn corpus_compiles_at_full_paper_sizes() {
    // The 512×512 programs are compile-checked (simulating a quarter
    // million pixels belongs in benches, not unit tests).
    for (src, streams) in [(corpus::BINOP, 3), (corpus::COLORSEG, 4)] {
        let m = compile(src, &opts()).expect("compiles");
        assert!(m.metrics.cell_ucode > 0);
        assert_eq!(
            m.host.input_count() + m.host.output_count(),
            streams * 512 * 512
        );
    }
}

#[test]
fn skew_is_minimal_for_pipelines() {
    // For every multi-cell corpus program: the computed skew runs, one
    // less underflows.
    for src in [
        corpus::polynomial_source(3, 10),
        corpus::conv1d_source(3, 12),
        corpus::matmul_source(2, 2, 2, 1),
    ] {
        let m = compile(&src, &opts()).expect("compiles");
        assert!(m.skew.min_skew > 0, "{}", m.name);
        // Build zero inputs of the right shapes via the variable table.
        let zero_inputs: Vec<(String, Vec<f32>)> =
            m.ir.vars
                .iter()
                .filter(|(_, v)| v.kind == warp::w2::VarKind::Host)
                .map(|(_, v)| (v.name.clone(), vec![0.0; v.size() as usize]))
                .collect();
        let named: Vec<(&str, &[f32])> = zero_inputs
            .iter()
            .map(|(n, d)| (n.as_str(), d.as_slice()))
            .collect();
        m.run_with(m.n_cells, m.skew.min_skew, &named)
            .expect("minimum skew runs");
        let err = m
            .run_with(m.n_cells, m.skew.min_skew - 1, &named)
            .expect_err("skew below minimum must underflow");
        assert!(
            matches!(err, warp::sim::SimError::QueueUnderflow { .. }),
            "{}: {err}",
            m.name
        );
    }
}

#[test]
fn fft_16_points_on_4_cells() {
    let n = 16u32;
    let src = corpus::fft_source(n);
    let m = compile(&src, &opts()).expect("compiles");
    assert_eq!(m.n_cells, 4);
    let (twr, twi) = corpus::fft_twiddle_arrays(n);
    let re: Vec<f32> = (0..n).map(|i| ((i * 5) % 7) as f32 - 3.0).collect();
    let im: Vec<f32> = (0..n).map(|i| ((i * 3) % 5) as f32 * 0.5).collect();
    let r = m
        .run(&[("twr", &twr), ("twi", &twi), ("xre", &re), ("xim", &im)])
        .expect("runs");
    let (er, ei) = reference::fft_pease(&re, &im);
    assert_eq!(
        r.host.get("outre").unwrap(),
        &er[..],
        "real parts bit-exact"
    );
    assert_eq!(
        r.host.get("outim").unwrap(),
        &ei[..],
        "imaginary parts bit-exact"
    );

    // And the spectrum is actually a Fourier transform: unscramble and
    // compare against the naive DFT.
    let fr = reference::bit_reverse_permute(r.host.get("outre").unwrap());
    let fi = reference::bit_reverse_permute(r.host.get("outim").unwrap());
    let (dr, di) = reference::dft_naive(&re, &im);
    for k in 0..n as usize {
        assert!((f64::from(fr[k]) - dr[k]).abs() < 1e-3, "re[{k}]");
        assert!((f64::from(fi[k]) - di[k]).abs() < 1e-3, "im[{k}]");
    }
}

#[test]
fn fft_64_points_on_6_cells() {
    // Stage k is deep into its butterfly loop while stage k+1 is still
    // distributing twiddles, so at 64 points the 128-word queues
    // overflow; the compiler reports it (checked below) and the run
    // uses deeper queues — the paper's §6.2.2 notes that spilling
    // overflow data to cell memory is the eventual remedy.
    let n = 64u32;
    let src = corpus::fft_source(n);
    let err = compile(&src, &opts()).expect_err("128-word queues overflow at 64 points");
    assert!(err.to_string().contains("queue overflow"), "{err}");

    let mut o = opts();
    o.machine.queue_capacity = 4 * n;
    let m = compile(&src, &o).expect("compiles");
    let (twr, twi) = corpus::fft_twiddle_arrays(n);
    let re: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
    let im = vec![0.0f32; n as usize];
    let r = m
        .run(&[("twr", &twr), ("twi", &twi), ("xre", &re), ("xim", &im)])
        .expect("runs");
    let (er, ei) = reference::fft_pease(&re, &im);
    assert_eq!(r.host.get("outre").unwrap(), &er[..]);
    assert_eq!(r.host.get("outim").unwrap(), &ei[..]);
}
