//! Unidirectional programs may also flow right-to-left (paper §5.1.1
//! allows either direction, just not both). The compiler and simulator
//! mirror everything: the boundary input is the rightmost cell and
//! skew delays cells towards the left.

use warp::compiler::{compile, CompileOptions};

const R2L: &str = "module r2l (xs in, ys out) float xs[8]; float ys[8]; \
    cellprogram (cid : 0 : 2) begin function f begin float v; int i; \
    for i := 0 to 7 do begin \
      receive (R, X, v, xs[i]); \
      send (L, X, v + 1.0, ys[i]); \
    end; end call f; end";

#[test]
fn right_to_left_pipeline_runs() {
    let m = compile(R2L, &CompileOptions::default()).expect("compiles");
    assert_eq!(m.skew.flow, warp::w2::ast::Dir::Left);
    let xs: Vec<f32> = (0..8).map(|i| i as f32 * 2.0).collect();
    let r = m.run(&[("xs", &xs)]).expect("runs");
    // Three cells each add 1.
    let expect: Vec<f32> = xs.iter().map(|v| v + 3.0).collect();
    assert_eq!(r.host.get("ys").unwrap(), &expect[..]);
}

#[test]
fn right_to_left_skew_is_minimal() {
    let m = compile(R2L, &CompileOptions::default()).expect("compiles");
    assert!(m.skew.min_skew > 0);
    let xs = vec![1.0f32; 8];
    let err = m
        .run_with(3, m.skew.min_skew - 1, &[("xs", &xs)])
        .expect_err("below minimum underflows");
    assert!(matches!(err, warp::sim::SimError::QueueUnderflow { .. }));
}

#[test]
fn oracle_agrees_right_to_left() {
    let m = compile(R2L, &CompileOptions::default()).expect("compiles");
    let hir = warp::w2::parse_and_check(R2L).expect("front end");
    let xs: Vec<f32> = (0..8).map(|i| (i * i) as f32).collect();
    let mut host = warp::host::HostMemory::new(&m.ir.vars);
    host.set("xs", &xs).expect("xs binds");
    let want = warp::compiler::oracle::interpret(&hir, &host).expect("oracle");
    let got = m.run(&[("xs", &xs)]).expect("runs");
    assert_eq!(got.host.get("ys").unwrap(), want.get("ys").unwrap());
}
