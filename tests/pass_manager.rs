//! Integration tests for the pass-manager driver: per-pass metrics,
//! observer dumps, and the parallel batch driver.

use warp::common::CollectDumps;
use warp::compiler::{compile, compile_many, corpus, passes, CompileOptions, Session};

const CORPUS: [&str; 5] = [
    corpus::POLYNOMIAL,
    corpus::ONED_CONV,
    corpus::BINOP,
    corpus::COLORSEG,
    corpus::MANDELBROT,
];

#[test]
fn per_pass_timings_sum_to_at_most_the_total() {
    let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
    let total = m.metrics.pass_time_total();
    assert!(total > std::time::Duration::ZERO);
    assert!(
        total <= m.metrics.compile_time,
        "pass time {total:?} exceeds compile time {:?}",
        m.metrics.compile_time
    );
}

#[test]
fn every_pass_appears_exactly_once_in_pipeline_order() {
    for src in CORPUS {
        let m = compile(src, &CompileOptions::default()).expect("compiles");
        let names: Vec<&str> = m.metrics.per_pass.iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            passes::pass_names().collect::<Vec<_>>(),
            "per-pass entries must match the pipeline for `{}`",
            m.name
        );
    }
}

#[test]
fn observer_sees_enter_and_exit_for_every_pass() {
    let mut dumps = CollectDumps::all();
    let m = Session::with_observer(CompileOptions::default(), &mut dumps)
        .compile(corpus::POLYNOMIAL)
        .expect("compiles");
    assert_eq!(m.metrics.per_pass.len(), passes::PIPELINE.len());
    let kinds: Vec<&str> = dumps.dumps().iter().map(|d| d.kind).collect();
    let expected: Vec<&str> = passes::PIPELINE.iter().map(|p| p.artifact).collect();
    assert_eq!(kinds, expected, "one artifact per pass, in order");
    assert!(dumps.dumps().iter().all(|d| !d.text.is_empty()));
}

#[test]
fn failing_pass_reports_no_artifact_for_later_passes() {
    let mut dumps = CollectDumps::all();
    let err = Session::with_observer(CompileOptions::default(), &mut dumps)
        .compile("module broken")
        .expect_err("parse error");
    assert!(err.has_errors());
    assert!(dumps.dumps().is_empty(), "frontend failed; nothing to dump");
}

/// `compile_many` must produce, element for element, what sequential
/// `compile` produces — compared on every deterministic artifact
/// (timing metrics are the only legitimate difference).
#[test]
fn compile_many_matches_sequential_compile() {
    let opts = CompileOptions::default();
    let parallel = compile_many(&CORPUS, &opts);
    assert_eq!(parallel.len(), CORPUS.len());
    for (src, got) in CORPUS.iter().zip(parallel) {
        let got = got.expect("parallel compile succeeds");
        let want = compile(src, &opts).expect("sequential compile succeeds");
        assert_eq!(got.name, want.name);
        assert_eq!(got.n_cells, want.n_cells);
        assert_eq!(got.cell_code.listing(), want.cell_code.listing());
        assert_eq!(got.iu.listing(), want.iu.listing());
        assert_eq!(got.host.listing(), want.host.listing());
        assert_eq!(got.skew.min_skew, want.skew.min_skew);
        assert_eq!(got.skew.queue_occupancy, want.skew.queue_occupancy);
        assert_eq!(got.skew.flow, want.skew.flow);
        assert_eq!(
            warp::ir::dump::dump_ir(&got.ir),
            warp::ir::dump::dump_ir(&want.ir)
        );
        assert_eq!(got.metrics.w2_lines, want.metrics.w2_lines);
        assert_eq!(got.metrics.cell_ucode, want.metrics.cell_ucode);
        assert_eq!(got.metrics.iu_ucode, want.metrics.iu_ucode);
    }
}

#[test]
fn compile_many_keeps_input_order_and_per_item_errors() {
    let sources = [corpus::POLYNOMIAL, "module broken", corpus::BINOP];
    let results = compile_many(&sources, &CompileOptions::default());
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().expect("ok").name, "polynomial");
    assert!(results[1].is_err(), "parse error stays at its own index");
    assert_eq!(results[2].as_ref().expect("ok").name, "binop");
}

#[test]
fn compile_many_on_empty_input_is_empty() {
    let none: [&str; 0] = [];
    assert!(compile_many(&none, &CompileOptions::default()).is_empty());
}
