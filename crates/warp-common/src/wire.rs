//! A tiny, stable, dependency-free binary codec for on-disk artifacts.
//!
//! The persistent artifact store (`warp-compiler::store`) serializes
//! whole [`CompiledModule`](../warp_compiler)s to disk so a daemon
//! restart comes back warm. That demands a byte format that is
//!
//! * **stable across processes** — no `RandomState`, no pointer
//!   values, no enum discriminants left to the compiler;
//! * **deterministic** — the same value always encodes to the same
//!   bytes (hash maps are serialized in sorted order), so artifacts
//!   can be compared and fingerprinted bitwise;
//! * **total on decode** — any byte sequence either decodes or fails
//!   with a structured [`WireError`]; no panics, no partial values.
//!   Untrusted length prefixes are checked against the bytes actually
//!   remaining before any allocation, so a corrupt header cannot OOM
//!   the daemon.
//!
//! Every crate implements [`Encode`]/[`Decode`] for its own types
//! (the [`wire_struct!`] macro writes the mechanical field-by-field
//! impls); enums are encoded as a `u8` tag followed by the variant's
//! fields, with unknown tags rejected. The framing around a payload —
//! magic, schema version, length, checksum footer — lives in
//! [`crate::vfs::record`].
//!
//! # Examples
//!
//! ```
//! use warp_common::wire::{Decode, Encode, WireReader};
//!
//! let value = (vec![1u32, 2, 3], Some("skew".to_owned()));
//! let mut bytes = Vec::new();
//! value.encode(&mut bytes);
//! let mut r = WireReader::new(&bytes);
//! let back = <(Vec<u32>, Option<String>)>::decode(&mut r).unwrap();
//! r.finish().unwrap();
//! assert_eq!(value, back);
//! ```

use std::collections::{BTreeMap, HashMap};

/// A structured decode failure. The store treats any of these as
/// "corrupt artifact": the entry is quarantined, never served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A value failed a domain check (e.g. a bool byte that is
    /// neither 0 nor 1, a length that contradicts the input size).
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
    /// Decoding finished with input left over — the payload is not a
    /// single well-formed value.
    TrailingBytes {
        /// How many bytes were left.
        remaining: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated value: needed {needed} byte(s), had {remaining}"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::Invalid { what } => write!(f, "invalid {what}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over the bytes being decoded.
#[derive(Clone, Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> WireReader<'a> {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Requires the input to be fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    /// Decodes a `u64` length prefix and checks it against the bytes
    /// that actually remain, using `min_bytes_per_element` as a lower
    /// bound on the encoded size of one element. This rejects a
    /// corrupt "four billion elements follow" length before any
    /// allocation happens.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on a short prefix,
    /// [`WireError::Invalid`] on an impossible length.
    pub fn checked_len(&mut self, min_bytes_per_element: usize) -> Result<usize, WireError> {
        let n = u64::decode(self)?;
        let n = usize::try_from(n).map_err(|_| WireError::Invalid { what: "length" })?;
        if n.saturating_mul(min_bytes_per_element.max(1)) > self.remaining() {
            return Err(WireError::Invalid { what: "length" });
        }
        Ok(n)
    }
}

/// Serialize `self` into a byte buffer. Implementations append; they
/// never read or truncate the buffer.
pub trait Encode {
    /// Appends the stable encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Decode a value of `Self` from a [`WireReader`].
pub trait Decode: Sized {
    /// Reads one value, advancing the reader.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the reader position is unspecified after an
    /// error.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes exactly one value from `bytes` (trailing bytes are an
/// error).
///
/// # Errors
///
/// Any [`WireError`] from the value, or
/// [`WireError::TrailingBytes`].
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

macro_rules! int_wire {
    ($($ty:ty),+) => {$(
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )+};
}

int_wire!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(u64::decode(r)?).map_err(|_| WireError::Invalid { what: "usize" })
    }
}

/// Floats travel as their IEEE-754 bits: the round trip is bitwise
/// exact, NaN payloads included.
impl Encode for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Decode for f32 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Decode for f64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid { what: "bool" }),
        }
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl Decode for String {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.checked_len(1)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

impl Encode for std::time::Duration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
        self.subsec_nanos().encode(out);
    }
}

impl Decode for std::time::Duration {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let secs = u64::decode(r)?;
        let nanos = u32::decode(r)?;
        if nanos >= 1_000_000_000 {
            return Err(WireError::Invalid { what: "duration" });
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.checked_len(1)?;
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Encode> Encode for Box<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
}

impl<T: Decode> Decode for Box<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Encode, const N: usize> Encode for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode, const N: usize> Decode for [T; N] {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(r)?);
        }
        items
            .try_into()
            .map_err(|_| WireError::Invalid { what: "array" })
    }
}

/// `BTreeMap`s iterate in key order, so the encoding is naturally
/// deterministic.
impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.checked_len(1)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// `HashMap`s are serialized in sorted key order so two equal maps
/// always encode to the same bytes.
impl<K: Encode + Ord, V: Encode> Encode for HashMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        (pairs.len() as u64).encode(out);
        for (k, v) in pairs {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<K: Decode + Eq + std::hash::Hash, V: Decode> Decode for HashMap<K, V> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.checked_len(1)?;
        let mut out = HashMap::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<I: crate::idvec::Id, T: Encode> Encode for crate::IdVec<I, T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self.values() {
            item.encode(out);
        }
    }
}

impl<I: crate::idvec::Id, T: Decode> Decode for crate::IdVec<I, T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.checked_len(1)?;
        let mut out = crate::IdVec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for crate::ContentKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lo.encode(out);
        self.hi.encode(out);
    }
}

impl Decode for crate::ContentKey {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(crate::ContentKey {
            lo: u64::decode(r)?,
            hi: u64::decode(r)?,
        })
    }
}

impl Encode for crate::Span {
    fn encode(&self, out: &mut Vec<u8>) {
        self.start.encode(out);
        self.end.encode(out);
    }
}

impl Decode for crate::Span {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let start = u32::decode(r)?;
        let end = u32::decode(r)?;
        if start > end {
            return Err(WireError::Invalid { what: "span" });
        }
        Ok(crate::Span { start, end })
    }
}

impl Encode for crate::Severity {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            crate::Severity::Note => 0,
            crate::Severity::Warning => 1,
            crate::Severity::Error => 2,
        });
    }
}

impl Decode for crate::Severity {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(crate::Severity::Note),
            1 => Ok(crate::Severity::Warning),
            2 => Ok(crate::Severity::Error),
            tag => Err(WireError::BadTag {
                what: "Severity",
                tag,
            }),
        }
    }
}

crate::wire_struct!(crate::Diagnostic {
    severity,
    message,
    span
});

/// Writes field-by-field [`Encode`]/[`Decode`] impls for a struct with
/// public (or same-crate-visible) named fields. Field order in the
/// macro invocation *is* the byte order — add new fields at the end
/// and bump the record schema version.
///
/// # Examples
///
/// ```
/// use warp_common::wire_struct;
///
/// #[derive(Debug, PartialEq)]
/// pub struct Point {
///     pub x: u32,
///     pub y: u32,
/// }
/// wire_struct!(Point { x, y });
///
/// let bytes = warp_common::wire::to_bytes(&Point { x: 1, y: 2 });
/// let p: Point = warp_common::wire::from_bytes(&bytes).unwrap();
/// assert_eq!(p, Point { x: 1, y: 2 });
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($ty:path { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Encode for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $($crate::wire::Encode::encode(&self.$field, out);)+
            }
        }
        impl $crate::wire::Decode for $ty {
            fn decode(
                r: &mut $crate::wire::WireReader<'_>,
            ) -> ::std::result::Result<Self, $crate::wire::WireError> {
                $(let $field = $crate::wire::Decode::decode(r)?;)+
                ::std::result::Result::Ok(Self { $($field),+ })
            }
        }
    };
}

/// Writes [`Encode`]/[`Decode`] impls for a newtype over one public
/// field (typed ids from [`crate::define_id!`], `Reg(u16)`, …).
#[macro_export]
macro_rules! wire_newtype {
    ($ty:path) => {
        impl $crate::wire::Encode for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $crate::wire::Encode::encode(&self.0, out);
            }
        }
        impl $crate::wire::Decode for $ty {
            fn decode(
                r: &mut $crate::wire::WireReader<'_>,
            ) -> ::std::result::Result<Self, $crate::wire::WireError> {
                ::std::result::Result::Ok(Self($crate::wire::Decode::decode(r)?))
            }
        }
    };
}

/// Writes [`Encode`]/[`Decode`] impls for an enum. Each variant gets
/// an explicit `u8` tag followed by its fields in declaration order;
/// unknown tags decode to [`WireError::BadTag`]. Tags are part of the
/// on-disk format — never renumber an existing variant.
///
/// # Examples
///
/// ```
/// use warp_common::wire_enum;
///
/// #[derive(Debug, PartialEq)]
/// pub enum Shape {
///     Dot,
///     Circle(u32),
///     Rect { w: u32, h: u32 },
/// }
/// wire_enum!(Shape {
///     0 => Dot,
///     1 => Circle(radius),
///     2 => Rect { w, h },
/// });
///
/// let bytes = warp_common::wire::to_bytes(&Shape::Rect { w: 2, h: 3 });
/// let s: Shape = warp_common::wire::from_bytes(&bytes).unwrap();
/// assert_eq!(s, Shape::Rect { w: 2, h: 3 });
/// ```
#[macro_export]
macro_rules! wire_enum {
    ($ty:ident {
        $( $tag:literal => $variant:ident
            $( ( $($tuple_field:ident),+ $(,)? ) )?
            $( { $($struct_field:ident),+ $(,)? } )?
        ),+ $(,)?
    }) => {
        impl $crate::wire::Encode for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                match self {
                    $(
                        $ty::$variant
                            $( ( $($tuple_field),+ ) )?
                            $( { $($struct_field),+ } )?
                        => {
                            out.push($tag);
                            $( $( $crate::wire::Encode::encode($tuple_field, out); )+ )?
                            $( $( $crate::wire::Encode::encode($struct_field, out); )+ )?
                        }
                    )+
                }
            }
        }
        impl $crate::wire::Decode for $ty {
            fn decode(
                r: &mut $crate::wire::WireReader<'_>,
            ) -> ::std::result::Result<Self, $crate::wire::WireError> {
                match <u8 as $crate::wire::Decode>::decode(r)? {
                    $(
                        $tag => ::std::result::Result::Ok(
                            $ty::$variant
                                $( ( $( {
                                    let _ = ::core::stringify!($tuple_field);
                                    $crate::wire::Decode::decode(r)?
                                } ),+ ) )?
                                $( { $(
                                    $struct_field: $crate::wire::Decode::decode(r)?
                                ),+ } )?
                        ),
                    )+
                    tag => ::std::result::Result::Err($crate::wire::WireError::BadTag {
                        what: ::core::stringify!($ty),
                        tag,
                    }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(123_456u32);
        round_trip(u64::MAX - 1);
        round_trip(-5i64);
        round_trip(true);
        round_trip(std::f32::consts::PI);
        round_trip(f32::NAN.to_bits()); // NaN itself is not PartialEq
        round_trip("hello warp".to_owned());
        round_trip(String::new());
        round_trip(std::time::Duration::new(3, 141_592_653));
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f32::from_bits(0x7fc0_dead);
        let bytes = to_bytes(&weird);
        let back: f32 = from_bytes(&bytes).unwrap();
        assert_eq!(weird.to_bits(), back.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<u64>::None);
        round_trip(Some("x".to_owned()));
        round_trip((7u32, vec![false, true]));
        round_trip(BTreeMap::from([
            (1u32, "a".to_owned()),
            (2, "b".to_owned()),
        ]));
        let mut hm = HashMap::new();
        hm.insert(9u64, 1u8);
        hm.insert(3u64, 2u8);
        round_trip(hm);
        round_trip([5u32, 6, 7]);
        round_trip([Some(1u8), None]);
    }

    #[test]
    fn hashmap_encoding_is_sorted_and_deterministic() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..20u64 {
            a.insert(k, k * 2);
        }
        for k in (0..20u64).rev() {
            b.insert(k, k * 2);
        }
        assert_eq!(to_bytes(&a), to_bytes(&b));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = to_bytes(&vec![1u32, 2, 3]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<u32>>(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        // A length prefix claiming 2^60 elements with 4 bytes of input.
        let mut bytes = Vec::new();
        (1u64 << 60).encode(&mut bytes);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            from_bytes::<Vec<u64>>(&bytes),
            Err(WireError::Invalid { what: "length" })
        ));
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(matches!(
            from_bytes::<Option<u8>>(&[9, 0]),
            Err(WireError::BadTag { what: "Option", .. })
        ));
        assert!(matches!(
            from_bytes::<bool>(&[2]),
            Err(WireError::Invalid { what: "bool" })
        ));
    }

    #[test]
    fn idvec_and_diag_round_trip() {
        crate::define_id!(TId, "t");
        let v: crate::IdVec<TId, u32> = [4u32, 5, 6].into_iter().collect();
        let bytes = to_bytes(&v);
        let back: crate::IdVec<TId, u32> = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);

        round_trip(crate::Diagnostic::warning(
            "unused variable `q`",
            crate::Span::new(3, 4),
        ));
        round_trip(crate::Diagnostic::error_global("boom"));
        round_trip(crate::ContentKey { lo: 1, hi: 2 });
    }

    #[test]
    fn invalid_span_rejected() {
        let mut bytes = Vec::new();
        9u32.encode(&mut bytes);
        3u32.encode(&mut bytes);
        assert!(matches!(
            from_bytes::<crate::Span>(&bytes),
            Err(WireError::Invalid { what: "span" })
        ));
    }
}
