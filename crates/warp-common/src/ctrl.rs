//! Cooperative cancellation and injectable time.
//!
//! The resilient service layer (`warp-service`) enforces per-job
//! wall-clock deadlines and cancellation across the whole pipeline:
//! the [`Session`](../warp_compiler) polls a [`CancelToken`] at pass
//! boundaries, the skew search polls it inside its enumeration loop,
//! and the simulator polls it in its cycle loop. All time flows
//! through the [`Clock`] trait so the entire layer is testable with a
//! [`ManualClock`] — no real sleeps, no wall-clock flakiness.
//!
//! A token is cheap to clone (an `Arc`) and cheap to poll (one atomic
//! load plus, when a deadline is set, one clock read). The default
//! token is inert: [`CancelToken::none`] never fires and costs one
//! branch per poll, so un-budgeted compiles pay nothing.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use warp_common::ctrl::{CancelReason, CancelToken, ManualClock};
//!
//! let clock = Arc::new(ManualClock::new(0));
//! let token = CancelToken::with_deadline(clock.clone(), 100);
//! assert!(token.check().is_ok());
//! clock.advance(150);
//! assert!(matches!(
//!     token.check(),
//!     Err(CancelReason::DeadlineExceeded { deadline: 100, now: 150 })
//! ));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic tick source. One tick is one microsecond on the
/// [`SystemClock`]; a [`ManualClock`] gives ticks whatever meaning the
/// test wants.
pub trait Clock: Send + Sync {
    /// Current time in ticks since the clock's origin.
    fn now_ticks(&self) -> u64;

    /// Blocks until `ticks` have elapsed. The [`SystemClock`] really
    /// sleeps; the [`ManualClock`] advances itself instantly, so
    /// backoff/retry logic built on this hook is testable with zero
    /// real delay.
    fn sleep_ticks(&self, ticks: u64);
}

/// Real wall-clock time in microseconds since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ticks(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn sleep_ticks(&self, ticks: u64) {
        std::thread::sleep(std::time::Duration::from_micros(ticks));
    }
}

/// A deterministic clock for tests: time moves only when the test says
/// so — either explicitly via [`ManualClock::advance`] or implicitly by
/// a fixed number of ticks per [`Clock::now_ticks`] call
/// ([`ManualClock::with_auto_advance`]). Auto-advance models "work
/// takes time" deterministically: every deadline poll is one unit of
/// progress, so a runaway job exceeds its deadline after a bounded,
/// reproducible number of polls.
#[derive(Debug, Default)]
pub struct ManualClock {
    ticks: AtomicU64,
    auto_advance: u64,
}

impl ManualClock {
    /// A clock frozen at `start` ticks.
    pub fn new(start: u64) -> ManualClock {
        ManualClock {
            ticks: AtomicU64::new(start),
            auto_advance: 0,
        }
    }

    /// A clock that advances by `per_read` ticks on every read.
    pub fn with_auto_advance(start: u64, per_read: u64) -> ManualClock {
        ManualClock {
            ticks: AtomicU64::new(start),
            auto_advance: per_read,
        }
    }

    /// Moves time forward by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.ticks.fetch_add(ticks, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ticks(&self) -> u64 {
        if self.auto_advance == 0 {
            self.ticks.load(Ordering::SeqCst)
        } else {
            self.ticks.fetch_add(self.auto_advance, Ordering::SeqCst)
        }
    }

    fn sleep_ticks(&self, ticks: u64) {
        self.advance(ticks);
    }
}

/// Why a cooperative computation was asked to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// Someone called [`CancelToken::cancel`].
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded {
        /// The deadline, in clock ticks.
        deadline: u64,
        /// The clock reading that tripped the check.
        now: u64,
    },
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Cancelled => write!(f, "cancelled"),
            CancelReason::DeadlineExceeded { deadline, now } => {
                write!(f, "deadline exceeded ({now} ticks past {deadline})")
            }
        }
    }
}

impl std::error::Error for CancelReason {}

/// Deadline sentinel meaning "no deadline armed".
const NO_DEADLINE: u64 = u64::MAX;

/// Heartbeat sentinel meaning "heartbeat recording disabled".
const HEARTBEAT_OFF: u64 = u64::MAX;

struct TokenInner {
    cancelled: AtomicBool,
    /// Absolute deadline in clock ticks; `NO_DEADLINE` when unarmed.
    deadline: AtomicU64,
    /// Last clock reading observed by a [`CancelToken::check`] poll;
    /// `HEARTBEAT_OFF` unless a supervisor opted in. A cancelled token
    /// stops refreshing: a job that polls but refuses to exit goes
    /// stale and is indistinguishable from one that never polls at
    /// all — both hold a worker hostage.
    heartbeat: AtomicU64,
    clock: Arc<dyn Clock>,
}

/// A cooperatively polled cancellation handle, optionally carrying a
/// deadline against an injectable clock.
///
/// Long-running loops call [`CancelToken::check`] periodically; the
/// service layer calls [`CancelToken::cancel`] (or just sets a
/// deadline) and the loop unwinds with a structured [`CancelReason`]
/// instead of hanging.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<TokenInner>>,
}

impl CancelToken {
    /// The inert token: never cancelled, no deadline.
    pub fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A cancellable token with no deadline (one can be armed later
    /// with [`CancelToken::arm_deadline`]).
    pub fn new(clock: Arc<dyn Clock>) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: AtomicU64::new(NO_DEADLINE),
                heartbeat: AtomicU64::new(HEARTBEAT_OFF),
                clock,
            })),
        }
    }

    /// A token that trips once `clock` passes `deadline_ticks`.
    pub fn with_deadline(clock: Arc<dyn Clock>, deadline_ticks: u64) -> CancelToken {
        let t = CancelToken::new(clock);
        t.arm_deadline(deadline_ticks);
        t
    }

    /// Arms (or moves) the deadline. Lets a service hand out a token at
    /// admission time and start the clock only when the job actually
    /// begins executing, so queue wait does not eat the budget. No-op
    /// on the inert token.
    pub fn arm_deadline(&self, deadline_ticks: u64) {
        if let Some(inner) = &self.inner {
            inner.deadline.store(deadline_ticks, Ordering::SeqCst);
        }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::SeqCst);
        }
    }

    /// Polls the token: `Err` once cancelled or past the deadline.
    ///
    /// # Errors
    ///
    /// [`CancelReason::Cancelled`] after [`CancelToken::cancel`], or
    /// [`CancelReason::DeadlineExceeded`] once the clock passes the
    /// deadline.
    pub fn check(&self) -> Result<(), CancelReason> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::SeqCst) {
            return Err(CancelReason::Cancelled);
        }
        let deadline = inner.deadline.load(Ordering::SeqCst);
        let beating = inner.heartbeat.load(Ordering::SeqCst) != HEARTBEAT_OFF;
        if deadline != NO_DEADLINE || beating {
            // One clock read serves both the deadline comparison and
            // the heartbeat stamp, so enabling supervision does not
            // change auto-advance poll accounting on deadline tokens.
            let now = inner.clock.now_ticks();
            if beating {
                inner
                    .heartbeat
                    .store(now.min(HEARTBEAT_OFF - 1), Ordering::SeqCst);
            }
            if deadline != NO_DEADLINE && now > deadline {
                return Err(CancelReason::DeadlineExceeded { deadline, now });
            }
        }
        Ok(())
    }

    /// `true` once [`CancelToken::check`] would fail.
    pub fn is_stopped(&self) -> bool {
        self.check().is_err()
    }

    /// Turns on heartbeat recording and stamps "now". Called by a
    /// supervising pool at dispatch; off by default so plain tokens
    /// never pay an extra clock read per poll.
    pub fn enable_heartbeat(&self) {
        if let Some(inner) = &self.inner {
            let now = inner.clock.now_ticks().min(HEARTBEAT_OFF - 1);
            inner.heartbeat.store(now, Ordering::SeqCst);
        }
    }

    /// The clock reading of the most recent poll, or `None` when the
    /// token is inert or heartbeats were never enabled. A supervisor
    /// compares this against its own clock read to detect a worker
    /// that stopped polling (or polls but ignores cancellation).
    pub fn heartbeat_ticks(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let beat = inner.heartbeat.load(Ordering::SeqCst);
        (beat != HEARTBEAT_OFF).then_some(beat)
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "CancelToken::none"),
            Some(inner) => {
                let deadline = inner.deadline.load(Ordering::SeqCst);
                f.debug_struct("CancelToken")
                    .field("cancelled", &inner.cancelled.load(Ordering::SeqCst))
                    .field("deadline", &(deadline != NO_DEADLINE).then_some(deadline))
                    .finish()
            }
        }
    }
}

/// Two tokens are equal when they share state (or are both inert).
/// This exists so option structs carrying a token can stay
/// `PartialEq`-derivable.
impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for CancelToken {}

/// SplitMix64: the tiny deterministic generator behind seeded fault
/// corruption masks, audit input data, and the service layer's retry
/// jitter. Stateless: feed it any counter or hash.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded SplitMix64 stream: [`splitmix64`] applied to an
/// incrementing counter, packaged as a stateful generator for callers
/// that draw many values (the program generator, shrink orderings).
///
/// Deterministic: the same seed always yields the same stream, so any
/// artifact derived from one (a generated program, a fault mask) is
/// reproducible from the seed alone.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream starting at `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(1);
        out
    }

    /// A value in `0..n` (`n` must be nonzero). Simple modulo: the bias
    /// is irrelevant for test-case generation.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::none();
        assert!(t.check().is_ok());
        t.cancel();
        assert!(t.check().is_ok());
        assert!(!t.is_stopped());
        assert_eq!(t, CancelToken::default());
    }

    #[test]
    fn cancel_observed_by_clones() {
        let clock = Arc::new(ManualClock::new(0));
        let t = CancelToken::new(clock);
        let t2 = t.clone();
        assert!(t2.check().is_ok());
        t.cancel();
        assert_eq!(t2.check(), Err(CancelReason::Cancelled));
        assert_eq!(t, t2);
    }

    #[test]
    fn deadline_uses_injected_clock() {
        let clock = Arc::new(ManualClock::new(10));
        let t = CancelToken::with_deadline(clock.clone(), 20);
        assert!(t.check().is_ok());
        clock.advance(10); // now == deadline: still fine
        assert!(t.check().is_ok());
        clock.advance(1);
        assert_eq!(
            t.check(),
            Err(CancelReason::DeadlineExceeded {
                deadline: 20,
                now: 21
            })
        );
    }

    #[test]
    fn auto_advance_is_deterministic() {
        let clock = ManualClock::with_auto_advance(0, 5);
        assert_eq!(clock.now_ticks(), 0);
        assert_eq!(clock.now_ticks(), 5);
        assert_eq!(clock.now_ticks(), 10);
        // A deadline of 12 trips on the poll after tick 12 is passed.
        let clock = Arc::new(ManualClock::with_auto_advance(0, 5));
        let t = CancelToken::with_deadline(clock, 12);
        let polls = (0..10).take_while(|_| t.check().is_ok()).count();
        assert_eq!(polls, 3, "polls read ticks 0, 5, 10, then 15 > 12");
    }

    #[test]
    fn deadline_armed_after_construction() {
        let clock = Arc::new(ManualClock::new(0));
        let t = CancelToken::new(clock.clone());
        clock.advance(1000); // queue wait: no deadline armed yet
        assert!(t.check().is_ok());
        t.arm_deadline(clock.now_ticks() + 50);
        assert!(t.check().is_ok());
        clock.advance(51);
        assert_eq!(
            t.check(),
            Err(CancelReason::DeadlineExceeded {
                deadline: 1050,
                now: 1051
            })
        );
    }

    #[test]
    fn manual_sleep_advances_instantly() {
        let c = ManualClock::new(0);
        c.sleep_ticks(250);
        assert_eq!(c.now_ticks(), 250);
    }

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ticks();
        let b = c.now_ticks();
        assert!(b >= a);
    }

    #[test]
    fn reason_display() {
        assert_eq!(CancelReason::Cancelled.to_string(), "cancelled");
        let r = CancelReason::DeadlineExceeded {
            deadline: 5,
            now: 9,
        };
        assert!(r.to_string().contains("deadline exceeded"), "{r}");
    }

    #[test]
    fn heartbeat_off_by_default() {
        let clock = Arc::new(ManualClock::new(0));
        let t = CancelToken::new(clock.clone());
        assert_eq!(t.heartbeat_ticks(), None);
        t.check().unwrap();
        assert_eq!(t.heartbeat_ticks(), None, "check must not enable it");
        assert_eq!(CancelToken::none().heartbeat_ticks(), None);
    }

    #[test]
    fn heartbeat_stamps_on_poll() {
        let clock = Arc::new(ManualClock::new(7));
        let t = CancelToken::new(clock.clone());
        t.enable_heartbeat();
        assert_eq!(t.heartbeat_ticks(), Some(7));
        clock.advance(10);
        assert_eq!(t.heartbeat_ticks(), Some(7), "reads don't stamp");
        t.check().unwrap();
        assert_eq!(t.heartbeat_ticks(), Some(17));
    }

    #[test]
    fn heartbeat_goes_stale_once_cancelled() {
        // A job that polls but ignores cancellation must look exactly
        // like one that never polls: its heartbeat stops refreshing.
        let clock = Arc::new(ManualClock::new(0));
        let t = CancelToken::new(clock.clone());
        t.enable_heartbeat();
        t.cancel();
        clock.advance(100);
        assert!(t.check().is_err());
        assert_eq!(
            t.heartbeat_ticks(),
            Some(0),
            "stamp frozen at cancel-time value"
        );
    }

    #[test]
    fn heartbeat_shares_deadline_clock_read() {
        // Auto-advance accounting is unchanged by enabling heartbeats
        // on a deadline token: one read per poll, stamped and compared.
        let clock = Arc::new(ManualClock::with_auto_advance(0, 5));
        let t = CancelToken::with_deadline(clock, 12);
        t.enable_heartbeat(); // consumes one read: ticks 0
        let polls = (0..10).take_while(|_| t.check().is_ok()).count();
        assert_eq!(polls, 2, "polls read ticks 5, 10, then 15 > 12");
        assert_eq!(t.heartbeat_ticks(), Some(15), "failing poll still stamps");
    }

    #[test]
    fn splitmix_reference_values() {
        // Deterministic and bit-mixing: distinct inputs, distinct outputs.
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
