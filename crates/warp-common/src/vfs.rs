//! Virtual file system with deterministic fault injection.
//!
//! The persistent artifact store must survive the disk telling lies:
//! torn writes after a power cut, short reads, flipped bits, `ENOSPC`
//! mid-eviction, and the process being killed between any two
//! syscalls. Those failures are rare and unreproducible on a real
//! disk, so — in the same spirit as `ManualClock` for time — all store
//! I/O goes through the [`Vfs`] trait and tests swap in a seeded
//! [`FaultVfs`] that injects every one of those failures
//! deterministically.
//!
//! Three backends:
//!
//! * [`RealVfs`] — `std::fs`, with `fsync` on write and atomic rename;
//! * [`MemVfs`] — an in-memory tree shared across clones, so a
//!   "process restart" in a test is just reopening the store over the
//!   same `MemVfs`;
//! * [`FaultVfs`] — wraps another backend and injects faults from a
//!   [`SplitMix64`] stream plus an optional *crash-point*: the N-th
//!   I/O operation aborts mid-effect (a write leaves a torn prefix, a
//!   rename may or may not have happened) and every operation after it
//!   fails with [`VfsError::Crashed`], exactly like a killed process.
//!
//! [`atomic_write`] is the write-temp → fsync → rename protocol every
//! store mutation uses, and [`record`] is the checksummed framing that
//! lets recovery prove an artifact intact before serving it.

use crate::hash::ContentKey;
use crate::SplitMix64;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Suffix of in-flight temporary files; recovery deletes any it finds.
pub const TMP_SUFFIX: &str = ".tmp";

/// A file-system operation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VfsError {
    /// The path does not exist.
    NotFound {
        /// The missing path.
        path: PathBuf,
    },
    /// The device is out of space (`ENOSPC`).
    NoSpace,
    /// Any other I/O failure (`EIO`, permissions, …).
    Io {
        /// Human-readable detail.
        detail: String,
    },
    /// A [`FaultVfs`] crash-point fired: the simulated process is
    /// dead and every further operation fails with this error.
    Crashed,
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::NotFound { path } => write!(f, "not found: {}", path.display()),
            VfsError::NoSpace => write!(f, "no space left on device"),
            VfsError::Io { detail } => write!(f, "i/o error: {detail}"),
            VfsError::Crashed => write!(f, "simulated crash: process is dead"),
        }
    }
}

impl std::error::Error for VfsError {}

/// The file operations the artifact store needs, behind one object so
/// fault injection can wrap any backend.
pub trait Vfs: Send + Sync {
    /// Reads an entire file.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] or backend failures.
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError>;

    /// Creates or truncates `path` with `bytes`, durably (the real
    /// backend fsyncs before returning).
    ///
    /// # Errors
    ///
    /// [`VfsError::NoSpace`] or backend failures.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;

    /// Atomically renames `from` to `to`, replacing `to` if present.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] when `from` is missing.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] when `path` is missing.
    fn remove_file(&self, path: &Path) -> Result<(), VfsError>;

    /// Lists regular files directly under `dir`, sorted by path. A
    /// missing directory lists as empty.
    ///
    /// # Errors
    ///
    /// Backend failures.
    fn list_files(&self, dir: &Path) -> Result<Vec<PathBuf>, VfsError>;

    /// Size of a file in bytes.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] when `path` is missing.
    fn file_len(&self, path: &Path) -> Result<u64, VfsError>;

    /// Creates `dir` and all missing parents.
    ///
    /// # Errors
    ///
    /// Backend failures.
    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError>;
}

fn io_err(err: &std::io::Error) -> VfsError {
    match err.kind() {
        std::io::ErrorKind::StorageFull => VfsError::NoSpace,
        _ => VfsError::Io {
            detail: err.to_string(),
        },
    }
}

/// The production backend: `std::fs` with durable writes.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(VfsError::NotFound {
                path: path.to_path_buf(),
            }),
            Err(e) => Err(io_err(&e)),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        let mut file = std::fs::File::create(path).map_err(|e| io_err(&e))?;
        file.write_all(bytes).map_err(|e| io_err(&e))?;
        file.sync_all().map_err(|e| io_err(&e))?;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        match std::fs::rename(from, to) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(VfsError::NotFound {
                path: from.to_path_buf(),
            }),
            Err(e) => Err(io_err(&e)),
        }
    }

    fn remove_file(&self, path: &Path) -> Result<(), VfsError> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(VfsError::NotFound {
                path: path.to_path_buf(),
            }),
            Err(e) => Err(io_err(&e)),
        }
    }

    fn list_files(&self, dir: &Path) -> Result<Vec<PathBuf>, VfsError> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&e)),
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&e))?;
            let meta = entry.metadata().map_err(|e| io_err(&e))?;
            if meta.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn file_len(&self, path: &Path) -> Result<u64, VfsError> {
        match std::fs::metadata(path) {
            Ok(meta) => Ok(meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(VfsError::NotFound {
                path: path.to_path_buf(),
            }),
            Err(e) => Err(io_err(&e)),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(&e))
    }
}

/// An in-memory backend. Clones share the same tree, so a test can
/// "restart the process" by dropping a store and opening a new one
/// over a clone of the same `MemVfs`.
#[derive(Clone, Debug, Default)]
pub struct MemVfs {
    files: Arc<Mutex<BTreeMap<PathBuf, Vec<u8>>>>,
}

impl MemVfs {
    /// An empty tree.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// Total bytes across all files (test introspection).
    pub fn total_bytes(&self) -> u64 {
        let files = self.files.lock().expect("memvfs poisoned");
        files.values().map(|v| v.len() as u64).sum()
    }

    /// Number of files (test introspection).
    pub fn file_count(&self) -> usize {
        self.files.lock().expect("memvfs poisoned").len()
    }
}

impl Vfs for MemVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        let files = self.files.lock().expect("memvfs poisoned");
        files.get(path).cloned().ok_or_else(|| VfsError::NotFound {
            path: path.to_path_buf(),
        })
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        let mut files = self.files.lock().expect("memvfs poisoned");
        files.insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        let mut files = self.files.lock().expect("memvfs poisoned");
        match files.remove(from) {
            Some(bytes) => {
                files.insert(to.to_path_buf(), bytes);
                Ok(())
            }
            None => Err(VfsError::NotFound {
                path: from.to_path_buf(),
            }),
        }
    }

    fn remove_file(&self, path: &Path) -> Result<(), VfsError> {
        let mut files = self.files.lock().expect("memvfs poisoned");
        match files.remove(path) {
            Some(_) => Ok(()),
            None => Err(VfsError::NotFound {
                path: path.to_path_buf(),
            }),
        }
    }

    fn list_files(&self, dir: &Path) -> Result<Vec<PathBuf>, VfsError> {
        let files = self.files.lock().expect("memvfs poisoned");
        Ok(files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn file_len(&self, path: &Path) -> Result<u64, VfsError> {
        let files = self.files.lock().expect("memvfs poisoned");
        files
            .get(path)
            .map(|v| v.len() as u64)
            .ok_or_else(|| VfsError::NotFound {
                path: path.to_path_buf(),
            })
    }

    fn create_dir_all(&self, _dir: &Path) -> Result<(), VfsError> {
        Ok(())
    }
}

/// Per-mille fault rates and an optional crash-point for [`FaultVfs`].
/// All rates default to zero; `seed` makes the whole fault schedule a
/// pure function of the configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultProfile {
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// ‰ of writes that persist only a random prefix yet report
    /// success — the post-crash torn-write case a checksum must catch.
    pub torn_write_per_mille: u64,
    /// ‰ of reads that return only a random prefix yet report success.
    pub short_read_per_mille: u64,
    /// ‰ of reads with one random bit flipped in the returned bytes.
    pub bit_flip_per_mille: u64,
    /// ‰ of writes failing with [`VfsError::NoSpace`], nothing written.
    pub no_space_per_mille: u64,
    /// ‰ of operations failing with [`VfsError::Io`], no effect.
    pub io_error_per_mille: u64,
    /// When `Some(n)`, the n-th operation (1-based, all operation
    /// kinds counted) aborts mid-effect and the backend plays dead
    /// from then on.
    pub crash_at_op: Option<u64>,
}

impl FaultProfile {
    /// A profile that injects nothing — useful for counting the
    /// operations of a workload before sweeping crash-points over it.
    pub fn quiet(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            ..FaultProfile::default()
        }
    }
}

/// How many of each fault a [`FaultVfs`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Torn writes that reported success.
    pub torn_writes: u64,
    /// Short reads that reported success.
    pub short_reads: u64,
    /// Reads with a flipped bit.
    pub bit_flips: u64,
    /// `ENOSPC` failures.
    pub no_space: u64,
    /// `EIO` failures.
    pub io_errors: u64,
}

impl FaultCounts {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.torn_writes + self.short_reads + self.bit_flips + self.no_space + self.io_errors
    }
}

/// Wraps another [`Vfs`] and injects deterministic faults per
/// [`FaultProfile`]. The same profile over the same operation sequence
/// injects the same faults — re-running a failing soak seed reproduces
/// it exactly.
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    profile: FaultProfile,
    rng: Mutex<SplitMix64>,
    counts: Mutex<FaultCounts>,
    ops: AtomicU64,
    crashed: AtomicBool,
}

impl FaultVfs {
    /// Wraps `inner` with the given fault profile.
    pub fn new(inner: Arc<dyn Vfs>, profile: FaultProfile) -> FaultVfs {
        FaultVfs {
            inner,
            profile,
            rng: Mutex::new(SplitMix64::new(profile.seed)),
            counts: Mutex::new(FaultCounts::default()),
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// Operations seen so far (crashed or not). Running a workload
    /// over a quiet profile and reading this afterwards gives the
    /// crash-point range to sweep.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the crash-point has fired.
    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Faults injected so far.
    pub fn fault_counts(&self) -> FaultCounts {
        *self.counts.lock().expect("faultvfs poisoned")
    }

    /// Counts one operation; returns `Err(Crashed)` if the backend is
    /// already dead, `Ok(true)` if *this* operation is the crash-point
    /// (the caller applies a partial effect, then plays dead).
    fn tick(&self) -> Result<bool, VfsError> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(VfsError::Crashed);
        }
        let op = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(self.profile.crash_at_op == Some(op))
    }

    fn die(&self) -> VfsError {
        self.crashed.store(true, Ordering::SeqCst);
        VfsError::Crashed
    }

    fn roll(&self, per_mille: u64) -> bool {
        per_mille > 0
            && self
                .rng
                .lock()
                .expect("faultvfs poisoned")
                .chance(per_mille, 1000)
    }

    fn rand_below(&self, n: u64) -> u64 {
        self.rng.lock().expect("faultvfs poisoned").below(n)
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        if self.tick()? {
            return Err(self.die());
        }
        if self.roll(self.profile.io_error_per_mille) {
            self.counts.lock().expect("faultvfs poisoned").io_errors += 1;
            return Err(VfsError::Io {
                detail: "injected EIO on read".to_owned(),
            });
        }
        let mut bytes = self.inner.read(path)?;
        if !bytes.is_empty() && self.roll(self.profile.short_read_per_mille) {
            self.counts.lock().expect("faultvfs poisoned").short_reads += 1;
            let keep = self.rand_below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        if !bytes.is_empty() && self.roll(self.profile.bit_flip_per_mille) {
            self.counts.lock().expect("faultvfs poisoned").bit_flips += 1;
            let bit = self.rand_below(bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        if self.tick()? {
            // Crash mid-write: a random prefix reached the disk.
            let keep = if bytes.is_empty() {
                0
            } else {
                self.rand_below(bytes.len() as u64 + 1) as usize
            };
            let _ = self.inner.write(path, &bytes[..keep]);
            return Err(self.die());
        }
        if self.roll(self.profile.no_space_per_mille) {
            self.counts.lock().expect("faultvfs poisoned").no_space += 1;
            return Err(VfsError::NoSpace);
        }
        if self.roll(self.profile.io_error_per_mille) {
            self.counts.lock().expect("faultvfs poisoned").io_errors += 1;
            return Err(VfsError::Io {
                detail: "injected EIO on write".to_owned(),
            });
        }
        if !bytes.is_empty() && self.roll(self.profile.torn_write_per_mille) {
            self.counts.lock().expect("faultvfs poisoned").torn_writes += 1;
            let keep = self.rand_below(bytes.len() as u64) as usize;
            return self.inner.write(path, &bytes[..keep]);
        }
        self.inner.write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        if self.tick()? {
            // Rename is atomic: the crash lands before or after it.
            if self.rand_below(2) == 1 {
                let _ = self.inner.rename(from, to);
            }
            return Err(self.die());
        }
        if self.roll(self.profile.io_error_per_mille) {
            self.counts.lock().expect("faultvfs poisoned").io_errors += 1;
            return Err(VfsError::Io {
                detail: "injected EIO on rename".to_owned(),
            });
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> Result<(), VfsError> {
        if self.tick()? {
            if self.rand_below(2) == 1 {
                let _ = self.inner.remove_file(path);
            }
            return Err(self.die());
        }
        if self.roll(self.profile.io_error_per_mille) {
            self.counts.lock().expect("faultvfs poisoned").io_errors += 1;
            return Err(VfsError::Io {
                detail: "injected EIO on remove".to_owned(),
            });
        }
        self.inner.remove_file(path)
    }

    fn list_files(&self, dir: &Path) -> Result<Vec<PathBuf>, VfsError> {
        if self.tick()? {
            return Err(self.die());
        }
        self.inner.list_files(dir)
    }

    fn file_len(&self, path: &Path) -> Result<u64, VfsError> {
        if self.tick()? {
            return Err(self.die());
        }
        self.inner.file_len(path)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        if self.tick()? {
            return Err(self.die());
        }
        self.inner.create_dir_all(dir)
    }
}

/// The temporary sibling `atomic_write` stages into:
/// `foo.wart` → `foo.wart.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

/// Writes `bytes` to `path` via the crash-safe protocol: stage into a
/// `.tmp` sibling (durably), then atomically rename over the target.
/// A crash leaves either the old content, the new content, or a
/// `.tmp` leftover that recovery deletes — never a torn final file
/// from this path alone (a torn-write *fault* can still corrupt the
/// staged bytes, which is what the record checksum is for).
///
/// # Errors
///
/// Any [`VfsError`] from the underlying write or rename; the `.tmp`
/// file is cleaned up on a failed rename where possible.
pub fn atomic_write(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
    let tmp = tmp_path(path);
    vfs.write(&tmp, bytes)?;
    match vfs.rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            if e != VfsError::Crashed {
                let _ = vfs.remove_file(&tmp);
            }
            Err(e)
        }
    }
}

/// Versioned, checksummed framing for on-disk artifacts.
///
/// Layout: `magic "WART" (4) · schema version (u16 LE) · payload
/// length (u64 LE) · payload · ContentKey footer (16)`. The footer is
/// a 128-bit double-FNV digest over everything before it, so any
/// single-bit flip anywhere in the record is detected: each FNV-1a
/// step `s ← (s ⊕ b)·p` is a bijection on `u64` (the prime is odd),
/// so changing any byte always changes the digest, and a flip inside
/// the footer itself mismatches the recomputed digest.
pub mod record {
    use super::ContentKey;

    /// Record magic bytes.
    pub const MAGIC: [u8; 4] = *b"WART";
    /// Header bytes before the payload: magic + version + length.
    pub const HEADER_LEN: usize = 4 + 2 + 8;
    /// Footer bytes after the payload.
    pub const FOOTER_LEN: usize = 16;
    /// The smallest well-formed record (empty payload).
    pub const MIN_LEN: usize = HEADER_LEN + FOOTER_LEN;

    /// Why a record failed validation. The store quarantines on any
    /// of these — the payload is never handed to the decoder.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecordError {
        /// Shorter than its framing claims (torn write, short read).
        Truncated,
        /// The magic bytes are wrong — not a record at all.
        BadMagic,
        /// The integrity footer does not match the content.
        BadChecksum,
        /// A valid record from a different schema version.
        StaleSchema {
            /// Version found in the record.
            found: u16,
            /// Version this build expects.
            expected: u16,
        },
    }

    impl std::fmt::Display for RecordError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecordError::Truncated => write!(f, "truncated record"),
                RecordError::BadMagic => write!(f, "bad record magic"),
                RecordError::BadChecksum => write!(f, "record checksum mismatch"),
                RecordError::StaleSchema { found, expected } => {
                    write!(f, "stale schema version {found} (expected {expected})")
                }
            }
        }
    }

    impl std::error::Error for RecordError {}

    fn digest(content: &[u8]) -> ContentKey {
        ContentKey::of_parts([content])
    }

    /// Frames `payload` as a version-`version` record.
    pub fn encode(version: u16, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(MIN_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        let sum = digest(&out);
        out.extend_from_slice(&sum.lo.to_le_bytes());
        out.extend_from_slice(&sum.hi.to_le_bytes());
        out
    }

    /// Validates framing and checksum, returning the payload.
    ///
    /// The checksum is verified before the magic and version fields
    /// are interpreted, so a bit flip inside those fields reports
    /// [`RecordError::BadChecksum`] (corruption), not a misleading
    /// [`RecordError::BadMagic`] / stale-schema verdict.
    ///
    /// # Errors
    ///
    /// Any [`RecordError`]; see the variants.
    pub fn decode(bytes: &[u8], expected_version: u16) -> Result<Vec<u8>, RecordError> {
        if bytes.len() < MIN_LEN {
            return Err(RecordError::Truncated);
        }
        let payload_len =
            u64::from_le_bytes(bytes[6..14].try_into().expect("sized slice")) as usize;
        let expected_total = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(FOOTER_LEN));
        if expected_total != Some(bytes.len()) {
            return Err(RecordError::Truncated);
        }
        let (content, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
        let sum = digest(content);
        let lo = u64::from_le_bytes(footer[..8].try_into().expect("sized slice"));
        let hi = u64::from_le_bytes(footer[8..].try_into().expect("sized slice"));
        if (ContentKey { lo, hi }) != sum {
            return Err(RecordError::BadChecksum);
        }
        if bytes[..4] != MAGIC {
            return Err(RecordError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("sized slice"));
        if version != expected_version {
            return Err(RecordError::StaleSchema {
                found: version,
                expected: expected_version,
            });
        }
        Ok(content[HEADER_LEN..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn memvfs_basic_ops() {
        let vfs = MemVfs::new();
        vfs.create_dir_all(&p("/store")).unwrap();
        assert_eq!(vfs.list_files(&p("/store")).unwrap(), Vec::<PathBuf>::new());
        vfs.write(&p("/store/b"), b"bb").unwrap();
        vfs.write(&p("/store/a"), b"a").unwrap();
        assert_eq!(vfs.read(&p("/store/a")).unwrap(), b"a");
        assert_eq!(vfs.file_len(&p("/store/b")).unwrap(), 2);
        assert_eq!(
            vfs.list_files(&p("/store")).unwrap(),
            vec![p("/store/a"), p("/store/b")]
        );
        vfs.rename(&p("/store/a"), &p("/store/c")).unwrap();
        assert!(matches!(
            vfs.read(&p("/store/a")),
            Err(VfsError::NotFound { .. })
        ));
        vfs.remove_file(&p("/store/c")).unwrap();
        assert_eq!(vfs.file_count(), 1);
        // Clones share the tree — the "restart" idiom.
        let again = vfs.clone();
        assert_eq!(again.read(&p("/store/b")).unwrap(), b"bb");
    }

    #[test]
    fn real_vfs_round_trip() {
        let dir = std::env::temp_dir().join(format!("warp-vfs-test-{}", std::process::id()));
        let vfs = RealVfs;
        vfs.create_dir_all(&dir).unwrap();
        let file = dir.join("x.bin");
        atomic_write(&vfs, &file, b"payload").unwrap();
        assert_eq!(vfs.read(&file).unwrap(), b"payload");
        assert_eq!(vfs.file_len(&file).unwrap(), 7);
        assert_eq!(vfs.list_files(&dir).unwrap(), vec![file.clone()]);
        assert!(matches!(
            vfs.read(&dir.join("missing")),
            Err(VfsError::NotFound { .. })
        ));
        vfs.remove_file(&file).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_vfs_is_deterministic() {
        let profile = FaultProfile {
            seed: 42,
            torn_write_per_mille: 300,
            short_read_per_mille: 300,
            bit_flip_per_mille: 300,
            no_space_per_mille: 100,
            io_error_per_mille: 100,
            crash_at_op: None,
        };
        let run = || {
            let vfs = FaultVfs::new(Arc::new(MemVfs::new()), profile);
            let mut log = Vec::new();
            for i in 0..200u32 {
                let path = p(&format!("/s/f{}", i % 7));
                let data = vec![i as u8; 64];
                log.push(format!("{:?}", vfs.write(&path, &data)));
                log.push(format!("{:?}", vfs.read(&path)));
            }
            (log, vfs.fault_counts())
        };
        let (log_a, counts_a) = run();
        let (log_b, counts_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(counts_a, counts_b);
        assert!(counts_a.torn_writes > 0);
        assert!(counts_a.short_reads > 0);
        assert!(counts_a.bit_flips > 0);
        assert!(counts_a.no_space > 0);
        assert!(counts_a.io_errors > 0);
    }

    #[test]
    fn crash_point_kills_backend() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultProfile {
                crash_at_op: Some(3),
                ..FaultProfile::quiet(7)
            },
        );
        vfs.write(&p("/a"), b"one").unwrap();
        vfs.write(&p("/b"), b"two").unwrap();
        // Op 3 is the crash-point: at most a torn prefix lands.
        assert_eq!(vfs.write(&p("/c"), b"three"), Err(VfsError::Crashed));
        assert!(vfs.has_crashed());
        // Everything after the crash fails, disk untouched.
        assert_eq!(vfs.write(&p("/d"), b"four"), Err(VfsError::Crashed));
        assert_eq!(vfs.read(&p("/a")), Err(VfsError::Crashed));
        assert_eq!(mem.read(&p("/a")).unwrap(), b"one");
        if let Ok(torn) = mem.read(&p("/c")) {
            assert!(torn.len() < 5, "crash-point write persisted fully");
        }
        assert!(matches!(mem.read(&p("/d")), Err(VfsError::NotFound { .. })));
    }

    #[test]
    fn atomic_write_leaves_no_tmp_on_success() {
        let mem = MemVfs::new();
        atomic_write(&mem, &p("/s/k.wart"), b"bytes").unwrap();
        assert_eq!(mem.list_files(&p("/s")).unwrap(), vec![p("/s/k.wart")]);
        assert_eq!(tmp_path(&p("/s/k.wart")), p("/s/k.wart.tmp"));
    }

    #[test]
    fn record_round_trip() {
        let payload = b"compiled module bytes".to_vec();
        let bytes = record::encode(3, &payload);
        assert_eq!(record::decode(&bytes, 3).unwrap(), payload);
        assert_eq!(
            record::decode(&bytes, 4),
            Err(record::RecordError::StaleSchema {
                found: 3,
                expected: 4
            })
        );
        let empty = record::encode(3, b"");
        assert_eq!(record::decode(&empty, 3).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn record_rejects_every_truncation() {
        let bytes = record::encode(1, b"abcdef");
        for cut in 0..bytes.len() {
            assert_eq!(
                record::decode(&bytes[..cut], 1),
                Err(record::RecordError::Truncated),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn record_rejects_every_single_bit_flip() {
        let bytes = record::encode(1, b"artifact");
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let got = record::decode(&flipped, 1);
            assert!(got.is_err(), "bit flip {bit} decoded successfully");
            // A flip never reports a *schema* mismatch: the checksum
            // runs first, so corruption is not mistaken for staleness.
            assert!(
                !matches!(got, Err(record::RecordError::StaleSchema { .. })),
                "bit flip {bit} misdiagnosed as stale schema"
            );
        }
    }

    #[test]
    fn record_rejects_garbage() {
        assert_eq!(record::decode(b"", 1), Err(record::RecordError::Truncated));
        let mut bytes = record::encode(1, b"x");
        // Rewrite the magic and fix up the checksum: BadMagic fires.
        bytes[0] = b'J';
        let content_len = bytes.len() - record::FOOTER_LEN;
        let sum = ContentKey::of_parts([&bytes[..content_len]]);
        let footer_at = content_len;
        bytes[footer_at..footer_at + 8].copy_from_slice(&sum.lo.to_le_bytes());
        bytes[footer_at + 8..].copy_from_slice(&sum.hi.to_le_bytes());
        assert_eq!(
            record::decode(&bytes, 1),
            Err(record::RecordError::BadMagic)
        );
    }
}
