//! Structured compiler diagnostics.
//!
//! Every phase of the compiler reports problems through a [`DiagnosticBag`]
//! rather than panicking, so a single compile run can surface several
//! independent errors (undeclared variables, dynamic loop bounds,
//! bidirectional communication cycles, queue overflow, IU table overflow…).

use crate::span::Span;
use std::fmt;

/// How severe a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note attached to another diagnostic.
    Note,
    /// The program is accepted but may behave unexpectedly.
    Warning,
    /// The program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single diagnostic message with an optional source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
    /// Location in the W2 source, if known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates an error diagnostic at `span`.
    pub fn error(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates an error diagnostic with no source location.
    pub fn error_global(message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span: None,
        }
    }

    /// Creates a warning diagnostic at `span`.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Renders the diagnostic against `source`, with line/column info.
    pub fn render(&self, source: &str) -> String {
        match self.span {
            Some(span) => {
                let (line, col) = span.line_col(source);
                format!(
                    "{}: {} (line {line}, column {col})",
                    self.severity, self.message
                )
            }
            None => format!("{}: {}", self.severity, self.message),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)?;
        if let Some(span) = self.span {
            write!(f, " at {span}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// An accumulating collection of diagnostics.
///
/// # Examples
///
/// ```
/// use warp_common::{DiagnosticBag, Diagnostic, Span};
///
/// let mut bag = DiagnosticBag::new();
/// assert!(!bag.has_errors());
/// bag.push(Diagnostic::error("undeclared variable `zz`", Span::new(4, 6)));
/// assert!(bag.has_errors());
/// assert_eq!(bag.iter().count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiagnosticBag {
    diags: Vec<Diagnostic>,
}

impl DiagnosticBag {
    /// Creates an empty bag.
    pub fn new() -> DiagnosticBag {
        DiagnosticBag::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Convenience: add an error at `span`.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Convenience: add a warning at `span`.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// Returns `true` if any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Iterates over all diagnostics in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diags.iter()
    }

    /// Number of diagnostics collected.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Returns `true` if no diagnostics were collected.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Moves all diagnostics from `other` into `self`.
    pub fn extend(&mut self, other: DiagnosticBag) {
        self.diags.extend(other.diags);
    }

    /// Consumes the bag, yielding its diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }
}

impl fmt::Display for DiagnosticBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DiagnosticBag {}

impl IntoIterator for DiagnosticBag {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl<'a> IntoIterator for &'a DiagnosticBag {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn bag_accumulates() {
        let mut bag = DiagnosticBag::new();
        bag.warning("queue nearly full", Span::new(0, 1));
        assert!(!bag.has_errors());
        bag.error("queue overflow", Span::new(2, 3));
        assert!(bag.has_errors());
        assert_eq!(bag.len(), 2);

        let mut other = DiagnosticBag::new();
        other.error("table memory exhausted", Span::new(4, 5));
        bag.extend(other);
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.into_vec().len(), 3);
    }

    #[test]
    fn render_includes_line_col() {
        let d = Diagnostic::error("bad token", Span::new(4, 5));
        let rendered = d.render("abc\ndef");
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("bad token"));
        let g = Diagnostic::error_global("no cellprogram");
        assert_eq!(g.render(""), "error: no cellprogram");
    }

    #[test]
    fn display_impls() {
        let d = Diagnostic::warning("w", Span::new(1, 2));
        assert_eq!(d.to_string(), "warning: w at 1..2");
        let mut bag = DiagnosticBag::new();
        bag.push(d.clone());
        bag.push(Diagnostic::error_global("e"));
        let s = bag.to_string();
        assert!(s.contains("warning: w"));
        assert!(s.contains("error: e"));
        assert_eq!((&bag).into_iter().count(), 2);
    }
}
