//! Typed index vectors.
//!
//! IR arenas (DAG nodes, regions, micro-instructions, IU registers) are
//! stored in flat vectors indexed by small typed ids. The [`crate::define_id!`]
//! macro declares an id type and [`IdVec`] is a vector indexable only by
//! that id type, preventing accidental cross-arena indexing.

use std::fmt;
use std::marker::PhantomData;

/// Implemented by typed index newtypes declared with [`crate::define_id!`].
pub trait Id: Copy + Eq {
    /// Constructs an id from a raw index.
    fn from_index(index: usize) -> Self;
    /// The raw index.
    fn index(self) -> usize;
}

/// Declares a typed index newtype that implements [`crate::idvec::Id`].
///
/// # Examples
///
/// ```
/// use warp_common::{define_id, IdVec};
///
/// define_id!(NodeId, "n");
///
/// let mut nodes: IdVec<NodeId, &str> = IdVec::new();
/// let a = nodes.push("load");
/// let b = nodes.push("fadd");
/// assert_eq!(nodes[a], "load");
/// assert_eq!(nodes[b], "fadd");
/// assert_eq!(format!("{a:?}"), "n0");
/// ```
#[macro_export]
macro_rules! define_id {
    ($name:ident, $prefix:literal) => {
        /// A typed arena index.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $crate::idvec::Id for $name {
            fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("id overflow"))
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// A vector indexable only by its associated id type.
pub struct IdVec<I, T> {
    items: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Id, T> IdVec<I, T> {
    /// Creates an empty arena.
    pub fn new() -> IdVec<I, T> {
        IdVec {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty arena with reserved capacity.
    pub fn with_capacity(cap: usize) -> IdVec<I, T> {
        IdVec {
            items: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Appends `item`, returning its id.
    pub fn push(&mut self, item: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(item);
        id
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the arena holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The id that the next `push` will return.
    pub fn next_id(&self) -> I {
        I::from_index(self.items.len())
    }

    /// Fallible lookup.
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.index())
    }

    /// Iterates over `(id, &item)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates over all ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = I> + use<I, T> {
        (0..self.items.len()).map(I::from_index)
    }

    /// Iterates over items only.
    pub fn values(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Mutable iteration over items only.
    pub fn values_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.items.iter_mut()
    }

    /// Consumes the arena, yielding the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }
}

impl<I: Id, T> Default for IdVec<I, T> {
    fn default() -> IdVec<I, T> {
        IdVec::new()
    }
}

impl<I: Id, T: Clone> Clone for IdVec<I, T> {
    fn clone(&self) -> IdVec<I, T> {
        IdVec {
            items: self.items.clone(),
            _marker: PhantomData,
        }
    }
}

impl<I: Id, T: fmt::Debug> fmt::Debug for IdVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<I: Id, T: PartialEq> PartialEq for IdVec<I, T> {
    fn eq(&self, other: &IdVec<I, T>) -> bool {
        self.items == other.items
    }
}

impl<I: Id, T: Eq> Eq for IdVec<I, T> {}

impl<I: Id, T> std::ops::Index<I> for IdVec<I, T> {
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.items[id.index()]
    }
}

impl<I: Id, T> std::ops::IndexMut<I> for IdVec<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.index()]
    }
}

impl<I: Id, T> FromIterator<T> for IdVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> IdVec<I, T> {
        IdVec {
            items: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_id!(TestId, "t");

    #[test]
    fn push_and_index() {
        let mut v: IdVec<TestId, i32> = IdVec::new();
        assert!(v.is_empty());
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(v[a], 10);
        assert_eq!(v[b], 20);
        v[a] = 11;
        assert_eq!(v[a], 11);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(TestId(5)), None);
        assert_eq!(v.next_id(), TestId(2));
    }

    #[test]
    fn iteration() {
        let v: IdVec<TestId, char> = "abc".chars().collect();
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(
            pairs,
            vec![(TestId(0), &'a'), (TestId(1), &'b'), (TestId(2), &'c')]
        );
        assert_eq!(v.ids().count(), 3);
        assert_eq!(v.values().copied().collect::<String>(), "abc");
        assert_eq!(v.as_slice(), &['a', 'b', 'c']);
        assert_eq!(v.clone().into_vec(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(format!("{:?}", TestId(7)), "t7");
        assert_eq!(format!("{}", TestId(7)), "t7");
    }

    #[test]
    fn eq_and_debug() {
        let a: IdVec<TestId, u8> = [1, 2].into_iter().collect();
        let b: IdVec<TestId, u8> = [1, 2].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "[1, 2]");
    }
}
