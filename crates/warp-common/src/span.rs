//! Source locations.

use std::fmt;

/// A half-open byte range `[start, end)` into a W2 source file.
///
/// # Examples
///
/// ```
/// use warp_common::Span;
///
/// let a = Span::new(3, 7);
/// let b = Span::new(5, 12);
/// assert_eq!(a.merge(b), Span::new(3, 12));
/// assert_eq!(a.len(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Span {
        assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-length span used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` for zero-length spans.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Computes the 1-based `(line, column)` of `self.start` in `source`.
    pub fn line_col(self, source: &str) -> (u32, u32) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i as u32 >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_len() {
        let a = Span::new(1, 4);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(1, 12));
        assert_eq!(b.merge(a), Span::new(1, 12));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::DUMMY.is_empty());
    }

    #[test]
    fn line_col() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (2, 3));
        assert_eq!(Span::new(8, 9).line_col(src), (3, 1));
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn inverted_span_panics() {
        let _ = Span::new(5, 2);
    }
}
