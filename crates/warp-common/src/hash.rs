//! Stable content hashing for cache keys.
//!
//! The compile cache (`warp-compiler::cache`) addresses compiled
//! artifacts by a hash of the source bytes plus every option field
//! that affects the compiler's output. That key must be *stable* —
//! identical across processes and runs, independent of
//! `std::collections::hash_map::RandomState` seeding — so the default
//! [`std::hash::Hasher`] machinery is the wrong tool. This module
//! provides a tiny, dependency-free FNV-1a implementation instead:
//! a streaming 64-bit hasher plus a 128-bit convenience key built from
//! two differently-seeded streams, which makes accidental collisions
//! in a cache of any plausible size a non-concern.
//!
//! # Examples
//!
//! ```
//! use warp_common::hash::{fnv1a64, StableHasher};
//!
//! let mut h = StableHasher::new();
//! h.write(b"module m");
//! h.write_u64(7);
//! assert_ne!(h.finish(), fnv1a64(b"module m"));
//! assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
//! ```

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

/// A streaming FNV-1a 64-bit hasher with a stable, documented
/// algorithm. Unlike [`std::collections::hash_map::DefaultHasher`],
/// two processes (or two runs of one process) always agree on the
/// digest of the same byte stream.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A hasher at the standard FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// A hasher whose initial state is perturbed by `seed`, giving an
    /// independent hash family (used to widen a 64-bit digest to 128
    /// bits).
    pub fn with_seed(seed: u64) -> StableHasher {
        let mut h = StableHasher::new();
        h.write_u64(seed);
        h
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a string with a length prefix, so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

/// A 128-bit stable content key: two independently-seeded FNV-1a
/// streams over the same bytes. Collisions would need simultaneous
/// 64-bit collisions in both families, which for an in-memory cache is
/// negligible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentKey {
    /// Digest of the unseeded stream.
    pub lo: u64,
    /// Digest of the seeded stream.
    pub hi: u64,
}

impl ContentKey {
    /// Hashes `parts` — each part length-prefixed — into a key.
    pub fn of_parts<'a>(parts: impl IntoIterator<Item = &'a [u8]> + Clone) -> ContentKey {
        let mut lo = StableHasher::new();
        let mut hi = StableHasher::with_seed(0x9E37_79B9_7F4A_7C15);
        for part in parts.clone() {
            lo.write_u64(part.len() as u64);
            lo.write(part);
        }
        for part in parts {
            hi.write_u64(part.len() as u64);
            hi.write(part);
        }
        ContentKey {
            lo: lo.finish(),
            hi: hi.finish(),
        }
    }
}

impl std::fmt::Display for ContentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn content_key_is_stable_and_sensitive() {
        let k1 = ContentKey::of_parts([b"source".as_slice(), b"opts".as_slice()]);
        let k2 = ContentKey::of_parts([b"source".as_slice(), b"opts".as_slice()]);
        assert_eq!(k1, k2);
        let k3 = ContentKey::of_parts([b"source".as_slice(), b"opts2".as_slice()]);
        assert_ne!(k1, k3);
        assert_eq!(k1.to_string().len(), 32);
    }

    #[test]
    fn seeded_streams_are_independent() {
        let k = ContentKey::of_parts([b"x".as_slice()]);
        assert_ne!(k.lo, k.hi);
    }
}
