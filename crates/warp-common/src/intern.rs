//! String interning for identifiers.
//!
//! The front end and IR refer to variables, arrays, functions, and module
//! parameters by [`Symbol`], a small copyable handle into an [`Interner`].

use std::collections::HashMap;
use std::fmt;

/// An interned string handle.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; resolving a symbol from a different interner yields an arbitrary
/// (or panicking) result.
///
/// # Examples
///
/// ```
/// use warp_common::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("coeff");
/// let b = interner.intern("coeff");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "coeff");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol within its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A deduplicating string table.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning the existing handle if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_resolve() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "x");
        assert_eq!(i.resolve(b), "y");
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn get_without_insert() {
        let mut i = Interner::new();
        assert!(i.get("z").is_none());
        let z = i.intern("z");
        assert_eq!(i.get("z"), Some(z));
    }

    #[test]
    fn debug_formats() {
        let mut i = Interner::new();
        let s = i.intern("q");
        assert_eq!(format!("{s:?}"), "sym#0");
    }
}
