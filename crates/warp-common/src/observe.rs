//! Pass observation: per-pass timing and artifact hooks.
//!
//! The compiler driver runs as an explicit pipeline of named passes
//! (paper Figure 6-1: front end → flow analysis → decomposition → cell
//! code generation → skew/queue analysis → IU code generation → host
//! code generation). This module holds the crate-neutral pieces of that
//! pipeline:
//!
//! * [`Artifact`] — the dumpable product of one pass. Every stage crate
//!   implements it for its output type (HIR, cell IR, microcode, …), so
//!   observers can pretty-print any intermediate without knowing its
//!   concrete type.
//! * [`PassObserver`] — enter/exit callbacks a driver invokes around
//!   each pass; [`CollectDumps`] is the standard implementation behind
//!   `w2c --dump-after`.
//! * [`PassTiming`] and [`timing_table`] — the per-pass wall-clock
//!   breakdown behind `w2c --time-passes` and `Metrics::per_pass`.

use std::fmt::Write as _;
use std::time::Duration;

/// A dumpable intermediate artifact produced by a compiler pass.
///
/// Implementations must render deterministically (no hash-map iteration
/// order, no addresses): dumps are compared by golden tests.
pub trait Artifact {
    /// Short kind tag, e.g. `"hir"` or `"cell-ucode"`.
    fn kind(&self) -> &'static str;
    /// Human-readable, deterministic rendering of the artifact.
    fn dump(&self) -> String;
}

/// Wall-clock timing of one pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassTiming {
    /// Pass name (one of the driver's pipeline names).
    pub name: &'static str,
    /// Time spent inside the pass.
    pub duration: Duration,
}

/// Observer of pass execution. The driver calls [`enter_pass`]
/// immediately before running a pass and [`exit_pass`] immediately
/// after it succeeds, with the elapsed wall-clock time and the pass's
/// output artifact.
///
/// Both methods default to no-ops so observers only override what they
/// need.
///
/// [`enter_pass`]: PassObserver::enter_pass
/// [`exit_pass`]: PassObserver::exit_pass
pub trait PassObserver {
    /// Called before the named pass runs.
    fn enter_pass(&mut self, _name: &'static str) {}
    /// Called after the named pass succeeds.
    fn exit_pass(&mut self, _name: &'static str, _elapsed: Duration, _artifact: &dyn Artifact) {}
}

/// An observer that ignores every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl PassObserver for NullObserver {}

/// An observer that captures the artifact dumps of selected passes
/// (all passes when constructed with [`CollectDumps::all`]).
#[derive(Debug, Default)]
pub struct CollectDumps {
    wanted: Option<Vec<String>>,
    dumps: Vec<PassDump>,
}

/// One captured artifact dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassDump {
    /// The pass that produced the artifact.
    pub pass: &'static str,
    /// The artifact's kind tag.
    pub kind: &'static str,
    /// The rendered artifact.
    pub text: String,
}

impl CollectDumps {
    /// Captures only the passes named in `passes`.
    pub fn for_passes<S: Into<String>>(passes: impl IntoIterator<Item = S>) -> CollectDumps {
        CollectDumps {
            wanted: Some(passes.into_iter().map(Into::into).collect()),
            dumps: Vec::new(),
        }
    }

    /// Captures every pass.
    pub fn all() -> CollectDumps {
        CollectDumps {
            wanted: None,
            dumps: Vec::new(),
        }
    }

    /// The captured dumps, in pass execution order.
    pub fn dumps(&self) -> &[PassDump] {
        &self.dumps
    }

    /// Consumes the observer and returns the captured dumps.
    pub fn into_dumps(self) -> Vec<PassDump> {
        self.dumps
    }
}

impl PassObserver for CollectDumps {
    fn exit_pass(&mut self, name: &'static str, _elapsed: Duration, artifact: &dyn Artifact) {
        let wanted = match &self.wanted {
            None => true,
            Some(w) => w.iter().any(|p| p == name),
        };
        if wanted {
            self.dumps.push(PassDump {
                pass: name,
                kind: artifact.kind(),
                text: artifact.dump(),
            });
        }
    }
}

/// Renders per-pass timings as an aligned table with a percentage
/// column, the format `w2c --time-passes` prints:
///
/// ```text
/// pass            time      % of total
/// frontend        102.3µs        12.4%
/// ...
/// total           822.9µs
/// ```
pub fn timing_table(timings: &[PassTiming], total: Duration) -> String {
    let mut out = String::new();
    let name_w = timings
        .iter()
        .map(|t| t.name.len())
        .chain([5])
        .max()
        .unwrap_or(5)
        + 2;
    let _ = writeln!(
        out,
        "{:<name_w$} {:>12} {:>12}",
        "pass", "time", "% of total"
    );
    let total_secs = total.as_secs_f64();
    for t in timings {
        let pct = if total_secs > 0.0 {
            t.duration.as_secs_f64() / total_secs * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<name_w$} {:>12} {:>11.1}%",
            t.name,
            format!("{:.1?}", t.duration),
            pct
        );
    }
    let _ = writeln!(out, "{:<name_w$} {:>12}", "total", format!("{total:.1?}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake(&'static str);
    impl Artifact for Fake {
        fn kind(&self) -> &'static str {
            "fake"
        }
        fn dump(&self) -> String {
            self.0.to_owned()
        }
    }

    #[test]
    fn collect_dumps_filters_by_pass() {
        let mut obs = CollectDumps::for_passes(["lower"]);
        obs.enter_pass("frontend");
        obs.exit_pass("frontend", Duration::from_micros(5), &Fake("hir"));
        obs.enter_pass("lower");
        obs.exit_pass("lower", Duration::from_micros(7), &Fake("ir"));
        assert_eq!(
            obs.dumps(),
            &[PassDump {
                pass: "lower",
                kind: "fake",
                text: "ir".to_owned(),
            }]
        );
    }

    #[test]
    fn collect_all_keeps_order() {
        let mut obs = CollectDumps::all();
        obs.exit_pass("a", Duration::ZERO, &Fake("1"));
        obs.exit_pass("b", Duration::ZERO, &Fake("2"));
        let passes: Vec<_> = obs.dumps().iter().map(|d| d.pass).collect();
        assert_eq!(passes, ["a", "b"]);
    }

    #[test]
    fn timing_table_has_all_rows_and_total() {
        let t = [
            PassTiming {
                name: "frontend",
                duration: Duration::from_micros(100),
            },
            PassTiming {
                name: "cell-codegen",
                duration: Duration::from_micros(300),
            },
        ];
        let table = timing_table(&t, Duration::from_micros(400));
        assert!(table.contains("frontend"), "{table}");
        assert!(table.contains("cell-codegen"), "{table}");
        assert!(table.contains("total"), "{table}");
        assert!(table.contains("75.0%"), "{table}");
    }
}
