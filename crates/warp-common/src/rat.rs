//! Exact rational arithmetic over `i128`.
//!
//! The skew analysis (paper §6.2.1) manipulates timing functions such as
//! `τ(n) = 52/3 + 5/3·n − 2/3·((n−4) mod 3)` and takes maxima of their
//! differences over integer domains. Every coefficient is a small rational;
//! [`Rat`] keeps them exact so the derived skew bounds are sound.
//!
//! Values are always stored in canonical form: the denominator is positive
//! and `gcd(|num|, den) == 1`. Zero is `0/1`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number with `i128` numerator and denominator.
///
/// # Examples
///
/// ```
/// use warp_common::Rat;
///
/// let a = Rat::new(5, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(11, 6));
/// assert_eq!((a * b).to_string(), "5/18");
/// ```
///
/// # Panics
///
/// Construction and arithmetic panic on a zero denominator or on `i128`
/// overflow; the compiler's timing quantities are tiny compared to `i128`
/// range, so overflow indicates a logic error rather than a data condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Rat {
    /// The rational zero (`0/1`).
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one (`1/1`).
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den` in canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational denominator must be nonzero");
        let g = gcd(num, den);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The numerator of the canonical form (sign lives here).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The (always positive) denominator of the canonical form.
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Largest integer `≤ self`.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(self) -> i128 {
        -((-self).floor())
    }

    /// Rounds toward zero.
    pub fn trunc(self) -> i128 {
        self.num / self.den
    }

    /// `self − floor(self)`, always in `[0, 1)`.
    pub fn fract(self) -> Rat {
        self - Rat::from(self.floor())
    }

    /// Returns the maximum of `self` and `other`.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the minimum of `self` and `other`.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }

    /// Sign of the value: `-1`, `0`, or `1`.
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "cannot invert zero");
        Rat::new(self.den, self.num)
    }

    /// Lossy conversion for reporting; never used in analysis decisions.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Creates `num/den` in canonical form, returning `None` on a zero
    /// denominator or if canonicalisation would overflow `i128`.
    ///
    /// This is the fallible twin of [`Rat::new`] for inputs that are not
    /// under the compiler's control (e.g. timing functions derived from
    /// adversarial programs).
    pub fn checked_new(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        // The plain gcd uses `%` and unary negation, both of which can
        // overflow at i128::MIN (`MIN % -1`, `-MIN`); this path must not.
        fn checked_gcd(mut a: i128, mut b: i128) -> Option<i128> {
            while b != 0 {
                let t = a.checked_rem(b)?;
                a = b;
                b = t;
            }
            if a < 0 {
                a.checked_neg()
            } else {
                Some(a)
            }
        }
        // g is positive: it is zero only when num == den == 0, which the
        // den check above excludes. Division by the positive gcd cannot
        // overflow.
        let g = checked_gcd(num, den)?;
        let mut num = num / g;
        let mut den = den / g;
        if den < 0 {
            num = num.checked_neg()?;
            den = den.checked_neg()?;
        }
        Some(Rat { num, den })
    }

    /// Checked addition: `None` if any intermediate product or sum
    /// overflows `i128`.
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        let a = self.num.checked_mul(rhs.den)?;
        let b = rhs.num.checked_mul(self.den)?;
        Rat::checked_new(a.checked_add(b)?, self.den.checked_mul(rhs.den)?)
    }

    /// Checked subtraction: `None` on `i128` overflow.
    pub fn checked_sub(self, rhs: Rat) -> Option<Rat> {
        let a = self.num.checked_mul(rhs.den)?;
        let b = rhs.num.checked_mul(self.den)?;
        Rat::checked_new(a.checked_sub(b)?, self.den.checked_mul(rhs.den)?)
    }

    /// Checked multiplication: `None` on `i128` overflow.
    pub fn checked_mul(self, rhs: Rat) -> Option<Rat> {
        Rat::checked_new(
            self.num.checked_mul(rhs.num)?,
            self.den.checked_mul(rhs.den)?,
        )
    }

    /// Checked division: `None` if `rhs` is zero or on `i128` overflow.
    pub fn checked_div(self, rhs: Rat) -> Option<Rat> {
        if rhs.num == 0 {
            return None;
        }
        Rat::checked_new(
            self.num.checked_mul(rhs.den)?,
            self.den.checked_mul(rhs.num)?,
        )
    }

    /// Checked comparison: `None` if the cross products overflow `i128`.
    ///
    /// [`Ord::cmp`] uses unchecked cross-multiplication; use this when
    /// comparing rationals built from untrusted magnitudes.
    pub fn checked_cmp(self, other: Rat) -> Option<Ordering> {
        let a = self.num.checked_mul(other.den)?;
        let b = other.num.checked_mul(self.den)?;
        Some(a.cmp(&b))
    }

    /// Checked maximum via [`Rat::checked_cmp`].
    pub fn checked_max(self, other: Rat) -> Option<Rat> {
        match self.checked_cmp(other)? {
            Ordering::Less => Some(other),
            _ => Some(self),
        }
    }

    /// Checked minimum via [`Rat::checked_cmp`].
    pub fn checked_min(self, other: Rat) -> Option<Rat> {
        match self.checked_cmp(other)? {
            Ordering::Greater => Some(other),
            _ => Some(self),
        }
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl From<i128> for Rat {
    fn from(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from(v as i128)
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat::from(v as i128)
    }
}

impl From<u32> for Rat {
    fn from(v: u32) -> Rat {
        Rat::from(v as i128)
    }
}

impl From<usize> for Rat {
    fn from(v: usize) -> Rat {
        Rat::from(v as i128)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        assert!(rhs.num != 0, "division by zero rational");
        Rat::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl std::iter::Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
        assert_eq!(Rat::new(0, 5).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(5, 3);
        let b = Rat::new(3, 2);
        assert_eq!(a + b, Rat::new(19, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(5, 2));
        assert_eq!(a / b, Rat::new(10, 9));
        assert_eq!(-a, Rat::new(-5, 3));
    }

    #[test]
    fn assign_ops() {
        let mut x = Rat::ONE;
        x += Rat::new(1, 2);
        x -= Rat::new(1, 4);
        x *= Rat::from(4);
        x /= Rat::from(5);
        assert_eq!(x, Rat::new(1, 1));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::new(7, 7) == Rat::ONE);
        assert_eq!(Rat::new(5, 3).max(Rat::new(3, 2)), Rat::new(5, 3));
        assert_eq!(Rat::new(5, 3).min(Rat::new(3, 2)), Rat::new(3, 2));
    }

    #[test]
    fn floor_ceil_trunc() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::new(-7, 2).trunc(), -3);
        assert_eq!(Rat::from(5).floor(), 5);
        assert_eq!(Rat::from(5).ceil(), 5);
        assert_eq!(Rat::new(-1, 3).fract(), Rat::new(2, 3));
    }

    #[test]
    fn paper_bound_example() {
        // Paper §6.2.1, partially-overlapped case:
        // 52/3 − 1 + (5/3 − 3/2)·8 = 49/3 + 4/3 = 53/3 = 17 + 2/3.
        let v = Rat::new(52, 3) - Rat::ONE + (Rat::new(5, 3) - Rat::new(3, 2)) * Rat::from(8);
        assert_eq!(v, Rat::new(53, 3));
        assert_eq!(v.ceil(), 18);
        assert_eq!(v.floor(), 17);
        assert_eq!(v.to_string(), "53/3");
    }

    #[test]
    fn misc_accessors() {
        let r = Rat::new(-3, 9);
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 3);
        assert!(!r.is_integer());
        assert_eq!(r.abs(), Rat::new(1, 3));
        assert_eq!(r.signum(), -1);
        assert_eq!(r.recip(), Rat::from(-3));
        assert!((r.to_f64() + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sum_iterator() {
        let s: Rat = (1..=4).map(|i| Rat::new(1, i)).sum();
        assert_eq!(s, Rat::new(25, 12));
    }

    #[test]
    fn checked_matches_unchecked_in_range() {
        let a = Rat::new(5, 3);
        let b = Rat::new(3, 2);
        assert_eq!(a.checked_add(b), Some(a + b));
        assert_eq!(a.checked_sub(b), Some(a - b));
        assert_eq!(a.checked_mul(b), Some(a * b));
        assert_eq!(a.checked_div(b), Some(a / b));
        assert_eq!(a.checked_cmp(b), Some(Ordering::Greater));
        assert_eq!(a.checked_max(b), Some(a));
        assert_eq!(a.checked_min(b), Some(b));
        assert_eq!(Rat::checked_new(2, -4), Some(Rat::new(-1, 2)));
    }

    #[test]
    fn checked_new_edge_cases() {
        assert_eq!(Rat::checked_new(1, 0), None);
        assert_eq!(Rat::checked_new(0, 0), None);
        // i128::MIN numerator with a positive denominator is representable.
        assert_eq!(Rat::checked_new(i128::MIN, 1), Some(Rat::from(i128::MIN)));
        assert_eq!(Rat::checked_new(i128::MIN, 2).map(Rat::denom), Some(1));
        // -(i128::MIN) does not exist, so normalising the sign must fail
        // instead of wrapping.
        assert_eq!(Rat::checked_new(i128::MIN, -1), None);
        assert_eq!(Rat::checked_new(1, i128::MIN), None);
        // Even (MIN, MIN) == 1 is conservatively rejected: the gcd
        // itself cannot be represented.
        assert_eq!(Rat::checked_new(i128::MIN, i128::MIN), None);
        assert_eq!(Rat::checked_new(i128::MAX, i128::MAX), Some(Rat::ONE));
    }

    #[test]
    fn checked_add_overflow_boundary() {
        let max = Rat::from(i128::MAX);
        assert_eq!(max.checked_add(Rat::ONE), None);
        assert_eq!(max.checked_add(Rat::ZERO), Some(max));
        assert_eq!(max.checked_sub(Rat::ONE), Some(Rat::from(i128::MAX - 1)));
        let min = Rat::from(i128::MIN);
        assert_eq!(min.checked_sub(Rat::ONE), None);
        assert_eq!(min.checked_add(Rat::ONE), Some(Rat::from(i128::MIN + 1)));
        // Cross products overflow even when the reduced result would fit:
        // (MAX/2) + (1/3) multiplies MAX·3 before reducing.
        let near = Rat::new(i128::MAX, 2);
        assert_eq!(near.checked_add(Rat::new(1, 3)), None);
    }

    #[test]
    fn checked_mul_overflow_boundary() {
        let big = Rat::from(1i128 << 64);
        assert_eq!(big.checked_mul(big), None);
        let fits = Rat::from(1i128 << 63);
        assert_eq!(fits.checked_mul(fits), Some(Rat::from(1i128 << 126)));
        assert_eq!(
            Rat::from(i128::MAX).checked_mul(Rat::ONE),
            Some(Rat::from(i128::MAX))
        );
    }

    #[test]
    fn checked_div_boundary() {
        assert_eq!(Rat::ONE.checked_div(Rat::ZERO), None);
        let max = Rat::from(i128::MAX);
        assert_eq!(max.checked_div(Rat::ONE), Some(max));
        // 1 / (1/MAX) = MAX is fine; 1 / (1/MAX) squared overflows.
        let tiny = Rat::new(1, i128::MAX);
        assert_eq!(Rat::ONE.checked_div(tiny), Some(max));
        assert_eq!(tiny.checked_div(max), None);
    }

    #[test]
    fn checked_cmp_overflow_boundary() {
        // Comparing MAX/2 with MAX/3 cross-multiplies MAX·3: overflow.
        let a = Rat::new(i128::MAX, 2);
        let b = Rat::new(i128::MAX, 3);
        assert_eq!(a.checked_cmp(b), None);
        assert_eq!(a.checked_max(b), None);
        assert_eq!(a.checked_min(b), None);
        // Small values still compare.
        assert_eq!(
            Rat::new(1, 3).checked_cmp(Rat::new(1, 2)),
            Some(Ordering::Less)
        );
    }
}
