//! Shared infrastructure for the Warp compiler reproduction.
//!
//! This crate provides the small, dependency-free building blocks used by
//! every other crate in the workspace:
//!
//! * [`Rat`] — exact rational arithmetic. The minimum-skew analysis of
//!   Gross & Lam (PLDI 1986, §6.2.1) bounds differences of I/O timing
//!   functions whose coefficients are rationals such as `5/3` or `52/3`;
//!   floating point would make those bounds unsound.
//! * [`Symbol`] and [`Interner`] — cheap interned identifiers for the W2
//!   front end and IR.
//! * [`Span`] — byte-range source locations for diagnostics.
//! * [`Diagnostic`] and [`DiagnosticBag`] — structured compile errors and
//!   warnings.
//! * [`IdVec`] and the [`define_id!`] macro — typed index vectors used for
//!   IR arenas (DAG nodes, basic blocks, registers, …).
//! * [`Artifact`], [`PassObserver`] and [`PassTiming`] — the pass
//!   observation hooks the driver's pass manager is built on.
//! * [`CancelToken`], [`Clock`] and friends — cooperative cancellation
//!   and injectable time for the resilient service layer.
//!
//! # Examples
//!
//! ```
//! use warp_common::Rat;
//!
//! let bound = Rat::new(52, 3) - Rat::new(1, 1) + Rat::new(1, 6) * Rat::from(8);
//! assert_eq!(bound, Rat::new(53, 3));
//! assert_eq!(bound.ceil(), 18);
//! ```

pub mod ctrl;
pub mod diag;
pub mod hash;
pub mod idvec;
pub mod intern;
pub mod observe;
pub mod rat;
pub mod span;
pub mod vfs;
pub mod wire;

pub use ctrl::{
    splitmix64, CancelReason, CancelToken, Clock, ManualClock, SplitMix64, SystemClock,
};
pub use diag::{Diagnostic, DiagnosticBag, Severity};
pub use hash::{fnv1a64, ContentKey, StableHasher};
pub use idvec::IdVec;
pub use intern::{Interner, Symbol};
pub use observe::{Artifact, CollectDumps, NullObserver, PassDump, PassObserver, PassTiming};
pub use rat::Rat;
pub use span::Span;
pub use vfs::{atomic_write, FaultCounts, FaultProfile, FaultVfs, MemVfs, RealVfs, Vfs, VfsError};
pub use wire::{Decode, Encode, WireError, WireReader};
