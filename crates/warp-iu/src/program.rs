//! The IU program representation.
//!
//! The interface unit runs in lock step with the Warp array, one (ALU
//! op, address emission) pair per cycle. Its compiled program mirrors
//! the cell program's region tree: per cell basic block an [`IuBlock`]
//! emitting the block's addresses, and per loop the register updates
//! that realize strength reduction plus the tail iterations unrolled for
//! the loop-signal latency (paper §6.3.1).
//!
//! Registers carry all state, so the program can be executed (and the
//! address stream enumerated) without knowing the loop variables.

use warp_common::define_id;

define_id!(IuReg, "ir");

/// One IU scalar operation (the IU has add/subtract only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IuOp {
    /// Load an immediate into a register.
    Init {
        /// Destination.
        reg: IuReg,
        /// Value.
        value: i64,
    },
    /// Add an immediate to a register (strength-reduction update).
    AddImm {
        /// Destination.
        reg: IuReg,
        /// Increment (may be negative: subtraction).
        imm: i64,
    },
}

/// Where an emitted address comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmitSource {
    /// The current value of a register.
    Reg(IuReg),
    /// Register plus a constant offset (costs the ALU that cycle).
    RegOffset(IuReg, i64),
    /// The next sequential word of table memory.
    Table,
}

/// One address emission within a block execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmitPlan {
    /// Cycle within the block at which the address enters the Adr path.
    pub cycle: u32,
    /// Source of the value.
    pub source: EmitSource,
}

/// The IU program for one cell basic block (one execution).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IuBlock {
    /// Length in cycles (same as the cell block).
    pub len: u32,
    /// Address emissions in Adr-FIFO order.
    pub emits: Vec<EmitPlan>,
}

/// A region of the IU program, mirroring the cell code regions.
#[derive(Clone, Debug, PartialEq)]
pub enum IuRegion {
    /// Straight-line block.
    Block(IuBlock),
    /// Counted loop.
    Loop {
        /// Iteration count.
        count: u64,
        /// Body regions.
        body: Vec<IuRegion>,
        /// Register updates applied at the end of every iteration.
        updates: Vec<IuOp>,
        /// Iterations unrolled at the tail because the IU needs 3 cycles
        /// to update and test its loop counter (paper §6.3.1:
        /// `k = 3/len + 1` when the body is shorter than the test).
        unrolled_tail: u64,
    },
}

impl IuRegion {
    /// Static micro-instruction count: block cycles once, plus one extra
    /// copy of the body per unrolled tail iteration.
    pub fn static_len(&self) -> u64 {
        match self {
            IuRegion::Block(b) => u64::from(b.len),
            IuRegion::Loop {
                body,
                updates,
                unrolled_tail,
                ..
            } => {
                let body_len: u64 = body.iter().map(IuRegion::static_len).sum();
                (1 + unrolled_tail) * (body_len + updates.len() as u64)
            }
        }
    }
}

/// The complete IU program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IuProgram {
    /// Module name.
    pub name: String,
    /// Registers in use.
    pub regs_used: u32,
    /// Pre-stored addresses in global read order (paper §6.3.2: a 32K
    /// table readable only sequentially).
    pub table: Vec<u32>,
    /// Register initialization, before the first region.
    pub init: Vec<IuOp>,
    /// Program regions in execution order.
    pub regions: Vec<IuRegion>,
}

/// One address on the Adr path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Emission {
    /// Global cycle (relative to program start, aligned with cell 0).
    pub cycle: u64,
    /// The address word.
    pub addr: u32,
}

impl IuProgram {
    /// Static IU µcode length — the Table 7-1 "IU µcode" metric.
    pub fn static_len(&self) -> u64 {
        self.init.len() as u64 + self.regions.iter().map(IuRegion::static_len).sum::<u64>()
    }

    /// Executes the program, streaming every address emission in order.
    ///
    /// # Panics
    ///
    /// Panics if an emitted address is negative or the table is
    /// exhausted — both indicate compiler bugs, not data conditions.
    pub fn visit_emissions(&self, mut f: impl FnMut(Emission)) {
        let mut regs = vec![0i64; self.regs_used as usize];
        for op in &self.init {
            apply(op, &mut regs);
        }
        let mut table_pos = 0usize;
        let mut cycle = 0u64;
        for region in &self.regions {
            self.run_region(region, &mut regs, &mut table_pos, &mut cycle, &mut f);
        }
    }

    fn run_region(
        &self,
        region: &IuRegion,
        regs: &mut [i64],
        table_pos: &mut usize,
        cycle: &mut u64,
        f: &mut impl FnMut(Emission),
    ) {
        match region {
            IuRegion::Block(b) => {
                for e in &b.emits {
                    let value = match e.source {
                        EmitSource::Reg(r) => regs[r.index()],
                        EmitSource::RegOffset(r, off) => regs[r.index()] + off,
                        EmitSource::Table => {
                            let v = self.table[*table_pos];
                            *table_pos += 1;
                            i64::from(v)
                        }
                    };
                    f(Emission {
                        cycle: *cycle + u64::from(e.cycle),
                        addr: u32::try_from(value).expect("IU emitted a negative address"),
                    });
                }
                *cycle += u64::from(b.len);
            }
            IuRegion::Loop {
                count,
                body,
                updates,
                ..
            } => {
                for _ in 0..*count {
                    for r in body {
                        self.run_region(r, regs, table_pos, cycle, f);
                    }
                    for op in updates {
                        apply(op, regs);
                    }
                }
            }
        }
    }

    /// Collects all emissions (convenience for tests and the simulator).
    pub fn emissions(&self) -> Vec<Emission> {
        let mut out = Vec::new();
        self.visit_emissions(|e| out.push(e));
        out
    }

    /// A human-readable IU program listing.
    pub fn listing(&self) -> String {
        fn op(o: &IuOp) -> String {
            match o {
                IuOp::Init { reg, value } => format!("init {reg}, #{value}"),
                IuOp::AddImm { reg, imm } => format!("add {reg}, #{imm}"),
            }
        }
        fn region(out: &mut String, r: &IuRegion, indent: usize) {
            let pad = "  ".repeat(indent);
            match r {
                IuRegion::Block(b) => {
                    for e in &b.emits {
                        let src = match e.source {
                            EmitSource::Reg(r) => format!("{r}"),
                            EmitSource::RegOffset(r, off) => format!("{r}+{off}"),
                            EmitSource::Table => "table++".to_owned(),
                        };
                        out.push_str(&format!(
                            "{pad}{:>4}: emit {src}
",
                            e.cycle
                        ));
                    }
                    if b.emits.is_empty() {
                        out.push_str(&format!(
                            "{pad}  ({} idle cycles)
",
                            b.len
                        ));
                    }
                }
                IuRegion::Loop {
                    count,
                    body,
                    updates,
                    unrolled_tail,
                } => {
                    out.push_str(&format!(
                        "{pad}loop x{count} (tail unrolled {unrolled_tail}) {{
"
                    ));
                    for r in body {
                        region(out, r, indent + 1);
                    }
                    for u in updates {
                        out.push_str(&format!(
                            "{pad}  {}
",
                            op(u)
                        ));
                    }
                    out.push_str(&format!(
                        "{pad}}}
"
                    ));
                }
            }
        }
        let mut out = format!(
            "; IU program `{}`: {} instructions, {} registers, {} table words
",
            self.name,
            self.static_len(),
            self.regs_used,
            self.table.len()
        );
        for o in &self.init {
            out.push_str(&format!(
                "      {}
",
                op(o)
            ));
        }
        for r in &self.regions {
            region(&mut out, r, 0);
        }
        out
    }
}

impl warp_common::Artifact for IuProgram {
    fn kind(&self) -> &'static str {
        "iu-ucode"
    }

    fn dump(&self) -> String {
        self.listing()
    }
}

use warp_common::idvec::Id as _;

fn apply(op: &IuOp, regs: &mut [i64]) {
    match *op {
        IuOp::Init { reg, value } => regs[reg.index()] = value,
        IuOp::AddImm { reg, imm } => regs[reg.index()] += imm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strength_reduced_stream() {
        // Two-deep nest over a row-major 4-wide array: addr = 4i + j,
        // i in 0..3, j in 0..4.
        let r = IuReg(0);
        let prog = IuProgram {
            name: "t".into(),
            regs_used: 1,
            table: vec![],
            init: vec![IuOp::Init { reg: r, value: 0 }],
            regions: vec![IuRegion::Loop {
                count: 3,
                body: vec![IuRegion::Loop {
                    count: 4,
                    body: vec![IuRegion::Block(IuBlock {
                        len: 2,
                        emits: vec![EmitPlan {
                            cycle: 0,
                            source: EmitSource::Reg(r),
                        }],
                    })],
                    updates: vec![IuOp::AddImm { reg: r, imm: 1 }],
                    unrolled_tail: 0,
                }],
                // After j's 4 updates the register is 4 past the row
                // start; the row stride is 4, so no correction needed.
                updates: vec![],
                unrolled_tail: 0,
            }],
        };
        let addrs: Vec<u32> = prog.emissions().iter().map(|e| e.addr).collect();
        assert_eq!(addrs, (0..12).collect::<Vec<u32>>());
        let cycles: Vec<u64> = prog.emissions().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, (0..12).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn outer_compensation() {
        // addr = 10*i + j, i in 0..2, j in 0..3: after j's three +1
        // updates the register must be corrected by 10 - 3 = +7.
        let r = IuReg(0);
        let prog = IuProgram {
            name: "t".into(),
            regs_used: 1,
            table: vec![],
            init: vec![IuOp::Init { reg: r, value: 0 }],
            regions: vec![IuRegion::Loop {
                count: 2,
                body: vec![IuRegion::Loop {
                    count: 3,
                    body: vec![IuRegion::Block(IuBlock {
                        len: 1,
                        emits: vec![EmitPlan {
                            cycle: 0,
                            source: EmitSource::Reg(r),
                        }],
                    })],
                    updates: vec![IuOp::AddImm { reg: r, imm: 1 }],
                    unrolled_tail: 0,
                }],
                updates: vec![IuOp::AddImm { reg: r, imm: 7 }],
                unrolled_tail: 0,
            }],
        };
        let addrs: Vec<u32> = prog.emissions().iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn table_source_reads_sequentially() {
        let prog = IuProgram {
            name: "t".into(),
            regs_used: 0,
            table: vec![7, 8, 9],
            init: vec![],
            regions: vec![IuRegion::Loop {
                count: 3,
                body: vec![IuRegion::Block(IuBlock {
                    len: 1,
                    emits: vec![EmitPlan {
                        cycle: 0,
                        source: EmitSource::Table,
                    }],
                })],
                updates: vec![],
                unrolled_tail: 0,
            }],
        };
        let addrs: Vec<u32> = prog.emissions().iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![7, 8, 9]);
    }

    #[test]
    fn static_len_counts_unrolled_tail() {
        let block = IuRegion::Block(IuBlock {
            len: 2,
            emits: vec![],
        });
        let lp = IuRegion::Loop {
            count: 10,
            body: vec![block],
            updates: vec![IuOp::AddImm {
                reg: IuReg(0),
                imm: 1,
            }],
            unrolled_tail: 2,
        };
        // (1 + 2 tail copies) × (2 body + 1 update)
        assert_eq!(lp.static_len(), 9);
        let prog = IuProgram {
            name: "t".into(),
            regs_used: 1,
            table: vec![],
            init: vec![IuOp::Init {
                reg: IuReg(0),
                value: 0,
            }],
            regions: vec![lp],
        };
        assert_eq!(prog.static_len(), 10);
    }

    #[test]
    fn reg_offset_source() {
        let r = IuReg(0);
        let prog = IuProgram {
            name: "t".into(),
            regs_used: 1,
            table: vec![],
            init: vec![IuOp::Init { reg: r, value: 5 }],
            regions: vec![IuRegion::Block(IuBlock {
                len: 2,
                emits: vec![
                    EmitPlan {
                        cycle: 0,
                        source: EmitSource::Reg(r),
                    },
                    EmitPlan {
                        cycle: 1,
                        source: EmitSource::RegOffset(r, 3),
                    },
                ],
            })],
        };
        let addrs: Vec<u32> = prog.emissions().iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![5, 8]);
    }
}
