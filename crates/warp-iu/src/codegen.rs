//! IU code generation (paper §6.3.2).
//!
//! Every data-independent address is an affine function of loop indices.
//! The IU has no multiplier, at most 16 registers, and a 32K-word
//! sequential table, so the generator:
//!
//! 1. groups address slots into *plans* — one induction register per
//!    distinct linear part per block (slots differing by a constant
//!    share the register and emit `reg + offset`),
//! 2. strength-reduces each plan: initialize once, add the inner-loop
//!    stride each iteration, and add a compensation constant at each
//!    outer-loop boundary,
//! 3. moves plans to **table memory** when registers run out, when the
//!    per-iteration ALU budget is exceeded, or when strength reduction
//!    is disabled (the ablation: without it, loop-variant addresses
//!    would need multiplications the IU cannot do),
//! 4. generates loop signals, unrolling the last `k = 3/len + 1`
//!    iterations of loops whose body is shorter than the 3-cycle
//!    counter-update-and-test (paper §6.3.1).

use crate::program::{EmitPlan, EmitSource, IuBlock, IuOp, IuProgram, IuReg, IuRegion};
use std::collections::{BTreeMap, HashMap};
use warp_cell::{BlockCode, CellCode, CodeRegion};
use warp_common::idvec::Id as _;
use warp_common::{Diagnostic, DiagnosticBag};
use warp_ir::affine::{Affine, LoopId};
use warp_ir::{CellIr, Decomposition};

/// Options for the IU code generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IuOptions {
    /// Available registers (16 on the real IU).
    pub registers: u32,
    /// Table memory capacity in words (32K on the real IU).
    pub table_words: usize,
    /// Share one register among addresses that differ by a constant.
    pub share_registers: bool,
    /// Enable strength reduction; when disabled, every loop-variant
    /// address goes to the table (ablation A3).
    pub strength_reduction: bool,
}

impl Default for IuOptions {
    fn default() -> IuOptions {
        IuOptions {
            registers: 16,
            table_words: 32768,
            share_registers: true,
            strength_reduction: true,
        }
    }
}

/// IU-side cycles needed to update and test a loop counter (paper
/// §6.3.1).
pub const LOOP_TEST_CYCLES: u64 = 3;

/// A violated generator invariant, reported as a diagnostic so batch
/// and service callers fail one job instead of aborting the process.
fn internal_error(msg: impl std::fmt::Display) -> DiagnosticBag {
    let mut diags = DiagnosticBag::new();
    diags.push(Diagnostic::error_global(format!(
        "internal IU code generator error: {msg}"
    )));
    diags
}

struct Plan {
    /// Linear part (loop-coefficient map); constant excluded.
    linear: BTreeMap<LoopId, i64>,
    /// Constant of the representative slot.
    base: i64,
    /// Enclosing loops, outermost first.
    nest: Vec<LoopId>,
    /// Index into the flattened block list.
    block_idx: usize,
    /// `(slot position within block, constant offset from base)`.
    emits: Vec<(usize, i64)>,
    /// Total emissions over the whole program.
    dynamic_count: u64,
    /// Destination decided by allocation.
    to_table: bool,
    /// Assigned register (when not in the table).
    reg: Option<IuReg>,
}

struct FlatBlock<'a> {
    code: &'a BlockCode,
    nest: Vec<LoopId>,
    /// Affine per slot, in Adr order (empty when the block has none).
    slots: Vec<Affine>,
}

/// Generates the IU program for a compiled module.
///
/// # Errors
///
/// Reports a diagnostic when the table memory is exhausted (the paper
/// notes nested-loop addresses "can overflow the table memory easily").
pub fn iu_codegen(
    ir: &CellIr,
    dec: &Decomposition,
    code: &CellCode,
    opts: &IuOptions,
) -> Result<IuProgram, DiagnosticBag> {
    let mut diags = DiagnosticBag::new();

    // Flatten blocks in execution order; each code block names the IR
    // block it came from (synthesized prologues/epilogues name none and
    // carry no IU slots).
    let mut flat: Vec<FlatBlock> = Vec::new();
    collect_blocks(&code.regions, &mut Vec::new(), &mut flat);
    for fb in flat.iter_mut() {
        let Some(bid) = fb.code.source else {
            assert!(
                fb.code.adr_deadlines.is_empty(),
                "synthesized blocks cannot consume IU addresses"
            );
            continue;
        };
        let bid = &bid;
        if let Some(slots) = dec.slots.get(bid) {
            fb.slots = slots.iter().map(|s| s.affine.clone()).collect();
            assert_eq!(
                fb.slots.len(),
                fb.code.adr_deadlines.len(),
                "slot/deadline mismatch"
            );
            for (i, &d) in fb.code.adr_deadlines.iter().enumerate() {
                assert!(
                    d as usize >= i,
                    "Adr FIFO deadline earlier than the emission rate permits"
                );
            }
        }
    }

    // Build plans.
    let mut plans: Vec<Plan> = Vec::new();
    for (block_idx, fb) in flat.iter().enumerate() {
        let executions: u64 = fb
            .nest
            .iter()
            .map(|&l| ir.loops[l].count)
            .product::<u64>()
            .max(1);
        let mut by_linear: HashMap<Vec<(LoopId, i64)>, usize> = HashMap::new();
        for (slot_idx, affine) in fb.slots.iter().enumerate() {
            let key: Vec<(LoopId, i64)> = affine.terms.iter().map(|(&l, &c)| (l, c)).collect();
            let plan_idx = if opts.share_registers {
                by_linear.get(&key).copied()
            } else {
                None
            };
            match plan_idx {
                Some(p) => {
                    let offset = affine.constant - plans[p].base;
                    plans[p].emits.push((slot_idx, offset));
                    plans[p].dynamic_count += executions;
                }
                None => {
                    by_linear.insert(key, plans.len());
                    plans.push(Plan {
                        linear: affine.terms.clone(),
                        base: affine.constant,
                        nest: fb.nest.clone(),
                        block_idx,
                        emits: vec![(slot_idx, 0)],
                        dynamic_count: executions,
                        to_table: false,
                        reg: None,
                    });
                }
            }
        }
    }

    // Constant plans never need a register or the table: they emit a
    // literal... but the Adr path carries only what the IU sends, so a
    // constant address still occupies a register-free emission. Model
    // constants as offset-0 emissions from a dedicated zero register?
    // Simpler and faithful: a constant plan is an offset from the "zero"
    // of its own register initialized to the constant with no updates —
    // it only costs a register. (Decomposition only produces loop-variant
    // slots, so this is a corner case for robustness.)

    // Allocation: strength reduction off moves every loop-variant plan
    // to the table.
    if !opts.strength_reduction {
        for p in &mut plans {
            if !p.linear.is_empty() {
                p.to_table = true;
            }
        }
    }

    // ALU budget per loop iteration: updates at the loop boundary plus
    // offset emissions inside the iteration must fit the iteration span.
    loop {
        let mut worst: Option<(usize, u64)> = None; // (plan, overload)
        for (lidx, (span, _count)) in loop_spans(&code.regions).iter().enumerate() {
            let lid = LoopId(lidx as u32);
            let mut ops: u64 = 0;
            let mut contributors: Vec<(usize, u64)> = Vec::new();
            for (pi, p) in plans.iter().enumerate() {
                if p.to_table {
                    continue;
                }
                let mut c: u64 = 0;
                if p.nest.contains(&lid) {
                    c += 1; // the update at this loop's boundary
                    let offs = p.emits.iter().filter(|&&(_, o)| o != 0).count() as u64;
                    // Offset emissions per iteration of this loop.
                    let inner: u64 = p
                        .nest
                        .iter()
                        .skip_while(|&&l| l != lid)
                        .skip(1)
                        .map(|&l| ir.loops[l].count)
                        .product::<u64>()
                        .max(1);
                    c += offs * inner;
                }
                if c > 0 {
                    ops += c;
                    contributors.push((pi, c));
                }
            }
            if ops > *span {
                if let Some(&(pi, c)) = contributors.iter().max_by_key(|&&(_, c)| c) {
                    let overload = ops - span;
                    if worst.is_none_or(|(_, w)| overload > w) {
                        worst = Some((pi, overload));
                        let _ = c;
                    }
                }
            }
        }
        match worst {
            Some((pi, _)) => plans[pi].to_table = true,
            None => break,
        }
    }

    // Register budget: cheapest plans (fewest table words) spill first.
    loop {
        let reg_plans = plans.iter().filter(|p| !p.to_table).count();
        if reg_plans <= opts.registers as usize {
            break;
        }
        // `reg_plans > 0` here, so a victim always exists; the `else`
        // arm keeps this a structural no-op rather than a panic site.
        let victim = plans
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.to_table)
            .min_by_key(|(_, p)| p.dynamic_count)
            .map(|(i, _)| i);
        match victim {
            Some(i) => plans[i].to_table = true,
            None => break,
        }
    }

    // Table capacity.
    let table_need: u64 = plans
        .iter()
        .filter(|p| p.to_table)
        .map(|p| p.dynamic_count)
        .sum();
    if table_need > opts.table_words as u64 {
        diags.push(Diagnostic::error_global(format!(
            "IU table memory exhausted: {table_need} address words needed, {} available \
             (paper §6.3.2: address streams of nested loops overflow the table easily)",
            opts.table_words
        )));
        return Err(diags);
    }

    // Assign registers and build init ops.
    let mut init = Vec::new();
    let mut next_reg = 0u32;
    for p in &mut plans {
        if p.to_table {
            continue;
        }
        let reg = IuReg(next_reg);
        next_reg += 1;
        p.reg = Some(reg);
        let mut value = p.base;
        for &l in &p.nest {
            value += p.linear.get(&l).copied().unwrap_or(0) * ir.loops[l].lo;
        }
        init.push(IuOp::Init { reg, value });
    }

    // Per-block emission plans (slot order) and per-loop updates.
    let mut block_emits: Vec<Vec<EmitPlan>> = vec![Vec::new(); flat.len()];
    for (block_idx, fb) in flat.iter().enumerate() {
        let mut emits: Vec<Option<EmitPlan>> = vec![None; fb.slots.len()];
        for p in plans.iter().filter(|p| p.block_idx == block_idx) {
            for &(slot_idx, offset) in &p.emits {
                let source = if p.to_table {
                    EmitSource::Table
                } else {
                    let Some(reg) = p.reg else {
                        return Err(internal_error(
                            "IU plan bound for a register was never allocated one",
                        ));
                    };
                    if offset == 0 {
                        EmitSource::Reg(reg)
                    } else {
                        EmitSource::RegOffset(reg, offset)
                    }
                };
                emits[slot_idx] = Some(EmitPlan {
                    cycle: slot_idx as u32,
                    source,
                });
            }
        }
        let mut planned = Vec::with_capacity(emits.len());
        for (slot_idx, e) in emits.into_iter().enumerate() {
            match e {
                Some(e) => planned.push(e),
                None => {
                    return Err(internal_error(format!(
                        "IU address slot {slot_idx} of block {block_idx} was never \
                         covered by an emission plan"
                    )));
                }
            }
        }
        block_emits[block_idx] = planned;
    }

    let mut updates_per_loop: HashMap<LoopId, Vec<IuOp>> = HashMap::new();
    for p in &plans {
        if p.to_table {
            continue;
        }
        let Some(reg) = p.reg else {
            return Err(internal_error(
                "IU plan bound for a register was never allocated one",
            ));
        };
        for (j, &l) in p.nest.iter().enumerate() {
            let c = p.linear.get(&l).copied().unwrap_or(0);
            let delta = match p.nest.get(j + 1) {
                Some(&inner) => {
                    let c_inner = p.linear.get(&inner).copied().unwrap_or(0);
                    c - c_inner * ir.loops[inner].count as i64
                }
                None => c,
            };
            if delta != 0 {
                updates_per_loop
                    .entry(l)
                    .or_default()
                    .push(IuOp::AddImm { reg, imm: delta });
            }
        }
    }

    // Table contents: walk the program in execution order evaluating the
    // table plans' affines.
    let mut table: Vec<u32> = Vec::new();
    {
        // Per block, the slot -> plan map for table slots.
        let mut table_slots: Vec<Vec<Option<&Plan>>> =
            flat.iter().map(|fb| vec![None; fb.slots.len()]).collect();
        for p in plans.iter().filter(|p| p.to_table) {
            for &(slot_idx, _) in &p.emits {
                table_slots[p.block_idx][slot_idx] = Some(p);
            }
        }
        let mut env: BTreeMap<LoopId, i64> = BTreeMap::new();
        if let Err(d) = fill_table(
            &code.regions,
            ir,
            &flat,
            &table_slots,
            &mut env,
            0,
            &mut table,
        ) {
            diags.push(d);
            return Err(diags);
        }
    }

    // Assemble regions mirroring the cell code.
    let mut block_counter = 0usize;
    let regions = assemble(
        &code.regions,
        &block_emits,
        &mut updates_per_loop,
        &mut block_counter,
    );

    Ok(IuProgram {
        name: code.name.clone(),
        regs_used: next_reg,
        table,
        init,
        regions,
    })
}

fn collect_blocks<'a>(
    regions: &'a [CodeRegion],
    nest: &mut Vec<LoopId>,
    out: &mut Vec<FlatBlock<'a>>,
) {
    for r in regions {
        match r {
            CodeRegion::Block(b) => out.push(FlatBlock {
                code: b,
                nest: nest.clone(),
                slots: Vec::new(),
            }),
            CodeRegion::Loop { id, body, .. } => {
                nest.push(*id);
                collect_blocks(body, nest, out);
                nest.pop();
            }
        }
    }
}

/// `(iteration span, count)` per loop id.
fn loop_spans(regions: &[CodeRegion]) -> Vec<(u64, u64)> {
    fn walk(regions: &[CodeRegion], out: &mut Vec<(u64, u64)>) {
        for r in regions {
            if let CodeRegion::Loop { id, count, body } = r {
                let span: u64 = body.iter().map(CodeRegion::dynamic_len).sum();
                let idx = id.index();
                if out.len() <= idx {
                    out.resize(idx + 1, (u64::MAX, 0));
                }
                out[idx] = (span.max(1), *count);
                walk(body, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(regions, &mut out);
    // Unused entries get an effectively infinite span.
    for e in &mut out {
        if e.1 == 0 {
            *e = (u64::MAX, 0);
        }
    }
    out
}

/// Walks the program in execution order appending table-plan addresses.
/// `base_idx` is the static index of the first block in `regions`;
/// every iteration of a loop revisits the same static indices.
///
/// A table address that evaluates outside the 32-bit address space
/// (e.g. a negative subscript reached by the loop bounds) is a
/// diagnostic, not a panic: the program is wrong, not the compiler.
fn fill_table(
    regions: &[CodeRegion],
    ir: &CellIr,
    flat: &[FlatBlock],
    table_slots: &[Vec<Option<&Plan>>],
    env: &mut BTreeMap<LoopId, i64>,
    base_idx: usize,
    table: &mut Vec<u32>,
) -> Result<usize, Diagnostic> {
    let mut idx = base_idx;
    for r in regions {
        match r {
            CodeRegion::Block(_) => {
                for (slot_idx, plan) in table_slots[idx].iter().enumerate() {
                    if plan.is_some() {
                        let affine = &flat[idx].slots[slot_idx];
                        let v = affine.eval(env);
                        let word = u32::try_from(v).map_err(|_| {
                            Diagnostic::error_global(format!(
                                "IU table address evaluates to {v}, outside the 32-bit \
                                 address space (check the subscript against its loop bounds)"
                            ))
                        })?;
                        table.push(word);
                    }
                }
                idx += 1;
            }
            CodeRegion::Loop { id, count, body } => {
                let lo = ir.loops[*id].lo;
                let mut after = idx;
                for iter in 0..*count {
                    env.insert(*id, lo + iter as i64);
                    after = fill_table(body, ir, flat, table_slots, env, idx, table)?;
                }
                env.remove(id);
                if *count == 0 {
                    after = idx + count_static_blocks(body);
                }
                idx = after;
            }
        }
    }
    Ok(idx)
}

fn count_static_blocks(regions: &[CodeRegion]) -> usize {
    regions
        .iter()
        .map(|r| match r {
            CodeRegion::Block(_) => 1,
            CodeRegion::Loop { body, .. } => count_static_blocks(body),
        })
        .sum()
}

fn assemble(
    regions: &[CodeRegion],
    block_emits: &[Vec<EmitPlan>],
    updates_per_loop: &mut HashMap<LoopId, Vec<IuOp>>,
    block_counter: &mut usize,
) -> Vec<IuRegion> {
    let mut out = Vec::new();
    for r in regions {
        match r {
            CodeRegion::Block(b) => {
                let idx = *block_counter;
                *block_counter += 1;
                out.push(IuRegion::Block(IuBlock {
                    len: b.len(),
                    emits: block_emits[idx].clone(),
                }));
            }
            CodeRegion::Loop { id, count, body } => {
                let span: u64 = body.iter().map(CodeRegion::dynamic_len).sum::<u64>().max(1);
                let unrolled_tail = if span >= LOOP_TEST_CYCLES {
                    0
                } else {
                    (LOOP_TEST_CYCLES / span + 1).min(count.saturating_sub(1))
                };
                let inner = assemble(body, block_emits, updates_per_loop, block_counter);
                out.push(IuRegion::Loop {
                    count: *count,
                    body: inner,
                    updates: updates_per_loop.remove(id).unwrap_or_default(),
                    unrolled_tail,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use w2_lang::parse_and_check;
    use warp_cell::{codegen as cell_codegen, CellMachine};
    use warp_ir::{decompose, lower, LowerOptions};

    fn compile(body: &str, opts: &IuOptions) -> (CellIr, IuProgram) {
        let src = format!(
            "module m (zs in, rs out) float zs[64]; float rs[64]; \
             cellprogram (cid : 0 : 0) begin function f begin \
             float x, y; float arr[16]; float mat[4, 4]; int i, j; {body} end call f; end"
        );
        let hir = parse_and_check(&src).expect("valid");
        let mut ir = lower(&hir, &LowerOptions::default()).expect("lowers");
        let dec = decompose::decompose(&mut ir);
        let code = cell_codegen(&ir, &CellMachine::default()).expect("cell codegen");
        let iu = iu_codegen(&ir, &dec, &code, opts).expect("iu codegen");
        (ir, iu)
    }

    /// The addresses the cell will consume, in order, with the loop
    /// variables enumerated — the ground truth the IU must reproduce.
    fn expected_stream(ir: &CellIr, dec: &Decomposition) -> Vec<u32> {
        let mut out = Vec::new();
        let mut env = BTreeMap::new();
        walk(&ir.root, ir, dec, &mut env, &mut out);
        fn walk(
            region: &warp_ir::Region,
            ir: &CellIr,
            dec: &Decomposition,
            env: &mut BTreeMap<LoopId, i64>,
            out: &mut Vec<u32>,
        ) {
            match region {
                warp_ir::Region::Block(b) => {
                    if let Some(slots) = dec.slots.get(b) {
                        for s in slots {
                            out.push(s.affine.eval(env) as u32);
                        }
                    }
                }
                warp_ir::Region::Loop { id, body } => {
                    let meta = &ir.loops[*id];
                    for i in 0..meta.count {
                        env.insert(*id, meta.lo + i as i64);
                        walk(body, ir, dec, env, out);
                    }
                    env.remove(id);
                }
                warp_ir::Region::Seq(rs) => {
                    for r in rs {
                        walk(r, ir, dec, env, out);
                    }
                }
            }
        }
        out
    }

    fn check_stream(body: &str, opts: &IuOptions) -> IuProgram {
        let src = format!(
            "module m (zs in, rs out) float zs[64]; float rs[64]; \
             cellprogram (cid : 0 : 0) begin function f begin \
             float x, y; float arr[16]; float mat[4, 4]; int i, j; {body} end call f; end"
        );
        let hir = parse_and_check(&src).expect("valid");
        let mut ir = lower(&hir, &LowerOptions::default()).expect("lowers");
        let dec = decompose::decompose(&mut ir);
        let code = cell_codegen(&ir, &CellMachine::default()).expect("cell codegen");
        let iu = iu_codegen(&ir, &dec, &code, opts).expect("iu codegen");
        let got: Vec<u32> = iu.emissions().iter().map(|e| e.addr).collect();
        assert_eq!(got, expected_stream(&ir, &dec), "address stream mismatch");
        iu
    }

    #[test]
    fn one_dim_loop_stream() {
        let iu = check_stream(
            "for i := 0 to 15 do begin receive (L, X, x, zs[i]); arr[i] := x; end;",
            &IuOptions::default(),
        );
        assert_eq!(iu.regs_used, 1);
        assert!(iu.table.is_empty());
    }

    #[test]
    fn two_dim_loop_stream() {
        let iu = check_stream(
            "for i := 0 to 3 do for j := 0 to 3 do begin receive (L, X, x, zs[i]); mat[i, j] := x; end;",
            &IuOptions::default(),
        );
        assert_eq!(iu.regs_used, 1);
        assert!(iu.table.is_empty());
    }

    #[test]
    fn shared_register_for_offset_addresses() {
        // arr[i] and arr[i+1]: same linear part, one register.
        let iu = check_stream(
            "for i := 0 to 14 do begin receive (L, X, x, zs[i]); arr[i + 1] := x; x := arr[i]; send (R, X, x, rs[i]); end;",
            &IuOptions::default(),
        );
        assert_eq!(iu.regs_used, 1);
        let unshared = check_stream(
            "for i := 0 to 14 do begin receive (L, X, x, zs[i]); arr[i + 1] := x; x := arr[i]; send (R, X, x, rs[i]); end;",
            &IuOptions {
                share_registers: false,
                ..IuOptions::default()
            },
        );
        assert_eq!(unshared.regs_used, 2);
    }

    #[test]
    fn strength_reduction_off_uses_table() {
        let iu = check_stream(
            "for i := 0 to 15 do begin receive (L, X, x, zs[i]); arr[i] := x; end;",
            &IuOptions {
                strength_reduction: false,
                ..IuOptions::default()
            },
        );
        assert_eq!(iu.regs_used, 0);
        assert_eq!(iu.table.len(), 16);
    }

    #[test]
    fn table_exhaustion_reported() {
        let src = "module m (zs in, rs out) float zs[64]; float rs[64]; \
             cellprogram (cid : 0 : 0) begin function f begin \
             float x; float arr[16]; int i, j; \
             for i := 0 to 15 do for j := 0 to 15 do begin receive (L, X, x, zs[i]); arr[j] := x; end; \
             end call f; end";
        let hir = parse_and_check(src).expect("valid");
        let mut ir = lower(&hir, &LowerOptions::default()).expect("lowers");
        let dec = decompose::decompose(&mut ir);
        let code = cell_codegen(&ir, &CellMachine::default()).expect("cell codegen");
        let err = iu_codegen(
            &ir,
            &dec,
            &code,
            &IuOptions {
                strength_reduction: false,
                table_words: 100,
                ..IuOptions::default()
            },
        )
        .expect_err("256 words > 100");
        assert!(err.to_string().contains("table memory exhausted"), "{err}");
    }

    #[test]
    fn register_pressure_spills_to_table() {
        // Four distinct linear parts with one register available: three
        // plans move to the table, the cheapest first.
        let body = "for i := 0 to 3 do for j := 0 to 3 do begin \
             receive (L, X, x, zs[i]); \
             mat[i, j] := x; \
             x := mat[j, i]; \
             arr[i] := x; \
             arr[j] := x; \
             send (R, X, x, rs[i]); end;";
        let iu = check_stream(
            body,
            &IuOptions {
                registers: 1,
                ..IuOptions::default()
            },
        );
        assert_eq!(iu.regs_used, 1);
        assert!(!iu.table.is_empty());
        // With all 16 registers nothing spills.
        let full = check_stream(body, &IuOptions::default());
        assert!(full.table.is_empty());
        assert_eq!(full.regs_used, 4);
    }

    #[test]
    fn short_loops_unroll_tail() -> Result<(), String> {
        let (_, iu) = compile(
            "for i := 0 to 15 do begin receive (L, X, x, zs[i]); send (R, X, x, rs[i]); end;",
            &IuOptions::default(),
        );
        // The loop body is a couple of cycles long; if shorter than the
        // 3-cycle test, a tail is unrolled.
        let IuRegion::Loop {
            unrolled_tail,
            body,
            ..
        } = &iu.regions[0]
        else {
            return Err(format!("expected loop, got {:?}", iu.regions[0]));
        };
        let span: u64 = body.iter().map(IuRegion::static_len).sum();
        if span < LOOP_TEST_CYCLES {
            assert!(*unrolled_tail > 0);
        } else {
            assert_eq!(*unrolled_tail, 0);
        }
        Ok(())
    }

    #[test]
    fn iu_static_len_metric_positive() {
        let (_, iu) = compile(
            "for i := 0 to 15 do begin receive (L, X, x, zs[i]); arr[i] := x; end;",
            &IuOptions::default(),
        );
        assert!(iu.static_len() > 0);
    }
}
