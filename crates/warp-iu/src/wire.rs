//! Wire codec impls for the IU program types persisted inside a
//! `CompiledModule` artifact. Enum tags and field orders are on-disk
//! format; changing them requires a store schema-version bump.

use crate::program::{EmitPlan, EmitSource, IuBlock, IuOp, IuProgram, IuReg, IuRegion};
use warp_common::{wire_enum, wire_newtype, wire_struct};

wire_newtype!(IuReg);

wire_enum!(IuOp {
    0 => Init { reg, value },
    1 => AddImm { reg, imm },
});

wire_enum!(EmitSource {
    0 => Reg(reg),
    1 => RegOffset(reg, offset),
    2 => Table,
});

wire_struct!(EmitPlan { cycle, source });
wire_struct!(IuBlock { len, emits });

wire_enum!(IuRegion {
    0 => Block(block),
    1 => Loop { count, body, updates, unrolled_tail },
});

wire_struct!(IuProgram {
    name,
    regs_used,
    table,
    init,
    regions,
});

#[cfg(test)]
mod tests {
    use super::*;
    use warp_common::wire::{from_bytes, to_bytes};

    #[test]
    fn iu_program_round_trips() {
        let program = IuProgram {
            name: "conv".to_owned(),
            regs_used: 2,
            table: vec![0, 4, 8],
            init: vec![IuOp::Init {
                reg: IuReg(0),
                value: 3,
            }],
            regions: vec![IuRegion::Loop {
                count: 9,
                body: vec![IuRegion::Block(IuBlock {
                    len: 4,
                    emits: vec![
                        EmitPlan {
                            cycle: 0,
                            source: EmitSource::Reg(IuReg(0)),
                        },
                        EmitPlan {
                            cycle: 2,
                            source: EmitSource::RegOffset(IuReg(1), -2),
                        },
                        EmitPlan {
                            cycle: 3,
                            source: EmitSource::Table,
                        },
                    ],
                })],
                updates: vec![IuOp::AddImm {
                    reg: IuReg(0),
                    imm: 1,
                }],
                unrolled_tail: 1,
            }],
        };
        let back: IuProgram = from_bytes(&to_bytes(&program)).unwrap();
        assert_eq!(program, back);
    }
}
