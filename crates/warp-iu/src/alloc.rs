//! Operand-allocation alternatives for IU address generation
//! (paper §6.3.2, Table 6-5).
//!
//! The IU forms each address by summing register contents and literal
//! operands. Which subexpressions to keep in registers is a genuine
//! trade-off: more registers mean fewer adds per address but more update
//! operations per loop iteration. Table 6-5 of the paper evaluates three
//! allocations for the addresses of `a[i,j+1]` and `b[i+j,j]` inside an
//! `i`/`j` loop nest over `N×N` arrays; this module reproduces that
//! evaluation.
//!
//! Symbolic quantities (the array bases `A`, `B` and the symbolic
//! dimension `N`) are modeled as pseudo-symbols in the [`Affine`] term
//! space: they behave like loop indices that never advance, so register
//! updates are counted only for terms in real loop indices.

use warp_ir::affine::{Affine, LoopId};

/// A candidate set of register-resident subexpressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterSet {
    /// Human-readable label ("i*N, j*N, j").
    pub name: String,
    /// The value each register holds (may include a bias constant — the
    /// paper's cheaper allocations bias registers so an address equals a
    /// register exactly).
    pub regs: Vec<Affine>,
    /// Whether residual constants fold into one literal operand. The
    /// naive allocation of Table 6-5's first row assembles each operand
    /// separately (base, displacement), i.e. no folding.
    pub fold_constants: bool,
}

/// Evaluated cost of a [`RegisterSet`] (the three columns of Table 6-5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocCost {
    /// Number of registers.
    pub registers: usize,
    /// Additions needed to form all the addresses once.
    pub arith_ops: usize,
    /// Register updates per iteration of the inner loop.
    pub update_ops: usize,
}

/// Evaluates `set` against the given address expressions.
///
/// Returns `None` when some address cannot be assembled from the
/// registers plus literals (a loop-variant term is not covered).
pub fn evaluate(addresses: &[Affine], set: &RegisterSet, inner: LoopId) -> Option<AllocCost> {
    let mut arith = 0usize;
    for addr in addresses {
        arith += assemble_cost(addr, &set.regs, set.fold_constants)?;
    }
    let updates = set.regs.iter().filter(|r| r.coeff(inner) != 0).count();
    Some(AllocCost {
        registers: set.regs.len(),
        arith_ops: arith,
        update_ops: updates,
    })
}

/// Minimum adds to form `addr` from a subset of `regs` plus literals.
fn assemble_cost(addr: &Affine, regs: &[Affine], fold: bool) -> Option<usize> {
    let n = regs.len();
    assert!(n <= 16, "register sets are small");
    let mut best: Option<usize> = None;
    for mask in 0u32..(1 << n) {
        let mut residual = addr.clone();
        let mut operands = 0usize;
        for (i, reg) in regs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                residual = residual.sub(reg);
                operands += 1;
            }
        }
        // Residual must not contain loop-variant terms the registers did
        // not cover. Pseudo-symbols (bases, N) count as literal operands.
        if residual
            .terms
            .iter()
            .any(|(l, _)| is_loop_symbol(*l) && residual.coeff(*l) != 0)
        {
            continue;
        }
        let symbol_terms = residual.terms.len();
        let has_const = residual.constant != 0;
        operands += if fold {
            usize::from(symbol_terms > 0 || has_const)
        } else {
            symbol_terms + usize::from(has_const)
        };
        let cost = operands.saturating_sub(1);
        if best.is_none_or(|b| cost < b) {
            best = Some(cost);
        }
    }
    best
}

/// Ids below this bound are real loop indices; at or above are
/// pseudo-symbols (array bases, symbolic dimensions).
pub const SYMBOL_BASE: u32 = 1000;

fn is_loop_symbol(l: LoopId) -> bool {
    l.0 < SYMBOL_BASE
}

/// The inputs of Table 6-5: addresses of `a[i,j+1]` and `b[i+j,j]` for
/// `N×N` arrays, with `i` the outer and `j` the inner loop index.
///
/// Returns `(addresses, i, j)`; the symbolic `N` is fixed at 512 and the
/// bases at distinct pseudo-symbols so no accidental folding occurs.
pub fn table_6_5_addresses() -> (Vec<Affine>, LoopId, LoopId) {
    let i = LoopId(0);
    let j = LoopId(1);
    let base_a = LoopId(SYMBOL_BASE);
    let base_b = LoopId(SYMBOL_BASE + 1);
    let n = 512i64;
    // a[i, j+1] = A + N·i + j + 1
    let a = Affine::term(base_a, 1)
        .add(&Affine::term(i, n))
        .add(&Affine::term(j, 1))
        .add(&Affine::constant(1));
    // b[i+j, j] = B + N·(i+j) + j = B + N·i + (N+1)·j
    let b = Affine::term(base_b, 1)
        .add(&Affine::term(i, n))
        .add(&Affine::term(j, n + 1));
    (vec![a, b], i, j)
}

/// The three allocations of Table 6-5, in paper order.
pub fn table_6_5_options() -> Vec<RegisterSet> {
    let (_, i, j) = table_6_5_addresses();
    let base_a = LoopId(SYMBOL_BASE);
    let base_b = LoopId(SYMBOL_BASE + 1);
    let n = 512i64;
    vec![
        // {i*N, j*N, j}: every operand assembled separately.
        RegisterSet {
            name: "i*N, j*N, j".into(),
            regs: vec![Affine::term(i, n), Affine::term(j, n), Affine::term(j, 1)],
            fold_constants: false,
        },
        // {a[i], b[i], j, j*N} with the paper's implicit biases: the
        // "a[i]" register absorbs the +1 displacement and the "j*N"
        // register tracks (N+1)·j, so each address is one add.
        RegisterSet {
            name: "a[i], b[i], j, j*N".into(),
            regs: vec![
                Affine::term(base_a, 1)
                    .add(&Affine::term(i, n))
                    .add(&Affine::constant(1)),
                Affine::term(base_b, 1).add(&Affine::term(i, n)),
                Affine::term(j, 1),
                Affine::term(j, n + 1),
            ],
            fold_constants: true,
        },
        // {a[i], b[i], a[i,j], b[i+j], j}: the element registers track
        // the full addresses, so a[i,j+1] is the register itself.
        RegisterSet {
            name: "a[i], b[i], a[i,j], b[i+j], j".into(),
            regs: vec![
                Affine::term(base_a, 1).add(&Affine::term(i, n)),
                Affine::term(base_b, 1).add(&Affine::term(i, n)),
                Affine::term(base_a, 1)
                    .add(&Affine::term(i, n))
                    .add(&Affine::term(j, 1))
                    .add(&Affine::constant(1)),
                Affine::term(base_b, 1)
                    .add(&Affine::term(i, n))
                    .add(&Affine::term(j, n)),
                Affine::term(j, 1),
            ],
            fold_constants: true,
        },
    ]
}

/// Evaluates Table 6-5: `(label, cost)` per allocation, in paper order.
pub fn table_6_5() -> Vec<(String, AllocCost)> {
    let (addresses, _, j) = table_6_5_addresses();
    table_6_5_options()
        .into_iter()
        .map(|set| {
            let cost = evaluate(&addresses, &set, j).expect("paper options are feasible");
            (set.name, cost)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_6_5() {
        let rows = table_6_5();
        // Paper Table 6-5: (3, 6, 2), (4, 2, 2), (5, 1, 3).
        assert_eq!(
            rows[0].1,
            AllocCost {
                registers: 3,
                arith_ops: 6,
                update_ops: 2
            },
            "{:?}",
            rows[0]
        );
        assert_eq!(
            rows[1].1,
            AllocCost {
                registers: 4,
                arith_ops: 2,
                update_ops: 2
            },
            "{:?}",
            rows[1]
        );
        assert_eq!(
            rows[2].1,
            AllocCost {
                registers: 5,
                arith_ops: 1,
                update_ops: 3
            },
            "{:?}",
            rows[2]
        );
    }

    #[test]
    fn tradeoff_is_monotone() {
        let rows = table_6_5();
        assert!(rows[0].1.registers < rows[1].1.registers);
        assert!(rows[1].1.registers < rows[2].1.registers);
        assert!(rows[0].1.arith_ops > rows[1].1.arith_ops);
        assert!(rows[1].1.arith_ops > rows[2].1.arith_ops);
    }

    #[test]
    fn infeasible_set_detected() {
        let (addresses, _, j) = table_6_5_addresses();
        let set = RegisterSet {
            name: "just j".into(),
            regs: vec![Affine::term(j, 1)],
            fold_constants: true,
        };
        // i·N cannot be formed from j and literals.
        assert_eq!(evaluate(&addresses, &set, j), None);
    }

    #[test]
    fn exact_register_match_costs_zero() {
        let i = LoopId(0);
        let addr = Affine::term(i, 4).add(&Affine::constant(3));
        let set = RegisterSet {
            name: "exact".into(),
            regs: vec![addr.clone()],
            fold_constants: true,
        };
        let c = evaluate(&[addr], &set, i).unwrap();
        assert_eq!(c.arith_ops, 0);
        assert_eq!(c.update_ops, 1);
    }
}
