//! Interface-unit (IU) code generation.
//!
//! The IU generates every data-independent address and all loop-control
//! signals for the Warp array (paper §2.2, §6.3). It has add/subtract
//! arithmetic only, 16 registers, no data memory, and a 32K-word table
//! readable sequentially — so address generation is a strength-reduction
//! and resource-allocation problem:
//!
//! * [`program`] — the IU program representation and its interpreter;
//! * [`codegen`] — plan construction, register/table allocation,
//!   strength reduction, loop-signal tail unrolling;
//! * [`alloc`] — the operand-allocation trade-off study of Table 6-5.
//!
//! # Examples
//!
//! ```
//! use w2_lang::parse_and_check;
//! use warp_ir::{decompose, lower, LowerOptions};
//! use warp_cell::{codegen, CellMachine};
//! use warp_iu::{iu_codegen, IuOptions};
//!
//! let src = r#"
//! module fill (xs in, ys out)
//! float xs[8];
//! float ys[8];
//! cellprogram (cid : 0 : 0)
//! begin
//!   function body
//!   begin
//!     float v;
//!     float buf[8];
//!     int i;
//!     for i := 0 to 7 do begin
//!       receive (L, X, v, xs[i]);
//!       buf[i] := v;
//!       send (R, X, v, ys[i]);
//!     end;
//!   end
//!   call body;
//! end
//! "#;
//! let hir = parse_and_check(src)?;
//! let mut ir = lower(&hir, &LowerOptions::default())?;
//! let dec = decompose::decompose(&mut ir);
//! let cell = codegen(&ir, &CellMachine::default())?;
//! let iu = iu_codegen(&ir, &dec, &cell, &IuOptions::default())?;
//! // One induction register drives the buf[i] store addresses.
//! assert_eq!(iu.regs_used, 1);
//! assert_eq!(iu.emissions().len(), 8);
//! # Ok::<(), warp_common::DiagnosticBag>(())
//! ```

pub mod alloc;
pub mod codegen;
pub mod program;
pub mod wire;

pub use alloc::{evaluate, table_6_5, AllocCost, RegisterSet};
pub use codegen::{iu_codegen, IuOptions, LOOP_TEST_CYCLES};
pub use program::{Emission, EmitPlan, EmitSource, IuBlock, IuOp, IuProgram, IuReg, IuRegion};
