//! The cycle-level Warp machine simulator.
//!
//! Executes the compiled cell microprogram on every cell of the array in
//! lock step, with cell `p+1` starting `skew` cycles after cell `p`
//! (the skewed computation model, paper §3). The simulator enforces at
//! run time exactly the invariants the compiler establishes statically:
//!
//! * a receive from an empty queue is an error (underflow, §6.2.1),
//! * a queue growing past its capacity is an error (overflow, §6.2.2),
//! * a memory operation whose IU address has not arrived is an error
//!   (deadline miss, §6.3.2).
//!
//! Within one global cycle all sends commit before any receive, so a
//! send and its matching receive may share a cycle (Figure 6-3).
//!
//! [`run_with_options`] additionally applies a [`FaultPlan`] — the
//! deliberate perturbations of [`crate::fault`] — and reports any
//! violation as a structured [`FaultReport`] carrying queue high-water
//! marks, the last trace events, and the static claims under test.

use crate::cursor::Cursor;
use crate::error::SimError;
use crate::fault::{Fault, FaultPlan};
use crate::report::{FaultReport, StaticClaims};
use std::collections::{BTreeMap, VecDeque};
use w2_lang::ast::{Chan, Dir};
use warp_cell::{
    AddrSource, AluOp, CellCode, CellMachine, FpuField, IoField, MemField, Operand, Reg,
};
use warp_common::CancelToken;
use warp_host::{HostMemory, HostProgram, HostWordSource};
use warp_ir::CmpOp;
use warp_iu::IuProgram;

/// Everything the simulator needs to run one module.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig<'a> {
    /// The cell microprogram (identical on every cell).
    pub cell_code: &'a CellCode,
    /// The IU program feeding addresses down the Adr path.
    pub iu: &'a IuProgram,
    /// The host I/O processor transfer scripts.
    pub host_program: &'a HostProgram,
    /// Machine parameters (latencies, queue capacity, …).
    pub machine: &'a CellMachine,
    /// Number of cells.
    pub n_cells: u32,
    /// Start-time skew between adjacent cells.
    pub skew: i64,
    /// Data flow direction.
    pub flow: Dir,
}

/// Run-time knobs beyond the machine configuration: fault injection,
/// the trace ring-buffer depth, the static claims to audit, and the
/// service layer's cooperative cancellation hooks.
#[derive(Clone, Debug, PartialEq)]
pub struct SimOptions {
    /// Faults to inject (empty plan = a clean run).
    pub plan: FaultPlan,
    /// How many trace events the violation ring buffer keeps.
    pub ring_capacity: usize,
    /// The compiler's static claims, echoed into any [`FaultReport`].
    pub claims: Option<StaticClaims>,
    /// Cancellation handle polled every [`SimOptions::poll_interval`]
    /// cycles; the inert default costs one branch per poll.
    pub cancel: CancelToken,
    /// How many simulated cycles between cancellation polls. A stop
    /// request is observed within at most this many cycles.
    pub poll_interval: u64,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            plan: FaultPlan::default(),
            ring_capacity: 32,
            claims: None,
            cancel: CancelToken::none(),
            poll_interval: 1024,
        }
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Host memory after the run (`out` parameters filled in).
    pub host: HostMemory,
    /// Total cycles until the last cell finished.
    pub cycles: u64,
    /// Floating point operations executed across the array.
    pub fp_ops: u64,
    /// Largest occupancy observed on any inter-cell queue.
    pub max_queue_occupancy: usize,
    /// Highest interior-queue occupancy per channel, across all cells —
    /// the observed counterpart of the skew analysis' static bound.
    pub queue_high_water: BTreeMap<Chan, u64>,
    /// Words delivered to the host.
    pub words_out: u64,
    /// Every word the last cell sent toward the host, per channel, in
    /// arrival order — including words no host sink claims. This is the
    /// boundary stream the differential oracle compares against: a
    /// reordering or dropped word shows up here even when the final
    /// memory image happens to agree.
    pub out_streams: BTreeMap<Chan, Vec<f32>>,
}

impl RunReport {
    /// Results per cycle: `words_out / cycles` — the throughput measure
    /// the paper quotes ("one result per cycle").
    pub fn throughput(&self) -> f64 {
        self.words_out as f64 / self.cycles as f64
    }
}

struct Cell<'a> {
    cursor: Cursor<'a>,
    start: u64,
    done: bool,
    memory: Vec<f32>,
    regs: Vec<f32>,
    /// Pending register writebacks: `(due local cycle, register, value)`.
    pending: Vec<(u64, Reg, f32)>,
    /// Adr path arrivals: `(available at global cycle, address)`.
    adr: VecDeque<(u64, u32)>,
    fp_ops: u64,
}

/// One deferred receive (phase 2 of a cycle).
struct PendingRecv {
    pos: usize,
    chan: Chan,
    upstream: bool,
    dst: Option<Reg>,
}

/// One observed I/O event (see [`run_traced`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Global cycle.
    pub cycle: u64,
    /// Pipeline position of the cell.
    pub cell: usize,
    /// Channel.
    pub chan: Chan,
    /// `true` for a dequeue.
    pub is_recv: bool,
    /// The word transferred.
    pub value: f32,
}

/// Runs the module on the array with `host` pre-loaded with the `in`
/// parameters.
///
/// # Errors
///
/// Returns a [`SimError`] describing the first violated machine
/// invariant (these indicate compiler bugs or deliberately injected bad
/// parameters, not data conditions).
pub fn run(cfg: &MachineConfig<'_>, host: HostMemory) -> Result<RunReport, SimError> {
    run_impl(cfg, host, None, &SimOptions::default()).map_err(|r| r.error)
}

/// Like [`run`], but records every send and receive with its cycle —
/// the raw material for Figure 6-3-style execution timelines.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced(
    cfg: &MachineConfig<'_>,
    host: HostMemory,
    trace: &mut Vec<TraceEvent>,
) -> Result<RunReport, SimError> {
    run_impl(cfg, host, Some(trace), &SimOptions::default()).map_err(|r| r.error)
}

/// Runs the module with explicit [`SimOptions`]: injected faults, the
/// ring-buffer depth, and the static claims to audit.
///
/// # Errors
///
/// Returns a structured [`FaultReport`] (boxed — it is large) for the
/// first violated machine invariant.
pub fn run_with_options(
    cfg: &MachineConfig<'_>,
    host: HostMemory,
    opts: &SimOptions,
) -> Result<RunReport, Box<FaultReport>> {
    run_impl(cfg, host, None, opts)
}

fn run_impl(
    cfg: &MachineConfig<'_>,
    host: HostMemory,
    mut trace: Option<&mut Vec<TraceEvent>>,
    opts: &SimOptions,
) -> Result<RunReport, Box<FaultReport>> {
    let n = cfg.n_cells as usize;
    assert!(n >= 1, "at least one cell");
    let plan = &opts.plan;
    let flow = if plan.flips_flow() {
        cfg.flow.opposite()
    } else {
        cfg.flow
    };
    let skew = u64::try_from((cfg.skew + plan.skew_delta()).max(0)).expect("non-negative skew");
    let capacity = plan.queue_capacity(cfg.machine.queue_capacity);

    // Pipeline positions: position 0 is the upstream-most cell.
    let emissions = cfg.iu.emissions();
    let mut cells: Vec<Cell> = (0..n)
        .map(|p| {
            let start = skew * p as u64;
            Cell {
                cursor: Cursor::new(&cfg.cell_code.regions),
                start,
                done: false,
                memory: vec![0.0; cfg.machine.memory_words as usize],
                regs: vec![0.0; cfg.machine.registers as usize],
                pending: Vec::new(),
                adr: faulted_adr_stream(&emissions, start, p, plan),
                fp_ops: 0,
            }
        })
        .collect();

    // Interior queues: queue[p] connects position p-1 to position p.
    let mut queues: Vec<[VecDeque<f32>; 2]> =
        (0..n).map(|_| [VecDeque::new(), VecDeque::new()]).collect();
    let chan_idx = |c: Chan| match c {
        Chan::X => 0usize,
        Chan::Y => 1usize,
    };
    let chan_of = |ci: usize| if ci == 0 { Chan::X } else { Chan::Y };

    // Boundary input: the host sustains full bandwidth (paper §2.1), so
    // the input stream is modeled as an unbounded pre-filled queue.
    let mut boundary_in: [VecDeque<f32>; 2] = [VecDeque::new(), VecDeque::new()];
    for (chan, sources) in &cfg.host_program.inputs {
        let q = &mut boundary_in[chan_idx(*chan)];
        for s in sources {
            q.push_back(match *s {
                HostWordSource::Lit(v) => v,
                HostWordSource::Elem { var, index } => host.word(var, index),
            });
        }
    }
    for fault in &plan.faults {
        if let Fault::TruncateInput { chan, keep } = fault {
            boundary_in[chan_idx(*chan)].truncate(*keep);
        }
    }
    let mut boundary_out: [Vec<f32>; 2] = [Vec::new(), Vec::new()];

    let span = cfg.cell_code.dynamic_len();
    let deadline = plan.cycle_budget(skew * (n as u64 - 1) + span + 8);
    let mut max_occ = 0usize;
    let mut high_water: BTreeMap<Chan, u64> = BTreeMap::new();
    let mut ring: VecDeque<TraceEvent> = VecDeque::with_capacity(opts.ring_capacity.min(1024));
    // Words committed so far per channel, for the drop/corrupt faults.
    let mut sent: [u64; 2] = [0, 0];
    let mut t: u64 = 0;
    let mut host = host;

    // Builds the structured report for a violation at cycle `t`.
    macro_rules! fail {
        ($err:expr) => {
            return Err(Box::new(FaultReport {
                error: $err,
                cycles_run: t,
                queue_high_water: high_water.clone(),
                recent_events: ring.iter().copied().collect(),
                claims: opts.claims.clone(),
                injected: plan.describe(),
            }))
        };
    }
    macro_rules! record {
        ($ev:expr) => {{
            let ev: TraceEvent = $ev;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(ev);
            }
            if opts.ring_capacity > 0 {
                if ring.len() == opts.ring_capacity {
                    ring.pop_front();
                }
                ring.push_back(ev);
            }
        }};
    }

    let poll_interval = opts.poll_interval.max(1);
    loop {
        if cells.iter().all(|c| c.done) {
            break;
        }
        if t > deadline {
            fail!(SimError::Hang { cycle: t });
        }
        if t.is_multiple_of(poll_interval) {
            if let Err(reason) = opts.cancel.check() {
                fail!(SimError::Interrupted { cycle: t, reason });
            }
        }

        // Fetch this cycle's instruction per active cell and apply due
        // register writebacks (values land at the start of their cycle).
        let mut insts: Vec<Option<&warp_cell::MicroInst>> = vec![None; n];
        for (p, cell) in cells.iter_mut().enumerate() {
            if cell.done || t < cell.start {
                continue;
            }
            let local = t - cell.start;
            cell.pending.retain(|&(due, reg, value)| {
                if due <= local {
                    // `regs` indexed by allocator-assigned numbers.
                    cell_write(&mut cell.regs, reg, value);
                    false
                } else {
                    true
                }
            });
            match cell.cursor.step() {
                Some(inst) => insts[p] = Some(inst),
                None => cell.done = true,
            }
        }

        // Phase 1: compute, memory, sends.
        let mut recvs: Vec<PendingRecv> = Vec::new();
        for p in 0..n {
            let Some(inst) = insts[p] else { continue };
            let local = t - cells[p].start;

            if let Some(f) = &inst.fadd {
                let v = eval_fpu(f, &cells[p].regs);
                cells[p].fp_ops += 1;
                if let Some(dst) = f.dst {
                    let lat = u64::from(alu_latency(cfg.machine, f.op));
                    cells[p].pending.push((local + lat, dst, v));
                }
            }
            if let Some(f) = &inst.fmul {
                let v = eval_fpu(f, &cells[p].regs);
                cells[p].fp_ops += 1;
                if let Some(dst) = f.dst {
                    let lat = u64::from(alu_latency(cfg.machine, f.op));
                    cells[p].pending.push((local + lat, dst, v));
                }
            }
            for slot in 0..2 {
                let Some(m) = inst.mem[slot].clone() else {
                    continue;
                };
                match m {
                    MemField::Read { addr, dst } => {
                        let a = match resolve_addr(cfg, &mut cells[p], addr, p, t) {
                            Ok(a) => a,
                            Err(e) => fail!(e),
                        };
                        let v = cells[p].memory[a];
                        if let Some(dst) = dst {
                            let lat = u64::from(cfg.machine.mem_latency);
                            cells[p].pending.push((local + lat, dst, v));
                        }
                    }
                    MemField::Write { addr, src } => {
                        let a = match resolve_addr(cfg, &mut cells[p], addr, p, t) {
                            Ok(a) => a,
                            Err(e) => fail!(e),
                        };
                        let v = operand(&cells[p].regs, src);
                        cells[p].memory[a] = v;
                    }
                }
            }
            for (io_idx, field) in inst.io.iter().enumerate() {
                let Some(field) = field else { continue };
                let (dir, chan) = io_unindex(io_idx);
                match field {
                    IoField::Send { src, .. } => {
                        let mut v = operand(&cells[p].regs, *src);
                        if dir != flow {
                            fail!(SimError::WrongDirection { cell: p, cycle: t });
                        }
                        // In-transit faults: the word may be corrupted
                        // or vanish between the send and its delivery.
                        let word_idx = sent[chan_idx(chan)];
                        sent[chan_idx(chan)] += 1;
                        let mut dropped = false;
                        for fault in &plan.faults {
                            match fault {
                                Fault::DropWord { chan: c, index }
                                    if *c == chan && *index == word_idx =>
                                {
                                    dropped = true;
                                }
                                Fault::CorruptWord { chan: c, index }
                                    if *c == chan && *index == word_idx =>
                                {
                                    v = f32::from_bits(
                                        v.to_bits() ^ plan.corruption_mask(word_idx),
                                    );
                                }
                                _ => {}
                            }
                        }
                        record!(TraceEvent {
                            cycle: t,
                            cell: p,
                            chan,
                            is_recv: false,
                            value: v,
                        });
                        if dropped {
                            continue;
                        }
                        if p + 1 == n {
                            boundary_out[chan_idx(chan)].push(v);
                        } else {
                            queues[p + 1][chan_idx(chan)].push_back(v);
                        }
                    }
                    IoField::Recv { dst, .. } => {
                        if dir != flow.opposite() {
                            fail!(SimError::WrongDirection { cell: p, cycle: t });
                        }
                        recvs.push(PendingRecv {
                            pos: p,
                            chan,
                            upstream: true,
                            dst: *dst,
                        });
                    }
                }
            }
        }

        // Phase 2: receives (after every send has committed).
        for r in recvs {
            debug_assert!(r.upstream);
            let q = if r.pos == 0 {
                &mut boundary_in[chan_idx(r.chan)]
            } else {
                &mut queues[r.pos][chan_idx(r.chan)]
            };
            let Some(v) = q.pop_front() else {
                fail!(SimError::QueueUnderflow {
                    cell: r.pos,
                    chan: r.chan,
                    cycle: t,
                });
            };
            record!(TraceEvent {
                cycle: t,
                cell: r.pos,
                chan: r.chan,
                is_recv: true,
                value: v,
            });
            if let Some(dst) = r.dst {
                let local = t - cells[r.pos].start;
                let lat = u64::from(cfg.machine.io_latency);
                cells[r.pos].pending.push((local + lat, dst, v));
            }
        }

        // End of cycle: capacity check on interior queues.
        for (p, qs) in queues.iter().enumerate().skip(1) {
            for (ci, q) in qs.iter().enumerate() {
                max_occ = max_occ.max(q.len());
                if !q.is_empty() {
                    let hw = high_water.entry(chan_of(ci)).or_insert(0);
                    *hw = (*hw).max(q.len() as u64);
                }
                if q.len() > capacity as usize {
                    fail!(SimError::QueueOverflow {
                        cell: p,
                        chan: chan_of(ci),
                        cycle: t,
                        capacity,
                    });
                }
            }
        }

        t += 1;
    }

    // Deliver collected boundary output to host memory.
    let mut words_out = 0u64;
    for (chan, sinks) in &cfg.host_program.outputs {
        let collected = &boundary_out[chan_idx(*chan)];
        if collected.len() != sinks.len() {
            fail!(SimError::OutputCountMismatch {
                chan: *chan,
                expected: sinks.len(),
                got: collected.len(),
            });
        }
        for (sink, &v) in sinks.iter().zip(collected) {
            words_out += 1;
            if let Some((var, index)) = sink {
                host.set_word(*var, *index, v);
            }
        }
    }

    let fp_ops = cells.iter().map(|c| c.fp_ops).sum();
    let out_streams = boundary_out
        .iter()
        .enumerate()
        .filter(|(_, words)| !words.is_empty())
        .map(|(ci, words)| (chan_of(ci), words.clone()))
        .collect();
    Ok(RunReport {
        host,
        cycles: t,
        fp_ops,
        max_queue_occupancy: max_occ,
        queue_high_water: high_water,
        words_out,
        out_streams,
    })
}

/// The Adr arrivals for one cell, with the plan's address-stream faults
/// applied: corrupt in place, delay arrivals, then drop entries (drops
/// last, so every index refers to the original stream).
fn faulted_adr_stream(
    emissions: &[warp_iu::Emission],
    start: u64,
    pos: usize,
    plan: &FaultPlan,
) -> VecDeque<(u64, u32)> {
    let mut adr: Vec<(u64, u32)> = emissions
        .iter()
        .map(|e| (e.cycle + start, e.addr))
        .collect();
    let applies = |cell: &Option<usize>| cell.is_none() || *cell == Some(pos);
    let mut drops: Vec<usize> = Vec::new();
    for fault in &plan.faults {
        match fault {
            Fault::CorruptAddress { cell, index, addr } if applies(cell) => {
                if let Some(slot) = adr.get_mut(*index) {
                    slot.1 = *addr;
                }
            }
            Fault::DelayAddresses { cell, cycles } if applies(cell) => {
                for slot in &mut adr {
                    slot.0 += cycles;
                }
            }
            Fault::DropAddress { cell, index } if applies(cell) => drops.push(*index),
            _ => {}
        }
    }
    drops.sort_unstable();
    for index in drops.into_iter().rev() {
        if index < adr.len() {
            adr.remove(index);
        }
    }
    adr.into()
}

fn cell_write(regs: &mut [f32], reg: Reg, value: f32) {
    regs[reg.0 as usize] = value;
}

fn operand(regs: &[f32], op: Operand) -> f32 {
    match op {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::Imm(v) => v,
        Operand::ImmB(b) => {
            if b {
                1.0
            } else {
                0.0
            }
        }
    }
}

fn alu_latency(machine: &CellMachine, op: AluOp) -> u32 {
    match op {
        AluOp::Div => machine.div_latency,
        _ => machine.fp_latency,
    }
}

fn eval_fpu(f: &FpuField, regs: &[f32]) -> f32 {
    let v = |i: usize| operand(regs, f.srcs[i]);
    let b = |i: usize| operand(regs, f.srcs[i]) != 0.0;
    let bool_val = |x: bool| if x { 1.0 } else { 0.0 };
    match f.op {
        AluOp::Add => v(0) + v(1),
        AluOp::Sub => v(0) - v(1),
        AluOp::Mul => v(0) * v(1),
        AluOp::Div => v(0) / v(1),
        AluOp::Neg => -v(0),
        AluOp::Cmp(c) => bool_val(apply_cmp(c, v(0), v(1))),
        AluOp::And => bool_val(b(0) && b(1)),
        AluOp::Or => bool_val(b(0) || b(1)),
        AluOp::Not => bool_val(!b(0)),
        AluOp::Select => {
            if b(0) {
                v(1)
            } else {
                v(2)
            }
        }
    }
}

fn apply_cmp(c: CmpOp, l: f32, r: f32) -> bool {
    c.apply(l, r)
}

fn resolve_addr(
    cfg: &MachineConfig<'_>,
    cell: &mut Cell<'_>,
    addr: AddrSource,
    pos: usize,
    t: u64,
) -> Result<usize, SimError> {
    let a = match addr {
        AddrSource::Literal(a) => u32::from(a),
        AddrSource::AdrQueue => {
            let Some(&(avail, value)) = cell.adr.front() else {
                return Err(SimError::AddressUnderflow {
                    cell: pos,
                    cycle: t,
                });
            };
            if avail > t {
                return Err(SimError::AddressLate {
                    cell: pos,
                    cycle: t,
                    available: avail,
                });
            }
            cell.adr.pop_front();
            value
        }
    };
    let a = a as usize;
    if a >= cfg.machine.memory_words as usize {
        return Err(SimError::BadAddress {
            cell: pos,
            cycle: t,
            addr: a,
        });
    }
    Ok(a)
}

fn io_unindex(idx: usize) -> (Dir, Chan) {
    match idx {
        0 => (Dir::Left, Chan::X),
        1 => (Dir::Left, Chan::Y),
        2 => (Dir::Right, Chan::X),
        3 => (Dir::Right, Chan::Y),
        _ => unreachable!("four I/O ports"),
    }
}
