//! Cycle-level simulator of the Warp machine.
//!
//! The paper's compiler targeted real hardware; this reproduction targets
//! a simulator that models exactly the properties the compiler must
//! reason about (paper §2): lock-step cells with two 5-stage pipelined
//! FPUs and a 4K-word memory, 128-word inter-cell queues on the X and Y
//! paths, the systolic Adr path fed by the IU, and host I/O processors
//! that move data in a fixed order. Every compile-time guarantee — no
//! queue underflow or overflow, every IU address on time — is re-checked
//! dynamically, so a successful simulation is end-to-end evidence the
//! compiler is right.
//!
//! See [`machine::run`] for the entry point; the integration tests in
//! the workspace root compile W2 programs and compare simulated results
//! against straightforward Rust reference implementations.

pub mod cursor;
pub mod error;
pub mod fault;
pub mod machine;
pub mod report;

#[cfg(test)]
mod tests_errors;

pub use cursor::Cursor;
pub use error::SimError;
pub use fault::{splitmix64, Fault, FaultPlan, FaultSpecError};
pub use machine::{
    run, run_traced, run_with_options, MachineConfig, RunReport, SimOptions, TraceEvent,
};
pub use report::{FaultReport, StaticClaims};

#[cfg(test)]
mod tests {
    use super::*;
    use w2_lang::parse_and_check;
    use warp_cell::{codegen as cell_codegen, CellMachine};
    use warp_host::{host_codegen, HostMemory};
    use warp_ir::{decompose, lower, LowerOptions};
    use warp_iu::{iu_codegen, IuOptions};
    use warp_skew::{analyze, SkewOptions};

    struct Compiled {
        ir: warp_ir::CellIr,
        cell: warp_cell::CellCode,
        iu: warp_iu::IuProgram,
        host: warp_host::HostProgram,
        skew: warp_skew::SkewReport,
    }

    fn compile(src: &str) -> Compiled {
        let hir = parse_and_check(src).expect("front end");
        let mut ir = lower(&hir, &LowerOptions::default()).expect("lower");
        let dec = decompose::decompose(&mut ir);
        let machine = CellMachine::default();
        let cell = cell_codegen(&ir, &machine).expect("cell codegen");
        let skew = analyze(
            &cell,
            &ir.loops,
            &SkewOptions {
                n_cells: ir.n_cells,
                ..SkewOptions::default()
            },
        )
        .expect("skew");
        let iu = iu_codegen(&ir, &dec, &cell, &IuOptions::default()).expect("iu codegen");
        let host = host_codegen(&ir, &cell, skew.flow).expect("host codegen");
        Compiled {
            ir,
            cell,
            iu,
            host,
            skew,
        }
    }

    fn simulate(
        c: &Compiled,
        n_cells: u32,
        skew_override: Option<i64>,
        inputs: &[(&str, Vec<f32>)],
    ) -> Result<RunReport, SimError> {
        let machine = CellMachine::default();
        let mut host = HostMemory::new(&c.ir.vars);
        for (name, data) in inputs {
            host.set(name, data).expect("test input binds");
        }
        run(
            &MachineConfig {
                cell_code: &c.cell,
                iu: &c.iu,
                host_program: &c.host,
                machine: &machine,
                n_cells,
                skew: skew_override.unwrap_or(c.skew.min_skew),
                flow: c.skew.flow,
            },
            host,
        )
    }

    const SCALE: &str = "module scale (xs in, ys out) float xs[8]; float ys[8]; \
        cellprogram (cid : 0 : 0) begin function f begin float v; int i; \
        for i := 0 to 7 do begin receive (L, X, v, xs[i]); send (R, X, v * 2.0 + 1.0, ys[i]); end; \
        end call f; end";

    #[test]
    fn single_cell_scale() {
        let c = compile(SCALE);
        let xs: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let r = simulate(&c, 1, None, &[("xs", xs.clone())]).expect("runs");
        let expect: Vec<f32> = xs.iter().map(|v| v * 2.0 + 1.0).collect();
        assert_eq!(r.host.get("ys").unwrap(), &expect[..]);
        assert_eq!(r.words_out, 8);
    }

    /// A two-cell pipeline where each cell adds 1: results = input + 2.
    const ADD_PIPE: &str = "module addpipe (xs in, ys out) float xs[6]; float ys[6]; \
        cellprogram (cid : 0 : 1) begin function f begin float v; int i; \
        for i := 0 to 5 do begin receive (L, X, v, xs[i]); send (R, X, v + 1.0, ys[i]); end; \
        end call f; end";

    #[test]
    fn two_cell_pipeline() {
        let c = compile(ADD_PIPE);
        let xs: Vec<f32> = vec![0.5, 1.5, 2.5, 3.5, 4.5, 5.5];
        let r = simulate(&c, 2, None, &[("xs", xs.clone())]).expect("runs");
        let expect: Vec<f32> = xs.iter().map(|v| v + 2.0).collect();
        assert_eq!(r.host.get("ys").unwrap(), &expect[..]);
    }

    #[test]
    fn underflow_when_skew_too_small() {
        let c = compile(ADD_PIPE);
        assert!(c.skew.min_skew > 0, "a nontrivial skew is required");
        let xs: Vec<f32> = vec![1.0; 6];
        let err = simulate(&c, 2, Some(c.skew.min_skew - 1), &[("xs", xs)])
            .expect_err("one cycle less must underflow");
        assert!(matches!(err, SimError::QueueUnderflow { .. }), "{err}");
    }

    #[test]
    fn extra_skew_still_correct() {
        let c = compile(ADD_PIPE);
        let xs: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = simulate(&c, 2, Some(c.skew.min_skew + 10), &[("xs", xs.clone())]).expect("runs");
        let expect: Vec<f32> = xs.iter().map(|v| v + 2.0).collect();
        assert_eq!(r.host.get("ys").unwrap(), &expect[..]);
    }

    #[test]
    fn iu_addresses_drive_cell_memory() {
        // Store then reload through IU-generated addresses.
        let src = "module buf (xs in, ys out) float xs[8]; float ys[8]; \
            cellprogram (cid : 0 : 0) begin function f begin float v; float b[8]; int i; \
            for i := 0 to 7 do begin receive (L, X, v, xs[i]); b[i] := v; end; \
            for i := 0 to 7 do begin v := b[7 - i]; send (R, X, v, ys[i]); end; \
            end call f; end";
        let c = compile(src);
        let xs: Vec<f32> = (0..8).map(|i| (i * i) as f32).collect();
        let r = simulate(&c, 1, None, &[("xs", xs.clone())]).expect("runs");
        let expect: Vec<f32> = xs.iter().rev().copied().collect();
        assert_eq!(r.host.get("ys").unwrap(), &expect[..]);
    }

    #[test]
    fn predicated_conditional_executes_both_sides() {
        let src = "module clamp (xs in, ys out) float xs[6]; float ys[6]; \
            cellprogram (cid : 0 : 0) begin function f begin float v; int i; \
            for i := 0 to 5 do begin receive (L, X, v, xs[i]); \
            if v < 0.0 then v := 0.0; send (R, X, v, ys[i]); end; \
            end call f; end";
        let c = compile(src);
        let xs = vec![-2.0, 3.0, -0.5, 0.0, 7.0, -9.0];
        let r = simulate(&c, 1, None, &[("xs", xs)]).expect("runs");
        assert_eq!(r.host.get("ys").unwrap(), &[0.0, 3.0, 0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn throughput_reported() {
        let c = compile(SCALE);
        let r = simulate(&c, 1, None, &[("xs", vec![1.0; 8])]).expect("runs");
        assert!(r.throughput() > 0.0);
        assert!(r.fp_ops >= 16, "two FLOP per element");
        assert!(
            r.max_queue_occupancy == 0,
            "single cell has no interior queues"
        );
    }

    #[test]
    fn tiny_queue_overflows() {
        // Run the two-cell pipeline with a 1-word queue but a huge skew:
        // the first cell fills the queue long before the second starts.
        let c = compile(ADD_PIPE);
        let machine = CellMachine {
            queue_capacity: 1,
            ..CellMachine::default()
        };
        let mut host = HostMemory::new(&c.ir.vars);
        host.set("xs", &[1.0; 6]).expect("xs binds");
        let err = run(
            &MachineConfig {
                cell_code: &c.cell,
                iu: &c.iu,
                host_program: &c.host,
                machine: &machine,
                n_cells: 2,
                skew: 100,
                flow: c.skew.flow,
            },
            host,
        )
        .expect_err("queue of 1 word with skew 100 must overflow");
        assert!(matches!(err, SimError::QueueOverflow { .. }), "{err}");
    }

    #[test]
    fn loop_carried_accumulator() {
        let src = "module total (xs in, ys out) float xs[8]; float ys[1]; \
            cellprogram (cid : 0 : 0) begin function f begin float v, acc; int i; \
            acc := 0.0; \
            for i := 0 to 7 do begin receive (L, X, v, xs[i]); acc := acc + v; end; \
            send (R, X, acc, ys[0]); \
            end call f; end";
        let c = compile(src);
        let xs: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let r = simulate(&c, 1, None, &[("xs", xs)]).expect("runs");
        assert_eq!(r.host.get("ys").unwrap(), &[36.0]);
    }
}
