//! Deterministic fault injection: perturb a simulation on purpose.
//!
//! The compiler's contract is that the machine invariants the simulator
//! enforces (no queue under/overflow, every IU address on time, §6.2
//! and §6.3.2 of the paper) can never trip on compiler-produced
//! parameters. A [`FaultPlan`] breaks that contract *on demand* — it
//! shrinks a queue, jitters the skew, delays or corrupts the IU address
//! stream, drops or corrupts an inter-cell word, truncates a host input
//! stream, or cuts the cycle budget — so tests and the guarantee audit
//! can assert that every corruption class is *detected* by a matching
//! [`SimError`](crate::SimError) variant (or, for value corruption, by
//! a differential check) rather than producing silently wrong output.
//!
//! Plans are deterministic: the same plan and seed perturb the same
//! simulation the same way, so a detected fault reproduces exactly.

use std::fmt;
use w2_lang::ast::Chan;

/// One injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Override the inter-cell queue capacity (words). Shrinking it
    /// below the static occupancy bound must provoke
    /// [`SimError::QueueOverflow`](crate::SimError::QueueOverflow).
    QueueCapacity(u32),
    /// Add a (possibly negative) offset to the configured skew.
    /// `-1` from the minimum skew must provoke
    /// [`SimError::QueueUnderflow`](crate::SimError::QueueUnderflow) or
    /// [`SimError::AddressLate`](crate::SimError::AddressLate).
    SkewDelta(i64),
    /// Delay every IU address arrival by `cycles` on the selected cell
    /// (`None` = every cell): a missed deadline,
    /// [`SimError::AddressLate`](crate::SimError::AddressLate).
    DelayAddresses {
        /// Pipeline position to perturb, or all cells.
        cell: Option<usize>,
        /// Added delay in cycles.
        cycles: u64,
    },
    /// Remove the `index`-th address from the Adr stream of the
    /// selected cell: the final consumer finds an empty queue,
    /// [`SimError::AddressUnderflow`](crate::SimError::AddressUnderflow)
    /// (or a late/wrong address earlier).
    DropAddress {
        /// Pipeline position to perturb, or all cells.
        cell: Option<usize>,
        /// Position in the cell's address stream.
        index: usize,
    },
    /// Replace the `index`-th address in the Adr stream with `addr`.
    /// An out-of-range `addr` must provoke
    /// [`SimError::BadAddress`](crate::SimError::BadAddress).
    CorruptAddress {
        /// Pipeline position to perturb, or all cells.
        cell: Option<usize>,
        /// Position in the cell's address stream.
        index: usize,
        /// The replacement address.
        addr: u32,
    },
    /// Drop the `index`-th word committed on `chan` (counting every
    /// send on that channel, in commit order): a word lost in transit.
    /// Detected downstream as
    /// [`SimError::QueueUnderflow`](crate::SimError::QueueUnderflow) or
    /// [`SimError::OutputCountMismatch`](crate::SimError::OutputCountMismatch).
    DropWord {
        /// Channel.
        chan: Chan,
        /// Send index on that channel (across all cells).
        index: u64,
    },
    /// Flip mantissa bits of the `index`-th word committed on `chan`
    /// (seeded, always changes the value). No machine invariant trips:
    /// this class is only detectable by a differential check against a
    /// clean run or a reference oracle.
    CorruptWord {
        /// Channel.
        chan: Chan,
        /// Send index on that channel (across all cells).
        index: u64,
    },
    /// Keep only the first `keep` words of the host's input stream on
    /// `chan`: the boundary cell must starve,
    /// [`SimError::QueueUnderflow`](crate::SimError::QueueUnderflow) at
    /// cell 0.
    TruncateInput {
        /// Channel.
        chan: Chan,
        /// Words to keep.
        keep: usize,
    },
    /// Reverse the declared data-flow direction: every transfer is now
    /// against the flow,
    /// [`SimError::WrongDirection`](crate::SimError::WrongDirection).
    FlipFlow,
    /// Cut the simulator's cycle budget to `cycles`: a run that needs
    /// more must trip [`SimError::Hang`](crate::SimError::Hang).
    CycleBudget(u64),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cell_str = |c: &Option<usize>| match c {
            Some(p) => format!(" on cell {p}"),
            None => " on every cell".to_owned(),
        };
        match self {
            Fault::QueueCapacity(n) => write!(f, "queue capacity shrunk to {n} word(s)"),
            Fault::SkewDelta(d) => write!(f, "skew jittered by {d:+} cycle(s)"),
            Fault::DelayAddresses { cell, cycles } => {
                write!(
                    f,
                    "IU addresses delayed {cycles} cycle(s){}",
                    cell_str(cell)
                )
            }
            Fault::DropAddress { cell, index } => {
                write!(f, "IU address #{index} dropped{}", cell_str(cell))
            }
            Fault::CorruptAddress { cell, index, addr } => {
                write!(
                    f,
                    "IU address #{index} corrupted to {addr}{}",
                    cell_str(cell)
                )
            }
            Fault::DropWord { chan, index } => {
                write!(f, "word #{index} on channel {chan:?} dropped in transit")
            }
            Fault::CorruptWord { chan, index } => {
                write!(f, "word #{index} on channel {chan:?} corrupted in transit")
            }
            Fault::TruncateInput { chan, keep } => {
                write!(
                    f,
                    "host input on channel {chan:?} truncated to {keep} word(s)"
                )
            }
            Fault::FlipFlow => write!(f, "data-flow direction reversed"),
            Fault::CycleBudget(n) => write!(f, "cycle budget cut to {n}"),
        }
    }
}

/// A deterministic, seeded set of faults to inject into one run.
///
/// # Examples
///
/// ```
/// use warp_sim::{Fault, FaultPlan};
///
/// let plan = FaultPlan::new(42).with(Fault::SkewDelta(-1));
/// assert!(!plan.is_empty());
/// assert_eq!(plan, "seed=42,skew=-1".parse().unwrap());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the value-corruption masks.
    pub seed: u64,
    /// The faults to apply, in declaration order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Returns `true` when no fault is injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Human-readable descriptions of every fault, for reports.
    pub fn describe(&self) -> Vec<String> {
        self.faults.iter().map(Fault::to_string).collect()
    }

    /// The net skew offset of all [`Fault::SkewDelta`] entries.
    pub fn skew_delta(&self) -> i64 {
        self.faults
            .iter()
            .map(|f| match f {
                Fault::SkewDelta(d) => *d,
                _ => 0,
            })
            .sum()
    }

    /// The effective queue capacity, given the machine's default.
    pub fn queue_capacity(&self, default: u32) -> u32 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::QueueCapacity(n) => Some(*n),
                _ => None,
            })
            .min()
            .unwrap_or(default)
    }

    /// The effective cycle budget, given the simulator's default.
    pub fn cycle_budget(&self, default: u64) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::CycleBudget(n) => Some(*n),
                _ => None,
            })
            .min()
            .unwrap_or(default)
    }

    /// Returns `true` when the flow direction is reversed.
    pub fn flips_flow(&self) -> bool {
        self.faults.contains(&Fault::FlipFlow)
    }

    /// The deterministic corruption mask for the `index`-th corrupted
    /// value: a nonzero mantissa perturbation, so the corrupted f32 is
    /// always a *different, finite* value.
    pub fn corruption_mask(&self, index: u64) -> u32 {
        // Only mantissa bits, and always at least the low bit: the
        // exponent and sign are untouched, so no NaN/Inf is produced
        // from a finite input.
        (splitmix64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as u32 & 0x007F_FFFE) | 1
    }
}

impl fmt::Display for FaultPlan {
    /// Renders the plan back into the `--inject` spec grammar.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for fault in &self.faults {
            write!(f, ",{}", spec_of(fault))?;
        }
        Ok(())
    }
}

fn spec_of(fault: &Fault) -> String {
    let at = |c: &Option<usize>| c.map(|p| format!("@{p}")).unwrap_or_default();
    match fault {
        Fault::QueueCapacity(n) => format!("queue={n}"),
        Fault::SkewDelta(d) => format!("skew={d}"),
        Fault::DelayAddresses { cell, cycles } => format!("adr-delay={cycles}{}", at(cell)),
        Fault::DropAddress { cell, index } => format!("adr-drop={index}{}", at(cell)),
        Fault::CorruptAddress { cell, index, addr } => {
            format!("adr-corrupt={index}:{addr}{}", at(cell))
        }
        Fault::DropWord { chan, index } => format!("drop={}:{index}", chan_name(*chan)),
        Fault::CorruptWord { chan, index } => format!("corrupt={}:{index}", chan_name(*chan)),
        Fault::TruncateInput { chan, keep } => format!("truncate={}:{keep}", chan_name(*chan)),
        Fault::FlipFlow => "flip-flow".to_owned(),
        Fault::CycleBudget(n) => format!("budget={n}"),
    }
}

fn chan_name(c: Chan) -> &'static str {
    match c {
        Chan::X => "X",
        Chan::Y => "Y",
    }
}

/// A malformed `--inject` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending clause.
    pub clause: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec `{}`: {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

impl std::str::FromStr for FaultPlan {
    type Err = FaultSpecError;

    /// Parses the `--inject` grammar: comma-separated clauses
    ///
    /// ```text
    /// seed=S          queue=N          skew=±K         budget=N
    /// adr-delay=D[@CELL]  adr-drop=IDX[@CELL]  adr-corrupt=IDX:ADDR[@CELL]
    /// drop=CHAN:IDX   corrupt=CHAN:IDX   truncate=CHAN:KEEP   flip-flow
    /// ```
    fn from_str(s: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let err = |reason: &str| FaultSpecError {
                clause: clause.to_owned(),
                reason: reason.to_owned(),
            };
            if clause == "flip-flow" {
                plan.faults.push(Fault::FlipFlow);
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| err("expected KEY=VALUE or `flip-flow`"))?;
            // Optional trailing `@CELL` selector.
            let (value, cell) = match value.split_once('@') {
                Some((v, c)) => (
                    v,
                    Some(
                        c.parse::<usize>()
                            .map_err(|_| err("cell must be a number"))?,
                    ),
                ),
                None => (value, None),
            };
            let fault = match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| err("seed must be a number"))?;
                    continue;
                }
                "queue" => Fault::QueueCapacity(
                    value
                        .parse()
                        .map_err(|_| err("capacity must be a number"))?,
                ),
                "skew" => {
                    Fault::SkewDelta(value.parse().map_err(|_| err("delta must be a number"))?)
                }
                "budget" => {
                    Fault::CycleBudget(value.parse().map_err(|_| err("budget must be a number"))?)
                }
                "adr-delay" => Fault::DelayAddresses {
                    cell,
                    cycles: value.parse().map_err(|_| err("delay must be a number"))?,
                },
                "adr-drop" => Fault::DropAddress {
                    cell,
                    index: value.parse().map_err(|_| err("index must be a number"))?,
                },
                "adr-corrupt" => {
                    let (idx, addr) = value
                        .split_once(':')
                        .ok_or_else(|| err("expected adr-corrupt=IDX:ADDR"))?;
                    Fault::CorruptAddress {
                        cell,
                        index: idx.parse().map_err(|_| err("index must be a number"))?,
                        addr: addr.parse().map_err(|_| err("address must be a number"))?,
                    }
                }
                "drop" | "corrupt" | "truncate" => {
                    let (chan, n) = value
                        .split_once(':')
                        .ok_or_else(|| err("expected CHAN:NUMBER"))?;
                    let chan = match chan {
                        "X" | "x" => Chan::X,
                        "Y" | "y" => Chan::Y,
                        _ => return Err(err("channel must be X or Y")),
                    };
                    let n: u64 = n.parse().map_err(|_| err("expected a number"))?;
                    match key {
                        "drop" => Fault::DropWord { chan, index: n },
                        "corrupt" => Fault::CorruptWord { chan, index: n },
                        _ => Fault::TruncateInput {
                            chan,
                            keep: n as usize,
                        },
                    }
                }
                _ => return Err(err("unknown fault kind")),
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }
}

/// SplitMix64: the tiny deterministic generator behind seeded
/// corruption masks and the audit's input data. Re-exported from
/// [`warp_common`] so seeded tooling across the workspace shares one
/// generator.
pub use warp_common::splitmix64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let spec = "seed=7,queue=1,skew=-2,adr-delay=10@1,adr-drop=3,adr-corrupt=0:9999@0,\
                    drop=X:5,corrupt=Y:2,truncate=X:4,flip-flow,budget=100";
        let plan: FaultPlan = spec.parse().expect("parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults.len(), 10);
        assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
        assert_eq!(plan.skew_delta(), -2);
        assert_eq!(plan.queue_capacity(128), 1);
        assert_eq!(plan.cycle_budget(u64::MAX), 100);
        assert!(plan.flips_flow());
        assert_eq!(plan.describe().len(), 10);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "nonsense",
            "queue=abc",
            "adr-corrupt=5",
            "drop=Z:1",
            "drop=X",
            "adr-delay=2@x",
        ] {
            let err = bad.parse::<FaultPlan>().unwrap_err();
            assert_eq!(err.clause, bad, "{err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn corruption_mask_changes_value_and_stays_finite() {
        let plan = FaultPlan::new(99);
        for i in 0..64u64 {
            let mask = plan.corruption_mask(i);
            assert_ne!(mask, 0);
            assert_eq!(mask & !0x007F_FFFF, 0, "mantissa bits only");
            let v = 1.5f32;
            let corrupted = f32::from_bits(v.to_bits() ^ mask);
            assert!(corrupted.is_finite());
            assert_ne!(corrupted, v);
        }
        // Deterministic across plan clones.
        assert_eq!(
            plan.corruption_mask(3),
            FaultPlan::new(99).corruption_mask(3)
        );
        assert_ne!(
            plan.corruption_mask(3),
            FaultPlan::new(100).corruption_mask(3)
        );
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.skew_delta(), 0);
        assert_eq!(plan.queue_capacity(128), 128);
        assert!(!plan.flips_flow());
        assert_eq!("".parse::<FaultPlan>().unwrap(), plan);
    }
}
