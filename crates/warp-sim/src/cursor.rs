//! Microprogram sequencing: yields one instruction per cycle, driving
//! counted loops the way the cell's sequencer does under IU loop
//! signals.

use warp_cell::{CodeRegion, MicroInst};

/// A program counter over a region tree.
#[derive(Clone, Debug)]
pub struct Cursor<'a> {
    frames: Vec<Frame<'a>>,
}

#[derive(Clone, Debug)]
struct Frame<'a> {
    regions: &'a [CodeRegion],
    region_idx: usize,
    inst_idx: usize,
    /// Iterations left when this frame is a loop body.
    iters_left: u64,
    is_loop_body: bool,
}

impl<'a> Cursor<'a> {
    /// Starts at the beginning of `regions`.
    pub fn new(regions: &'a [CodeRegion]) -> Cursor<'a> {
        Cursor {
            frames: vec![Frame {
                regions,
                region_idx: 0,
                inst_idx: 0,
                iters_left: 1,
                is_loop_body: false,
            }],
        }
    }

    /// Returns `true` once the program has finished.
    pub fn is_done(&self) -> bool {
        self.frames.is_empty()
    }

    /// Advances one cycle, returning the instruction to execute.
    pub fn step(&mut self) -> Option<&'a MicroInst> {
        loop {
            let frame = self.frames.last_mut()?;
            if frame.region_idx >= frame.regions.len() {
                if frame.is_loop_body && frame.iters_left > 1 {
                    frame.iters_left -= 1;
                    frame.region_idx = 0;
                    frame.inst_idx = 0;
                    continue;
                }
                self.frames.pop();
                if let Some(parent) = self.frames.last_mut() {
                    parent.region_idx += 1;
                    parent.inst_idx = 0;
                }
                continue;
            }
            match &frame.regions[frame.region_idx] {
                CodeRegion::Block(b) => {
                    if frame.inst_idx < b.insts.len() {
                        let inst = &b.insts[frame.inst_idx];
                        frame.inst_idx += 1;
                        return Some(inst);
                    }
                    frame.region_idx += 1;
                    frame.inst_idx = 0;
                }
                CodeRegion::Loop { count, body, .. } => {
                    if *count == 0 {
                        frame.region_idx += 1;
                        continue;
                    }
                    let iters = *count;
                    self.frames.push(Frame {
                        regions: body,
                        region_idx: 0,
                        inst_idx: 0,
                        iters_left: iters,
                        is_loop_body: true,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_cell::BlockCode;
    use warp_ir::LoopId;

    fn block(n: usize) -> CodeRegion {
        CodeRegion::Block(BlockCode {
            insts: vec![MicroInst::default(); n],
            io_events: vec![],
            adr_deadlines: vec![],
            source: None,
        })
    }

    #[test]
    fn straight_line() {
        let regions = vec![block(3)];
        let mut c = Cursor::new(&regions);
        let mut n = 0;
        while c.step().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(c.is_done());
    }

    #[test]
    fn loops_repeat_bodies() {
        let regions = vec![
            block(1),
            CodeRegion::Loop {
                id: LoopId(0),
                count: 4,
                body: vec![block(2)],
            },
            block(1),
        ];
        let mut c = Cursor::new(&regions);
        let mut n = 0;
        while c.step().is_some() {
            n += 1;
        }
        assert_eq!(n, 1 + 4 * 2 + 1);
    }

    #[test]
    fn nested_loops() {
        let inner = CodeRegion::Loop {
            id: LoopId(1),
            count: 3,
            body: vec![block(1)],
        };
        let regions = vec![CodeRegion::Loop {
            id: LoopId(0),
            count: 2,
            body: vec![block(1), inner],
        }];
        let mut c = Cursor::new(&regions);
        let mut n = 0;
        while c.step().is_some() {
            n += 1;
        }
        assert_eq!(n, 2 * (1 + 3));
    }

    #[test]
    fn zero_count_loop_skipped() {
        let regions = vec![CodeRegion::Loop {
            id: LoopId(0),
            count: 0,
            body: vec![block(5)],
        }];
        let mut c = Cursor::new(&regions);
        assert!(c.step().is_none());
    }

    #[test]
    fn empty_blocks_skipped() {
        let regions = vec![block(0), block(2), block(0)];
        let mut c = Cursor::new(&regions);
        let mut n = 0;
        while c.step().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }
}
