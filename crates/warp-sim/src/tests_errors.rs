//! Direct tests of the simulator's error paths.
//!
//! Two layers: hand-built microprograms that the compiler would never
//! emit (exercising each check in isolation), and compiler-produced
//! programs perturbed by a [`FaultPlan`] (proving each corruption class
//! is *detected* on a realistic run, with the faulting cell and cycle).

use crate::{run, MachineConfig, SimError};
use w2_lang::ast::{Chan, Dir};
use warp_cell::{
    AddrSource, BlockCode, CellCode, CellMachine, CodeRegion, IoField, MemField, MicroInst,
    Operand, Reg,
};
use warp_host::HostMemory;
use warp_iu::{EmitPlan, EmitSource, IuBlock, IuProgram, IuRegion};

fn empty_host() -> HostMemory {
    HostMemory::default()
}

fn one_block(insts: Vec<MicroInst>) -> CellCode {
    CellCode {
        name: "synthetic".into(),
        pipelined: vec![],
        regions: vec![CodeRegion::Block(BlockCode {
            insts,
            io_events: vec![],
            adr_deadlines: vec![],
            source: None,
        })],
        regs_used: 1,
        scratch_words: 0,
    }
}

fn no_iu() -> IuProgram {
    IuProgram::default()
}

fn cfg<'a>(
    code: &'a CellCode,
    iu: &'a IuProgram,
    host_program: &'a warp_host::HostProgram,
    machine: &'a CellMachine,
) -> MachineConfig<'a> {
    MachineConfig {
        cell_code: code,
        iu,
        host_program,
        machine,
        n_cells: 1,
        skew: 0,
        flow: Dir::Right,
    }
}

#[test]
fn address_underflow_detected() {
    let mut inst = MicroInst::default();
    inst.mem[0] = Some(MemField::Read {
        addr: AddrSource::AdrQueue,
        dst: Some(Reg(0)),
    });
    let code = one_block(vec![inst]);
    let iu = no_iu();
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(matches!(err, SimError::AddressUnderflow { .. }), "{err}");
}

#[test]
fn late_address_detected() {
    // The IU emits the address at cycle 5; the cell consumes at cycle 0.
    let mut inst = MicroInst::default();
    inst.mem[0] = Some(MemField::Read {
        addr: AddrSource::AdrQueue,
        dst: Some(Reg(0)),
    });
    let code = one_block(vec![inst]);
    let iu = IuProgram {
        name: "late".into(),
        regs_used: 0,
        table: vec![3],
        init: vec![],
        regions: vec![IuRegion::Block(IuBlock {
            len: 6,
            emits: vec![EmitPlan {
                cycle: 5,
                source: EmitSource::Table,
            }],
        })],
    };
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(
        matches!(err, SimError::AddressLate { available: 5, .. }),
        "{err}"
    );
}

#[test]
fn bad_address_detected() {
    let mut inst = MicroInst::default();
    inst.mem[0] = Some(MemField::Read {
        addr: AddrSource::AdrQueue,
        dst: Some(Reg(0)),
    });
    let code = one_block(vec![inst]);
    let iu = IuProgram {
        name: "oob".into(),
        regs_used: 0,
        table: vec![99999],
        init: vec![],
        regions: vec![IuRegion::Block(IuBlock {
            len: 1,
            emits: vec![EmitPlan {
                cycle: 0,
                source: EmitSource::Table,
            }],
        })],
    };
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(
        matches!(err, SimError::BadAddress { addr: 99999, .. }),
        "{err}"
    );
}

#[test]
fn wrong_direction_detected() {
    // A send towards the upstream side of a right-flowing array.
    let mut inst = MicroInst::default();
    inst.io[0] = Some(IoField::Send {
        src: Operand::Imm(1.0),
        ext: None,
    }); // io index 0 = (Left, X)
    let code = one_block(vec![inst]);
    let iu = no_iu();
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(matches!(err, SimError::WrongDirection { .. }), "{err}");
}

#[test]
fn boundary_underflow_detected() {
    // A receive with no host data behind it.
    let mut inst = MicroInst::default();
    inst.io[0] = Some(IoField::Recv {
        dst: Some(Reg(0)),
        ext: None,
    });
    let code = one_block(vec![inst]);
    let iu = no_iu();
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::QueueUnderflow {
                cell: 0,
                chan: Chan::X,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn output_count_mismatch_detected() {
    // The host program expects one word; the array sends none.
    let code = one_block(vec![MicroInst::default()]);
    let iu = no_iu();
    let hp = warp_host::HostProgram {
        outputs: [(Chan::X, vec![None])].into_iter().collect(),
        ..warp_host::HostProgram::default()
    };
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(matches!(err, SimError::OutputCountMismatch { .. }), "{err}");
}

mod fault_plan {
    //! Every [`SimError`] variant provoked on a *compiled* program via
    //! fault injection — the detection half of the guarantee audit.

    use crate::fault::{Fault, FaultPlan};
    use crate::{run_with_options, FaultReport, MachineConfig, RunReport, SimError, SimOptions};
    use w2_lang::ast::Chan;
    use w2_lang::parse_and_check;
    use warp_cell::{codegen as cell_codegen, CellMachine};
    use warp_host::{host_codegen, HostMemory};
    use warp_ir::{decompose, lower, LowerOptions};
    use warp_iu::{iu_codegen, IuOptions};
    use warp_skew::{analyze, SkewOptions};

    struct Compiled {
        ir: warp_ir::CellIr,
        cell: warp_cell::CellCode,
        iu: warp_iu::IuProgram,
        host: warp_host::HostProgram,
        skew: warp_skew::SkewReport,
    }

    fn compile(src: &str, n_cells: u32) -> Compiled {
        let hir = parse_and_check(src).expect("front end");
        let mut ir = lower(&hir, &LowerOptions::default()).expect("lower");
        let dec = decompose::decompose(&mut ir);
        let machine = CellMachine::default();
        let cell = cell_codegen(&ir, &machine).expect("cell codegen");
        let skew = analyze(
            &cell,
            &ir.loops,
            &SkewOptions {
                n_cells,
                ..SkewOptions::default()
            },
        )
        .expect("skew");
        let iu = iu_codegen(&ir, &dec, &cell, &IuOptions::default()).expect("iu codegen");
        let host = host_codegen(&ir, &cell, skew.flow).expect("host codegen");
        Compiled {
            ir,
            cell,
            iu,
            host,
            skew,
        }
    }

    fn run_plan(
        c: &Compiled,
        n_cells: u32,
        inputs: &[(&str, Vec<f32>)],
        plan: FaultPlan,
    ) -> Result<RunReport, Box<FaultReport>> {
        let machine = CellMachine::default();
        let mut host = HostMemory::new(&c.ir.vars);
        for (name, data) in inputs {
            host.set(name, data).expect("test input binds");
        }
        run_with_options(
            &MachineConfig {
                cell_code: &c.cell,
                iu: &c.iu,
                host_program: &c.host,
                machine: &machine,
                n_cells,
                skew: c.skew.min_skew,
                flow: c.skew.flow,
            },
            host,
            &SimOptions {
                plan,
                ..SimOptions::default()
            },
        )
    }

    /// Two-cell pipeline, each cell adds 1 (min_skew > 0).
    const ADD_PIPE: &str = "module addpipe (xs in, ys out) float xs[6]; float ys[6]; \
        cellprogram (cid : 0 : 1) begin function f begin float v; int i; \
        for i := 0 to 5 do begin receive (L, X, v, xs[i]); send (R, X, v + 1.0, ys[i]); end; \
        end call f; end";

    /// Single cell buffering through IU-generated addresses.
    const BUF: &str = "module buf (xs in, ys out) float xs[8]; float ys[8]; \
        cellprogram (cid : 0 : 0) begin function f begin float v; float b[8]; int i; \
        for i := 0 to 7 do begin receive (L, X, v, xs[i]); b[i] := v; end; \
        for i := 0 to 7 do begin v := b[7 - i]; send (R, X, v, ys[i]); end; \
        end call f; end";

    fn xs(n: usize) -> (Vec<f32>, Vec<(&'static str, Vec<f32>)>) {
        let data: Vec<f32> = (0..n).map(|i| i as f32 + 0.5).collect();
        (data.clone(), vec![("xs", data)])
    }

    #[test]
    fn skew_jitter_provokes_queue_underflow() {
        let c = compile(ADD_PIPE, 2);
        assert!(c.skew.min_skew > 0);
        let (_, inputs) = xs(6);
        let report = run_plan(&c, 2, &inputs, FaultPlan::new(1).with(Fault::SkewDelta(-1)))
            .expect_err("one cycle less must underflow");
        let SimError::QueueUnderflow { cell, chan, cycle } = report.error else {
            panic::abort_test(&report)
        };
        assert_eq!(cell, 1, "the downstream cell starves");
        assert_eq!(chan, Chan::X);
        assert!(cycle >= (c.skew.min_skew - 1) as u64, "after cell 1 starts");
        assert_eq!(report.injected, vec!["skew jittered by -1 cycle(s)"]);
        assert!(!report.recent_events.is_empty(), "ring buffer captured I/O");
    }

    #[test]
    fn shrunk_queue_provokes_overflow() {
        let c = compile(ADD_PIPE, 2);
        let (_, inputs) = xs(6);
        // Extra skew makes the producer run far ahead of the consumer,
        // so the shrunk queue fills before cell 1 starts draining it.
        let plan = FaultPlan::new(1)
            .with(Fault::QueueCapacity(1))
            .with(Fault::SkewDelta(100));
        let report = run_plan(&c, 2, &inputs, plan)
            .expect_err("a 1-word queue under 100 extra cycles of skew must overflow");
        let SimError::QueueOverflow {
            cell,
            chan,
            capacity,
            cycle,
        } = report.error
        else {
            panic::abort_test(&report)
        };
        assert_eq!(cell, 1);
        assert_eq!(chan, Chan::X);
        assert_eq!(capacity, 1, "the report shows the effective capacity");
        assert!(cycle > 0);
    }

    #[test]
    fn delayed_addresses_miss_their_deadline() {
        let c = compile(BUF, 1);
        assert!(!c.iu.emissions().is_empty(), "program uses the Adr path");
        let (_, inputs) = xs(8);
        let report = run_plan(
            &c,
            1,
            &inputs,
            FaultPlan::new(1).with(Fault::DelayAddresses {
                cell: None,
                cycles: 100_000,
            }),
        )
        .expect_err("delayed addresses must be late");
        let SimError::AddressLate {
            cell,
            cycle,
            available,
        } = report.error
        else {
            panic::abort_test(&report)
        };
        assert_eq!(cell, 0);
        assert!(available > cycle, "availability is after the consumer");
        assert!(available >= 100_000);
    }

    #[test]
    fn dropped_final_address_underflows_the_adr_queue() {
        let c = compile(BUF, 1);
        let n_addrs = c.iu.emissions().len();
        assert!(n_addrs >= 2);
        let (_, inputs) = xs(8);
        let report = run_plan(
            &c,
            1,
            &inputs,
            FaultPlan::new(1).with(Fault::DropAddress {
                cell: None,
                index: n_addrs - 1,
            }),
        )
        .expect_err("one address short must underflow");
        let SimError::AddressUnderflow { cell, cycle } = report.error else {
            panic::abort_test(&report)
        };
        assert_eq!(cell, 0);
        assert!(cycle > 0);
    }

    #[test]
    fn corrupted_address_is_out_of_range() {
        let c = compile(BUF, 1);
        let (_, inputs) = xs(8);
        let bad = CellMachine::default().memory_words;
        let report = run_plan(
            &c,
            1,
            &inputs,
            FaultPlan::new(1).with(Fault::CorruptAddress {
                cell: None,
                index: 0,
                addr: bad,
            }),
        )
        .expect_err("address past memory must be rejected");
        let SimError::BadAddress { cell, addr, .. } = report.error else {
            panic::abort_test(&report)
        };
        assert_eq!(cell, 0);
        assert_eq!(addr, bad as usize);
    }

    #[test]
    fn flipped_flow_is_wrong_direction() {
        let c = compile(ADD_PIPE, 2);
        let (_, inputs) = xs(6);
        let report = run_plan(&c, 2, &inputs, FaultPlan::new(1).with(Fault::FlipFlow))
            .expect_err("every transfer is now against the flow");
        let SimError::WrongDirection { cell, .. } = report.error else {
            panic::abort_test(&report)
        };
        assert_eq!(cell, 0, "the first faulting cell is upstream-most");
    }

    #[test]
    fn dropped_boundary_word_is_an_output_mismatch() {
        let c = compile(BUF, 1);
        let (_, inputs) = xs(8);
        // The single cell sends 8 words on X; drop the last one.
        let report = run_plan(
            &c,
            1,
            &inputs,
            FaultPlan::new(1).with(Fault::DropWord {
                chan: Chan::X,
                index: 7,
            }),
        )
        .expect_err("host expects 8 words, gets 7");
        let SimError::OutputCountMismatch {
            chan,
            expected,
            got,
        } = report.error
        else {
            panic::abort_test(&report)
        };
        assert_eq!(chan, Chan::X);
        assert_eq!((expected, got), (8, 7));
    }

    #[test]
    fn dropped_interior_word_starves_downstream() {
        let c = compile(ADD_PIPE, 2);
        let (_, inputs) = xs(6);
        // Word 0 on X is cell 0's first send into the interior queue.
        let report = run_plan(
            &c,
            2,
            &inputs,
            FaultPlan::new(1).with(Fault::DropWord {
                chan: Chan::X,
                index: 0,
            }),
        )
        .expect_err("the interior queue runs one word short");
        assert!(
            matches!(
                report.error,
                SimError::QueueUnderflow { cell: 1, .. } | SimError::OutputCountMismatch { .. }
            ),
            "{}",
            report.error
        );
    }

    #[test]
    fn truncated_host_input_starves_the_boundary_cell() {
        let c = compile(BUF, 1);
        let (_, inputs) = xs(8);
        let report = run_plan(
            &c,
            1,
            &inputs,
            FaultPlan::new(1).with(Fault::TruncateInput {
                chan: Chan::X,
                keep: 7,
            }),
        )
        .expect_err("the eighth receive has no word behind it");
        let SimError::QueueUnderflow { cell, chan, .. } = report.error else {
            panic::abort_test(&report)
        };
        assert_eq!((cell, chan), (0, Chan::X));
    }

    #[test]
    fn cut_cycle_budget_hangs() {
        let c = compile(BUF, 1);
        let (_, inputs) = xs(8);
        let report = run_plan(
            &c,
            1,
            &inputs,
            FaultPlan::new(1).with(Fault::CycleBudget(3)),
        )
        .expect_err("three cycles are not enough");
        let SimError::Hang { cycle } = report.error else {
            panic::abort_test(&report)
        };
        assert_eq!(cycle, 4, "the guard trips one cycle past the budget");
    }

    #[test]
    fn corrupted_word_runs_clean_but_differs() {
        // Value corruption violates no machine invariant: the run
        // *succeeds*, and only a differential check catches it — which
        // is exactly what the guarantee audit automates.
        let c = compile(BUF, 1);
        let (data, inputs) = xs(8);
        let clean = run_plan(&c, 1, &inputs, FaultPlan::default()).expect("clean run");
        let expect: Vec<f32> = data.iter().rev().copied().collect();
        assert_eq!(clean.host.get("ys").unwrap(), &expect[..]);
        let corrupted = run_plan(
            &c,
            1,
            &inputs,
            FaultPlan::new(7).with(Fault::CorruptWord {
                chan: Chan::X,
                index: 3,
            }),
        )
        .expect("no invariant trips");
        assert_ne!(
            corrupted.host.get("ys").unwrap(),
            clean.host.get("ys").unwrap(),
            "the corruption reached the output"
        );
    }

    #[test]
    fn fault_report_carries_claims_and_high_water() {
        let c = compile(ADD_PIPE, 2);
        let machine = CellMachine::default();
        let mut host = HostMemory::new(&c.ir.vars);
        host.set("xs", &[1.0; 6]).expect("binds");
        let claims = crate::StaticClaims {
            min_skew: c.skew.min_skew,
            queue_occupancy: c.skew.queue_occupancy.clone(),
        };
        let report = run_with_options(
            &MachineConfig {
                cell_code: &c.cell,
                iu: &c.iu,
                host_program: &c.host,
                machine: &machine,
                n_cells: 2,
                skew: c.skew.min_skew,
                flow: c.skew.flow,
            },
            host,
            &SimOptions {
                plan: FaultPlan::new(1).with(Fault::SkewDelta(-1)),
                ring_capacity: 4,
                claims: Some(claims.clone()),
                ..SimOptions::default()
            },
        )
        .expect_err("underflows");
        assert_eq!(report.claims.as_ref(), Some(&claims));
        assert!(report.recent_events.len() <= 4, "ring buffer is bounded");
        assert!(
            !report.claim_exceeded(),
            "a too-small skew starves queues; it does not overfill them"
        );
        let rendered = report.to_string();
        assert!(rendered.contains("claimed min skew"), "{rendered}");
        assert!(rendered.contains("injected faults"), "{rendered}");
    }

    /// Small helper so variant mismatches abort with the full report.
    mod panic {
        use crate::FaultReport;

        pub fn abort_test(report: &FaultReport) -> ! {
            unreachable!("unexpected error variant:\n{report}")
        }
    }
}

#[test]
fn cancelled_token_stops_the_run_at_the_first_poll() {
    use crate::{run_with_options, SimOptions};
    use std::sync::Arc;
    use warp_common::ctrl::{CancelReason, CancelToken, ManualClock};

    let code = one_block(vec![MicroInst::default(); 200]);
    let iu = no_iu();
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let token = CancelToken::new(Arc::new(ManualClock::new(0)));
    token.cancel();
    let opts = SimOptions {
        cancel: token,
        poll_interval: 16,
        ..SimOptions::default()
    };
    let report = run_with_options(&cfg(&code, &iu, &hp, &machine), empty_host(), &opts)
        .expect_err("a cancelled token must interrupt the run");
    let SimError::Interrupted { cycle, reason } = report.error else {
        unreachable!("unexpected error variant: {}", report.error)
    };
    assert_eq!(reason, CancelReason::Cancelled);
    assert!(
        cycle < opts.poll_interval,
        "a pre-set cancel is observed within one poll interval, got cycle {cycle}"
    );
}

#[test]
fn deadline_interrupts_within_one_poll_interval() {
    use crate::{run_with_options, SimOptions};
    use std::sync::Arc;
    use warp_common::ctrl::{CancelReason, CancelToken, ManualClock};

    // Each deadline poll reads the clock once and advances it by one
    // tick, so the run "spends" one tick per poll. With a deadline of
    // 10 ticks, poll k reads tick k and the first failing read is
    // k = 11 — at simulated cycle 11 * poll_interval, exactly one poll
    // interval after the deadline was last satisfied.
    const POLL: u64 = 4;
    const DEADLINE: u64 = 10;
    let code = one_block(vec![MicroInst::default(); 200]);
    let iu = no_iu();
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let clock = Arc::new(ManualClock::with_auto_advance(0, 1));
    let token = CancelToken::with_deadline(clock, DEADLINE);
    let opts = SimOptions {
        cancel: token,
        poll_interval: POLL,
        ..SimOptions::default()
    };
    let report = run_with_options(&cfg(&code, &iu, &hp, &machine), empty_host(), &opts)
        .expect_err("the deadline must interrupt the run");
    let SimError::Interrupted { cycle, reason } = report.error else {
        unreachable!("unexpected error variant: {}", report.error)
    };
    assert!(
        matches!(reason, CancelReason::DeadlineExceeded { deadline: 10, .. }),
        "{reason}"
    );
    assert_eq!(cycle % POLL, 0, "interruptions land on poll boundaries");
    assert_eq!(
        cycle,
        (DEADLINE + 1) * POLL,
        "stopped within one poll interval of the deadline tripping"
    );
}

#[test]
fn writeback_timing_respects_latency() {
    // fadd at cycle 0 writes r0 at cycle 5; a send at cycle 5 sees the
    // new value, a send at cycle 4 would see the old (zero) value.
    use warp_cell::{AluOp, FpuField};
    let add = MicroInst {
        fadd: Some(FpuField {
            op: AluOp::Add,
            dst: Some(Reg(0)),
            srcs: vec![Operand::Imm(2.0), Operand::Imm(3.0)],
        }),
        ..MicroInst::default()
    };
    let mut early = MicroInst::default();
    early.io[2] = Some(IoField::Send {
        src: Operand::Reg(Reg(0)),
        ext: None,
    }); // (Right, X)
    let mut on_time = early.clone();
    let _ = &mut on_time;
    let insts = vec![
        add,
        MicroInst::default(),
        MicroInst::default(),
        MicroInst::default(),
        early.clone(), // cycle 4: old value 0.0
        early,         // cycle 5: new value 5.0
    ];
    let code = one_block(insts);
    let iu = no_iu();
    let mut hp = warp_host::HostProgram::default();
    hp.outputs.insert(Chan::X, vec![None, None]);
    let machine = CellMachine::default();
    // Collect via trace.
    let mut events = Vec::new();
    let report = crate::run_traced(&cfg(&code, &iu, &hp, &machine), empty_host(), &mut events)
        .expect("runs");
    let sends: Vec<f32> = events
        .iter()
        .filter(|e| !e.is_recv)
        .map(|e| e.value)
        .collect();
    assert_eq!(sends, vec![0.0, 5.0]);
    assert_eq!(report.words_out, 2);
}
