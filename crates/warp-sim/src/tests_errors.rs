//! Direct tests of the simulator's error paths, driving hand-built
//! microprograms that the compiler would never emit.

use crate::{run, MachineConfig, SimError};
use w2_lang::ast::{Chan, Dir};
use warp_cell::{
    AddrSource, BlockCode, CellCode, CellMachine, CodeRegion, IoField, MemField, MicroInst,
    Operand, Reg,
};
use warp_host::HostMemory;
use warp_iu::{EmitPlan, EmitSource, IuBlock, IuProgram, IuRegion};

fn empty_host() -> HostMemory {
    HostMemory::default()
}

fn one_block(insts: Vec<MicroInst>) -> CellCode {
    CellCode {
        name: "synthetic".into(),
        regions: vec![CodeRegion::Block(BlockCode {
            insts,
            io_events: vec![],
            adr_deadlines: vec![],
            source: None,
        })],
        regs_used: 1,
        scratch_words: 0,
    }
}

fn no_iu() -> IuProgram {
    IuProgram::default()
}

fn cfg<'a>(
    code: &'a CellCode,
    iu: &'a IuProgram,
    host_program: &'a warp_host::HostProgram,
    machine: &'a CellMachine,
) -> MachineConfig<'a> {
    MachineConfig {
        cell_code: code,
        iu,
        host_program,
        machine,
        n_cells: 1,
        skew: 0,
        flow: Dir::Right,
    }
}

#[test]
fn address_underflow_detected() {
    let mut inst = MicroInst::default();
    inst.mem[0] = Some(MemField::Read {
        addr: AddrSource::AdrQueue,
        dst: Some(Reg(0)),
    });
    let code = one_block(vec![inst]);
    let iu = no_iu();
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(matches!(err, SimError::AddressUnderflow { .. }), "{err}");
}

#[test]
fn late_address_detected() {
    // The IU emits the address at cycle 5; the cell consumes at cycle 0.
    let mut inst = MicroInst::default();
    inst.mem[0] = Some(MemField::Read {
        addr: AddrSource::AdrQueue,
        dst: Some(Reg(0)),
    });
    let code = one_block(vec![inst]);
    let iu = IuProgram {
        name: "late".into(),
        regs_used: 0,
        table: vec![3],
        init: vec![],
        regions: vec![IuRegion::Block(IuBlock {
            len: 6,
            emits: vec![EmitPlan {
                cycle: 5,
                source: EmitSource::Table,
            }],
        })],
    };
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(
        matches!(err, SimError::AddressLate { available: 5, .. }),
        "{err}"
    );
}

#[test]
fn bad_address_detected() {
    let mut inst = MicroInst::default();
    inst.mem[0] = Some(MemField::Read {
        addr: AddrSource::AdrQueue,
        dst: Some(Reg(0)),
    });
    let code = one_block(vec![inst]);
    let iu = IuProgram {
        name: "oob".into(),
        regs_used: 0,
        table: vec![99999],
        init: vec![],
        regions: vec![IuRegion::Block(IuBlock {
            len: 1,
            emits: vec![EmitPlan {
                cycle: 0,
                source: EmitSource::Table,
            }],
        })],
    };
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(
        matches!(err, SimError::BadAddress { addr: 99999, .. }),
        "{err}"
    );
}

#[test]
fn wrong_direction_detected() {
    // A send towards the upstream side of a right-flowing array.
    let mut inst = MicroInst::default();
    inst.io[0] = Some(IoField::Send {
        src: Operand::Imm(1.0),
        ext: None,
    }); // io index 0 = (Left, X)
    let code = one_block(vec![inst]);
    let iu = no_iu();
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(matches!(err, SimError::WrongDirection { .. }), "{err}");
}

#[test]
fn boundary_underflow_detected() {
    // A receive with no host data behind it.
    let mut inst = MicroInst::default();
    inst.io[0] = Some(IoField::Recv {
        dst: Some(Reg(0)),
        ext: None,
    });
    let code = one_block(vec![inst]);
    let iu = no_iu();
    let hp = warp_host::HostProgram::default();
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::QueueUnderflow {
                cell: 0,
                chan: Chan::X,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn output_count_mismatch_detected() {
    // The host program expects one word; the array sends none.
    let code = one_block(vec![MicroInst::default()]);
    let iu = no_iu();
    let hp = warp_host::HostProgram {
        outputs: [(Chan::X, vec![None])].into_iter().collect(),
        ..warp_host::HostProgram::default()
    };
    let machine = CellMachine::default();
    let err = run(&cfg(&code, &iu, &hp, &machine), empty_host()).unwrap_err();
    assert!(matches!(err, SimError::OutputCountMismatch { .. }), "{err}");
}

#[test]
fn writeback_timing_respects_latency() {
    // fadd at cycle 0 writes r0 at cycle 5; a send at cycle 5 sees the
    // new value, a send at cycle 4 would see the old (zero) value.
    use warp_cell::{AluOp, FpuField};
    let add = MicroInst {
        fadd: Some(FpuField {
            op: AluOp::Add,
            dst: Some(Reg(0)),
            srcs: vec![Operand::Imm(2.0), Operand::Imm(3.0)],
        }),
        ..MicroInst::default()
    };
    let mut early = MicroInst::default();
    early.io[2] = Some(IoField::Send {
        src: Operand::Reg(Reg(0)),
        ext: None,
    }); // (Right, X)
    let mut on_time = early.clone();
    let _ = &mut on_time;
    let insts = vec![
        add,
        MicroInst::default(),
        MicroInst::default(),
        MicroInst::default(),
        early.clone(), // cycle 4: old value 0.0
        early,         // cycle 5: new value 5.0
    ];
    let code = one_block(insts);
    let iu = no_iu();
    let mut hp = warp_host::HostProgram::default();
    hp.outputs.insert(Chan::X, vec![None, None]);
    let machine = CellMachine::default();
    // Collect via trace.
    let mut events = Vec::new();
    let report = crate::run_traced(&cfg(&code, &iu, &hp, &machine), empty_host(), &mut events)
        .expect("runs");
    let sends: Vec<f32> = events
        .iter()
        .filter(|e| !e.is_recv)
        .map(|e| e.value)
        .collect();
    assert_eq!(sends, vec![0.0, 5.0]);
    assert_eq!(report.words_out, 2);
}
