//! Simulation errors: the machine invariants the compiler must uphold.

use std::fmt;
use w2_lang::ast::Chan;
use warp_common::CancelReason;
use warp_host::HostError;

/// A violated machine invariant, with the global cycle it surfaced at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A cell dequeued from an empty channel queue: the skew was too
    /// small (paper §6.2.1).
    QueueUnderflow {
        /// Pipeline position of the faulting cell.
        cell: usize,
        /// Channel.
        chan: Chan,
        /// Global cycle.
        cycle: u64,
    },
    /// A queue exceeded its capacity: the compiler's occupancy bound was
    /// violated or the queue is too small (paper §6.2.2).
    QueueOverflow {
        /// Pipeline position downstream of the full queue.
        cell: usize,
        /// Channel.
        chan: Chan,
        /// Global cycle.
        cycle: u64,
        /// Configured capacity.
        capacity: u32,
    },
    /// A memory operation consumed an address the IU never produced.
    AddressUnderflow {
        /// Pipeline position.
        cell: usize,
        /// Global cycle.
        cycle: u64,
    },
    /// An IU address arrives after the cycle its consumer issues: a
    /// missed deadline (paper §6.3.2).
    AddressLate {
        /// Pipeline position.
        cell: usize,
        /// Global cycle of the consuming operation.
        cycle: u64,
        /// Cycle the address becomes available.
        available: u64,
    },
    /// An address outside the 4K-word data memory.
    BadAddress {
        /// Pipeline position.
        cell: usize,
        /// Global cycle.
        cycle: u64,
        /// The offending address.
        addr: usize,
    },
    /// A cell communicated against the declared flow direction.
    WrongDirection {
        /// Pipeline position.
        cell: usize,
        /// Global cycle.
        cycle: u64,
    },
    /// The array produced a different number of boundary words than the
    /// host program expects.
    OutputCountMismatch {
        /// Channel.
        chan: Chan,
        /// Words the host program binds.
        expected: usize,
        /// Words the array delivered.
        got: usize,
    },
    /// The simulation exceeded its cycle budget (an internal bug guard).
    Hang {
        /// Cycle the guard tripped.
        cycle: u64,
    },
    /// The simulation was stopped cooperatively: its
    /// [`CancelToken`](warp_common::CancelToken) was cancelled or its
    /// deadline expired. Unlike the other variants this is not a machine
    /// invariant — it is the service layer reclaiming the worker.
    Interrupted {
        /// Cycle the cancellation poll observed the stop request.
        cycle: u64,
        /// Why the run was stopped.
        reason: CancelReason,
    },
    /// A host-memory binding failed before the array started (unknown
    /// variable name or wrong data length).
    Host(HostError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QueueUnderflow { cell, chan, cycle } => write!(
                f,
                "queue underflow: cell {cell} dequeued empty {chan:?} at cycle {cycle}"
            ),
            SimError::QueueOverflow {
                cell,
                chan,
                cycle,
                capacity,
            } => write!(
                f,
                "queue overflow: {chan:?} into cell {cell} exceeded {capacity} words at cycle {cycle}"
            ),
            SimError::AddressUnderflow { cell, cycle } => write!(
                f,
                "address underflow: cell {cell} consumed a missing IU address at cycle {cycle}"
            ),
            SimError::AddressLate {
                cell,
                cycle,
                available,
            } => write!(
                f,
                "address deadline missed: cell {cell} needed an address at cycle {cycle}, \
                 available at {available}"
            ),
            SimError::BadAddress { cell, cycle, addr } => write!(
                f,
                "bad address {addr} on cell {cell} at cycle {cycle}"
            ),
            SimError::WrongDirection { cell, cycle } => write!(
                f,
                "cell {cell} communicated against the flow direction at cycle {cycle}"
            ),
            SimError::OutputCountMismatch {
                chan,
                expected,
                got,
            } => write!(
                f,
                "output mismatch on {chan:?}: host expects {expected} word(s), array sent {got}"
            ),
            SimError::Hang { cycle } => {
                write!(f, "simulation exceeded its cycle budget at cycle {cycle}")
            }
            SimError::Interrupted { cycle, reason } => {
                write!(f, "simulation interrupted at cycle {cycle}: {reason}")
            }
            SimError::Host(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {
    /// A [`SimError::Host`] preserves its underlying [`HostError`] as
    /// the error source, so callers can walk the chain to the root
    /// cause instead of re-parsing the rendered message.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Host(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HostError> for SimError {
    fn from(e: HostError) -> SimError {
        SimError::Host(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::QueueUnderflow {
            cell: 2,
            chan: Chan::X,
            cycle: 17,
        };
        assert!(e.to_string().contains("underflow"));
        assert!(e.to_string().contains("cell 2"));
        let e = SimError::Hang { cycle: 5 };
        assert!(e.to_string().contains("cycle budget"));
    }
}
