//! Structured invariant-violation reports.
//!
//! When a machine invariant trips, a bare error string loses the
//! context needed to judge the compiler's static claims: what bound was
//! *claimed*, what the machine actually *observed*, and what the array
//! was doing in the cycles before the trip. [`FaultReport`] packages
//! all of that — the [`SimError`], per-channel queue-occupancy
//! high-water marks, a ring buffer of the last trace events, the static
//! claims under test, and the injected faults (if any) — so the CLI and
//! the guarantee audit can print a self-contained post-mortem.

use crate::error::SimError;
use crate::machine::TraceEvent;
use std::collections::BTreeMap;
use std::fmt;
use w2_lang::ast::Chan;

/// The compiler's static claims about a run, carried into the
/// simulation so a violation report can show claimed vs. observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticClaims {
    /// The minimum skew the analysis computed (paper §6.2.1).
    pub min_skew: i64,
    /// The per-channel queue occupancy bound at that skew (§6.2.2).
    pub queue_occupancy: BTreeMap<Chan, u64>,
}

/// Everything known at the moment an invariant tripped.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultReport {
    /// The violated invariant.
    pub error: SimError,
    /// Global cycles simulated before the trip.
    pub cycles_run: u64,
    /// Highest interior-queue occupancy observed per channel, across
    /// all cells, up to the trip.
    pub queue_high_water: BTreeMap<Chan, u64>,
    /// The last trace events before the trip, oldest first (bounded by
    /// [`SimOptions::ring_capacity`](crate::SimOptions::ring_capacity)).
    pub recent_events: Vec<TraceEvent>,
    /// The static claims the run was checking, if the caller supplied
    /// them.
    pub claims: Option<StaticClaims>,
    /// Descriptions of the injected faults active in this run.
    pub injected: Vec<String>,
}

impl FaultReport {
    /// Returns `true` when an observed channel occupancy exceeded the
    /// claimed bound — the static analysis itself is wrong, not just
    /// the run's parameters.
    pub fn claim_exceeded(&self) -> bool {
        let Some(claims) = &self.claims else {
            return false;
        };
        self.queue_high_water.iter().any(|(chan, &observed)| {
            claims
                .queue_occupancy
                .get(chan)
                .is_some_and(|&claimed| observed > claimed)
        })
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault report: {}", self.error)?;
        writeln!(f, "  cycles run : {}", self.cycles_run)?;
        for (chan, observed) in &self.queue_high_water {
            match self
                .claims
                .as_ref()
                .and_then(|c| c.queue_occupancy.get(chan))
            {
                Some(claimed) => writeln!(
                    f,
                    "  {chan:?} high water: {observed} word(s) (claimed bound {claimed}{})",
                    if observed > claimed {
                        " — EXCEEDED"
                    } else {
                        ""
                    }
                )?,
                None => writeln!(f, "  {chan:?} high water: {observed} word(s)")?,
            }
        }
        if let Some(claims) = &self.claims {
            writeln!(f, "  claimed min skew: {}", claims.min_skew)?;
        }
        if !self.injected.is_empty() {
            writeln!(f, "  injected faults:")?;
            for d in &self.injected {
                writeln!(f, "    - {d}")?;
            }
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "  last {} trace event(s):", self.recent_events.len())?;
            for e in &self.recent_events {
                writeln!(
                    f,
                    "    cycle {:>6} cell {:>2} {:?} {} {}",
                    e.cycle,
                    e.cell,
                    e.chan,
                    if e.is_recv { "recv" } else { "send" },
                    e.value
                )?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for FaultReport {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<FaultReport> for SimError {
    fn from(r: FaultReport) -> SimError {
        r.error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultReport {
        FaultReport {
            error: SimError::QueueUnderflow {
                cell: 1,
                chan: Chan::X,
                cycle: 17,
            },
            cycles_run: 17,
            queue_high_water: [(Chan::X, 3u64)].into_iter().collect(),
            recent_events: vec![TraceEvent {
                cycle: 16,
                cell: 0,
                chan: Chan::X,
                is_recv: false,
                value: 2.5,
            }],
            claims: Some(StaticClaims {
                min_skew: 4,
                queue_occupancy: [(Chan::X, 2u64)].into_iter().collect(),
            }),
            injected: vec!["skew jittered by -1 cycle(s)".to_owned()],
        }
    }

    #[test]
    fn display_shows_claims_and_ring() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("queue underflow"), "{s}");
        assert!(s.contains("claimed bound 2"), "{s}");
        assert!(s.contains("EXCEEDED"), "{s}");
        assert!(s.contains("injected faults"), "{s}");
        assert!(s.contains("cycle     16"), "{s}");
        assert!(r.claim_exceeded());
    }

    #[test]
    fn source_chain_reaches_sim_error() {
        use std::error::Error as _;
        let r = sample();
        let src = r.source().expect("has a source");
        assert!(src.to_string().contains("queue underflow"));
        assert_eq!(SimError::from(r.clone()), r.error);
    }

    #[test]
    fn within_claims_is_not_exceeded() {
        let mut r = sample();
        r.queue_high_water.insert(Chan::X, 2);
        assert!(!r.claim_exceeded());
        r.claims = None;
        assert!(!r.claim_exceeded());
    }
}
