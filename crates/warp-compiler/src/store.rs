//! The crash-safe persistent artifact store: the disk tier under the
//! in-memory [`CompileCache`].
//!
//! A compiled module is serialized with the deterministic wire codec
//! (`warp_common::wire`), framed as a versioned, checksummed record
//! (`warp_common::vfs::record`), and written via the atomic
//! write-temp/fsync/rename protocol to `<store-dir>/<key>.wart`,
//! where `<key>` is the 32-hex-digit [`ContentKey`] of the compile
//! request. All I/O goes through the [`Vfs`] abstraction, so the same
//! store runs over the real filesystem in production and over a
//! fault-injecting in-memory tree in the crash soak.
//!
//! # Recovery and quarantine
//!
//! Opening a store scans its directory once:
//!
//! * `*.tmp` staging leftovers (a crash between write and rename) are
//!   deleted and counted — the target file, if present, still holds
//!   its previous intact content.
//! * Files whose name is not `<32 hex>.wart` are quarantined.
//! * Every artifact's record framing (length, checksum, magic,
//!   schema version) is validated; a torn, bit-flipped, truncated, or
//!   stale-schema record is **quarantined**: deleted and counted,
//!   never indexed, never served.
//!
//! Payload decode runs lazily on first read; a record whose checksum
//! passes but whose payload no longer decodes (e.g. a pass was
//! renamed without a schema bump) is quarantined at that point. The
//! invariant either way: a byte that was not written by this schema's
//! encoder is never handed to a client.
//!
//! # Eviction
//!
//! A byte budget (0 = unbounded) is enforced after every put and at
//! open: least-recently-used artifacts are deleted until the resident
//! bytes fit, except the most recently used one, so a single artifact
//! larger than the budget still persists (mirroring the memory tier).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use warp_common::vfs::{atomic_write, record, Vfs, VfsError, TMP_SUFFIX};
use warp_common::wire::{from_bytes, to_bytes, Decode, Encode, WireError, WireReader};
use warp_common::{ContentKey, PassTiming};

use crate::cache::{CacheOutcome, CompileCache};
use crate::{passes, CompileFailure, CompiledModule, Metrics};

/// Schema version of the serialized artifact payload. Bump whenever
/// any wire impl reachable from [`CompiledModule`] changes (field
/// order, enum tags, pass names): old records then quarantine as
/// stale instead of misdecoding.
pub const STORE_SCHEMA_VERSION: u16 = 1;

/// File extension of persisted artifacts.
pub const ARTIFACT_EXT: &str = "wart";

// --- CompiledModule wire codec -------------------------------------

// `PassTiming` lives in warp-common but its `name` is a `&'static
// str` into the driver's pass table, so the codec must live here: the
// name round-trips as a string and decodes by lookup against
// `passes::PIPELINE`. An unknown name means the payload predates a
// pass rename — a decode error, which the store turns into
// quarantine.
impl Encode for Metrics {
    fn encode(&self, out: &mut Vec<u8>) {
        self.w2_lines.encode(out);
        self.cell_ucode.encode(out);
        self.iu_ucode.encode(out);
        self.compile_time.encode(out);
        self.per_pass.len().encode(out);
        for t in &self.per_pass {
            t.name.encode(out);
            t.duration.encode(out);
        }
        self.rewrite_hits.encode(out);
    }
}

impl Decode for Metrics {
    fn decode(r: &mut WireReader<'_>) -> Result<Metrics, WireError> {
        let w2_lines = u32::decode(r)?;
        let cell_ucode = u32::decode(r)?;
        let iu_ucode = u64::decode(r)?;
        let compile_time = Duration::decode(r)?;
        let n = r.checked_len(1)?;
        let mut per_pass = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::decode(r)?;
            let duration = Duration::decode(r)?;
            let info = passes::find_pass(&name).ok_or(WireError::Invalid { what: "pass name" })?;
            per_pass.push(PassTiming {
                name: info.name,
                duration,
            });
        }
        let rewrite_hits = Vec::decode(r)?;
        Ok(Metrics {
            w2_lines,
            cell_ucode,
            iu_ucode,
            compile_time,
            per_pass,
            rewrite_hits,
        })
    }
}

warp_common::wire_struct!(CompiledModule {
    name,
    n_cells,
    ir,
    cell_code,
    iu,
    host,
    skew,
    comm,
    machine,
    metrics,
    warnings,
});

/// Serializes a module to its exact artifact payload bytes.
pub fn artifact_bytes(module: &CompiledModule) -> Vec<u8> {
    to_bytes(module)
}

/// Serializes a module with all wall-clock durations zeroed.
///
/// Compile times are the one nondeterministic part of a module, so
/// bitwise artifact comparison (the soak's "never serve a corrupt
/// artifact" check) compares canonical bytes: two correct compiles of
/// the same source agree on these even though their timings differ.
pub fn canonical_artifact_bytes(module: &CompiledModule) -> Vec<u8> {
    let mut m = module.clone();
    m.metrics.compile_time = Duration::ZERO;
    for t in &mut m.metrics.per_pass {
        t.duration = Duration::ZERO;
    }
    to_bytes(&m)
}

// --- Disk store ----------------------------------------------------

/// Configuration of a [`DiskStore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Directory holding the artifact files (created on open).
    pub dir: PathBuf,
    /// Resident-byte budget; 0 means unbounded.
    pub byte_budget: u64,
}

impl StoreConfig {
    /// An unbounded store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            byte_budget: 0,
        }
    }
}

/// Counters of a [`DiskStore`]. `entries`/`resident_bytes` are
/// gauges; the rest are monotonic over the store's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts found intact by the opening recovery scan.
    pub recovered: u64,
    /// Corrupt/truncated/stale/foreign entries deleted, at open or on
    /// a failed read.
    pub quarantined: u64,
    /// `.tmp` staging leftovers deleted by the recovery scan.
    pub tmp_cleaned: u64,
    /// Reads served from an intact artifact.
    pub hits: u64,
    /// Reads of keys with no (intact) artifact.
    pub misses: u64,
    /// Artifacts written successfully.
    pub puts: u64,
    /// Writes that failed (ENOSPC, EIO, crash).
    pub put_failures: u64,
    /// Artifacts deleted by the byte budget.
    pub evictions: u64,
    /// Artifacts currently indexed.
    pub entries: u64,
    /// Bytes currently on disk across indexed artifacts.
    pub resident_bytes: u64,
}

struct IndexEntry {
    bytes: u64,
    last_used: u64,
}

struct StoreInner {
    index: BTreeMap<ContentKey, IndexEntry>,
    stats: StoreStats,
    tick: u64,
}

/// The persistent artifact tier. See the module docs for the on-disk
/// protocol. All methods take `&self`; a mutex serializes index
/// updates and I/O.
pub struct DiskStore {
    vfs: Arc<dyn Vfs>,
    config: StoreConfig,
    inner: Mutex<StoreInner>,
}

impl DiskStore {
    /// Opens (or creates) the store and runs the recovery scan.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be created or listed;
    /// individual bad entries are quarantined, not errors.
    pub fn open(vfs: Arc<dyn Vfs>, config: StoreConfig) -> Result<DiskStore, VfsError> {
        vfs.create_dir_all(&config.dir)?;
        let mut inner = StoreInner {
            index: BTreeMap::new(),
            stats: StoreStats::default(),
            tick: 0,
        };
        let mut files = vfs.list_files(&config.dir)?;
        files.sort();
        for path in files {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(TMP_SUFFIX) {
                let _ = vfs.remove_file(&path);
                inner.stats.tmp_cleaned += 1;
                continue;
            }
            let Some(key) = key_from_file_name(name) else {
                let _ = vfs.remove_file(&path);
                inner.stats.quarantined += 1;
                continue;
            };
            let intact = match vfs.read(&path) {
                Ok(bytes) => {
                    let len = bytes.len() as u64;
                    record::decode(&bytes, STORE_SCHEMA_VERSION)
                        .is_ok()
                        .then_some(len)
                }
                Err(_) => None,
            };
            match intact {
                Some(len) => {
                    let tick = inner.tick;
                    inner.tick += 1;
                    inner.index.insert(
                        key,
                        IndexEntry {
                            bytes: len,
                            last_used: tick,
                        },
                    );
                    inner.stats.recovered += 1;
                }
                None => {
                    let _ = vfs.remove_file(&path);
                    inner.stats.quarantined += 1;
                }
            }
        }
        let store = DiskStore {
            vfs,
            config,
            inner: Mutex::new(inner),
        };
        {
            let mut inner = store.lock();
            store.evict_over_budget(&mut inner);
            Self::refresh_gauges(&mut inner);
        }
        Ok(store)
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Number of indexed artifacts.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// `true` when no artifact is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when an intact artifact for `key` is indexed (pure
    /// probe: no counters, no recency update, no payload validation).
    pub fn contains(&self, key: ContentKey) -> bool {
        self.lock().index.contains_key(&key)
    }

    /// Reads and decodes the artifact for `key`.
    ///
    /// Returns `None` on a miss — including the case where the file
    /// turns out corrupt or undecodable at read time, in which case
    /// it is quarantined first. A module this returns was bitwise
    /// validated against its record checksum.
    pub fn get(&self, key: ContentKey) -> Option<CompiledModule> {
        let mut inner = self.lock();
        if !inner.index.contains_key(&key) {
            inner.stats.misses += 1;
            return None;
        }
        let path = self.path_for(key);
        let module = self
            .vfs
            .read(&path)
            .ok()
            .and_then(|bytes| record::decode(&bytes, STORE_SCHEMA_VERSION).ok())
            .and_then(|payload| from_bytes::<CompiledModule>(&payload).ok());
        match module {
            Some(module) => {
                let tick = inner.tick;
                inner.tick += 1;
                if let Some(e) = inner.index.get_mut(&key) {
                    e.last_used = tick;
                }
                inner.stats.hits += 1;
                Some(module)
            }
            None => {
                let _ = self.vfs.remove_file(&path);
                inner.index.remove(&key);
                inner.stats.quarantined += 1;
                inner.stats.misses += 1;
                Self::refresh_gauges(&mut inner);
                None
            }
        }
    }

    /// Persists `module` under `key` via the atomic write protocol,
    /// then enforces the byte budget.
    ///
    /// # Errors
    ///
    /// Any [`VfsError`] from the write path; the store's index is
    /// untouched on failure (a `.tmp` leftover, if any, is cleaned by
    /// the next recovery scan).
    pub fn put(&self, key: ContentKey, module: &CompiledModule) -> Result<(), VfsError> {
        let bytes = record::encode(STORE_SCHEMA_VERSION, &artifact_bytes(module));
        let mut inner = self.lock();
        let path = self.path_for(key);
        match atomic_write(self.vfs.as_ref(), &path, &bytes) {
            Ok(()) => {
                let tick = inner.tick;
                inner.tick += 1;
                inner.index.insert(
                    key,
                    IndexEntry {
                        bytes: bytes.len() as u64,
                        last_used: tick,
                    },
                );
                inner.stats.puts += 1;
                self.evict_over_budget(&mut inner);
                Self::refresh_gauges(&mut inner);
                Ok(())
            }
            Err(e) => {
                inner.stats.put_failures += 1;
                Err(e)
            }
        }
    }

    /// Deletes the artifact for `key`; `false` when none was indexed.
    pub fn remove(&self, key: ContentKey) -> bool {
        let mut inner = self.lock();
        if inner.index.remove(&key).is_none() {
            return false;
        }
        let _ = self.vfs.remove_file(&self.path_for(key));
        Self::refresh_gauges(&mut inner);
        true
    }

    /// Deletes every artifact (operator `cache clear`), returning the
    /// bytes reclaimed. Monotonic counters survive.
    pub fn clear(&self) -> u64 {
        let mut inner = self.lock();
        let reclaimed = inner.stats.resident_bytes;
        let keys: Vec<ContentKey> = inner.index.keys().copied().collect();
        for key in keys {
            let _ = self.vfs.remove_file(&self.path_for(key));
        }
        inner.index.clear();
        Self::refresh_gauges(&mut inner);
        reclaimed
    }

    fn path_for(&self, key: ContentKey) -> PathBuf {
        self.config.dir.join(format!("{key}.{ARTIFACT_EXT}"))
    }

    fn evict_over_budget(&self, inner: &mut StoreInner) {
        if self.config.byte_budget == 0 {
            return;
        }
        while inner.index.len() > 1 && Self::resident(inner) > self.config.byte_budget {
            let victim = inner
                .index
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty index");
            inner.index.remove(&victim);
            let _ = self.vfs.remove_file(&self.path_for(victim));
            inner.stats.evictions += 1;
        }
    }

    fn resident(inner: &StoreInner) -> u64 {
        inner.index.values().map(|e| e.bytes).sum()
    }

    fn refresh_gauges(inner: &mut StoreInner) {
        inner.stats.entries = inner.index.len() as u64;
        inner.stats.resident_bytes = Self::resident(inner);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Parses `<32 hex>.wart` back into its [`ContentKey`] (the Display
/// form is `{hi:016x}{lo:016x}`).
fn key_from_file_name(name: &str) -> Option<ContentKey> {
    let stem = name.strip_suffix(&format!(".{ARTIFACT_EXT}"))?;
    if stem.len() != 32 || !stem.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let hi = u64::from_str_radix(&stem[..16], 16).ok()?;
    let lo = u64::from_str_radix(&stem[16..], 16).ok()?;
    Some(ContentKey { lo, hi })
}

// --- Tiered cache --------------------------------------------------

/// Where a tiered lookup was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieredOutcome {
    /// Positive hit in the memory tier.
    MemoryHit,
    /// Live negative entry in the memory tier (negatives are never
    /// persisted).
    NegativeHit,
    /// Memory miss served by decoding a disk artifact (and promoted
    /// into the memory tier).
    DiskHit,
    /// Missed both tiers; this request compiled.
    Compiled,
    /// Coalesced onto a concurrent identical request.
    Coalesced,
}

impl TieredOutcome {
    /// `true` when the pipeline did not run for this request.
    pub fn served_without_compile(&self) -> bool {
        !matches!(self, TieredOutcome::Compiled)
    }

    /// Stable lowercase label for logs and stats tables.
    pub fn label(&self) -> &'static str {
        match self {
            TieredOutcome::MemoryHit => "memory-hit",
            TieredOutcome::NegativeHit => "negative-hit",
            TieredOutcome::DiskHit => "disk-hit",
            TieredOutcome::Compiled => "compiled",
            TieredOutcome::Coalesced => "coalesced",
        }
    }
}

/// Bytes and entries reclaimed by [`TieredCache::clear_tiers`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClearReport {
    /// Entries dropped from the memory tier.
    pub memory_entries: u64,
    /// Estimated bytes reclaimed in the memory tier.
    pub memory_bytes: u64,
    /// Artifacts deleted from the disk tier.
    pub disk_entries: u64,
    /// Bytes reclaimed on disk.
    pub disk_bytes: u64,
}

/// The two-tier cache: the in-memory [`CompileCache`] in front of an
/// optional persistent [`DiskStore`].
///
/// Lookup order is memory → disk → compile. A disk hit is promoted
/// into the memory tier; a fresh compile is written through to disk.
/// Negative results (deterministic failures) stay memory-only: they
/// are cheap to rediscover and quarantining policy belongs to the
/// breaker, not the store. Single-flight is inherited from the memory
/// tier — concurrent identical requests decode or compile once.
pub struct TieredCache {
    mem: CompileCache,
    disk: Option<DiskStore>,
}

impl TieredCache {
    /// A tiered cache; `disk: None` degrades to memory-only.
    pub fn new(mem: CompileCache, disk: Option<DiskStore>) -> TieredCache {
        TieredCache { mem, disk }
    }

    /// The memory tier.
    pub fn memory(&self) -> &CompileCache {
        &self.mem
    }

    /// The disk tier, when configured.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// Serves `key` from the shallowest tier that has it, else runs
    /// `compile` (single-flight) and populates both tiers on success.
    /// Disk write failures are absorbed: the result is still served
    /// and cached in memory, and the failure is counted in
    /// [`StoreStats::put_failures`].
    pub fn get_or_compile(
        &self,
        key: ContentKey,
        compile: impl FnOnce() -> Result<CompiledModule, CompileFailure>,
    ) -> (Result<Arc<CompiledModule>, CompileFailure>, TieredOutcome) {
        let from_disk = Cell::new(false);
        let (result, outcome) = self.mem.get_or_compile(key, || {
            if let Some(store) = &self.disk {
                if let Some(module) = store.get(key) {
                    from_disk.set(true);
                    return Ok(module);
                }
            }
            let module = compile()?;
            if let Some(store) = &self.disk {
                let _ = store.put(key, &module);
            }
            Ok(module)
        });
        let outcome = match outcome {
            CacheOutcome::Hit => TieredOutcome::MemoryHit,
            CacheOutcome::NegativeHit => TieredOutcome::NegativeHit,
            CacheOutcome::Coalesced => TieredOutcome::Coalesced,
            CacheOutcome::Compiled if from_disk.get() => TieredOutcome::DiskHit,
            CacheOutcome::Compiled => TieredOutcome::Compiled,
        };
        (result, outcome)
    }

    /// Clears both tiers, reporting what each reclaimed.
    pub fn clear_tiers(&self) -> ClearReport {
        let before = self.mem.stats();
        self.mem.clear();
        let (disk_entries, disk_bytes) = match &self.disk {
            Some(store) => (store.stats().entries, store.clear()),
            None => (0, 0),
        };
        ClearReport {
            memory_entries: before.entries,
            memory_bytes: before.resident_bytes,
            disk_entries,
            disk_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, CacheStats};
    use crate::{corpus, CompileOptions, Session};
    use std::path::Path;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use warp_common::{ManualClock, MemVfs};

    fn compile_ok(source: &str) -> CompiledModule {
        Session::new(CompileOptions::default())
            .try_compile(source)
            .expect("corpus program compiles")
    }

    fn mem_store(vfs: &MemVfs, budget: u64) -> DiskStore {
        DiskStore::open(
            Arc::new(vfs.clone()),
            StoreConfig {
                dir: PathBuf::from("/store"),
                byte_budget: budget,
            },
        )
        .expect("open store")
    }

    fn tiered(vfs: &MemVfs) -> TieredCache {
        TieredCache::new(
            CompileCache::new(CacheConfig::default(), Arc::new(ManualClock::new(0))),
            Some(mem_store(vfs, 0)),
        )
    }

    fn key_of(n: u64) -> ContentKey {
        ContentKey { lo: n, hi: !n }
    }

    #[test]
    fn module_round_trips_bitwise() {
        let module = compile_ok(corpus::POLYNOMIAL);
        let bytes = artifact_bytes(&module);
        let back: CompiledModule = from_bytes(&bytes).expect("decode");
        assert_eq!(bytes, artifact_bytes(&back));
        assert_eq!(module.name, back.name);
        assert_eq!(module.cell_code, back.cell_code);
        assert_eq!(module.iu, back.iu);
        assert_eq!(module.metrics.per_pass.len(), back.metrics.per_pass.len());
        // Canonical bytes are stable across compiles of the same
        // source even though wall-clock timings differ.
        let again = compile_ok(corpus::POLYNOMIAL);
        assert_ne!(
            artifact_bytes(&module),
            artifact_bytes(&again),
            "full bytes embed wall-clock timings"
        );
        assert_eq!(
            canonical_artifact_bytes(&module),
            canonical_artifact_bytes(&again)
        );
    }

    #[test]
    fn unknown_pass_name_fails_decode() {
        let mut module = compile_ok(corpus::POLYNOMIAL);
        module.metrics.per_pass[0].name = "frontend";
        let mut bytes = artifact_bytes(&module);
        // Corrupt the pass name in place: "frontend" -> "frontund".
        let pos = bytes
            .windows(8)
            .position(|w| w == b"frontend")
            .expect("name present");
        bytes[pos + 5] = b'u';
        assert!(from_bytes::<CompiledModule>(&bytes).is_err());
    }

    #[test]
    fn store_round_trips_and_counts() {
        let vfs = MemVfs::new();
        let store = mem_store(&vfs, 0);
        let module = compile_ok(corpus::POLYNOMIAL);
        let key = key_of(1);
        assert!(store.get(key).is_none());
        store.put(key, &module).expect("put");
        assert!(store.contains(key));
        let back = store.get(key).expect("hit");
        assert_eq!(artifact_bytes(&module), artifact_bytes(&back));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.puts), (1, 1, 1));
        assert_eq!(s.entries, 1);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn reopen_recovers_cleans_tmp_and_quarantines() {
        let vfs = MemVfs::new();
        let module = compile_ok(corpus::POLYNOMIAL);
        {
            let store = mem_store(&vfs, 0);
            store.put(key_of(1), &module).expect("put");
            store.put(key_of(2), &module).expect("put");
        }
        // A crash leftover, a corrupt artifact, and a foreign file.
        let vfs_dyn: &dyn Vfs = &vfs;
        vfs_dyn
            .write(Path::new("/store/stale.wart.tmp"), b"partial")
            .unwrap();
        let victim = PathBuf::from(format!("/store/{}.{ARTIFACT_EXT}", key_of(2)));
        let mut bytes = vfs_dyn.read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        vfs_dyn.write(&victim, &bytes).unwrap();
        vfs_dyn
            .write(Path::new("/store/notes.txt"), b"not an artifact")
            .unwrap();

        let store = mem_store(&vfs, 0);
        let s = store.stats();
        assert_eq!(s.recovered, 1);
        assert_eq!(s.quarantined, 2, "bit-flipped artifact + foreign file");
        assert_eq!(s.tmp_cleaned, 1);
        assert!(store.contains(key_of(1)));
        assert!(!store.contains(key_of(2)));
        let back = store.get(key_of(1)).expect("recovered artifact serves");
        assert_eq!(artifact_bytes(&module), artifact_bytes(&back));
        // The quarantined files are gone from disk.
        assert_eq!(vfs.file_count(), 1);
    }

    #[test]
    fn stale_schema_quarantines_on_reopen() {
        let vfs = MemVfs::new();
        let vfs_dyn: &dyn Vfs = &vfs;
        let path = PathBuf::from(format!("/store/{}.{ARTIFACT_EXT}", key_of(9)));
        let old = record::encode(
            STORE_SCHEMA_VERSION.wrapping_add(1),
            b"payload from the future",
        );
        vfs_dyn.create_dir_all(Path::new("/store")).unwrap();
        vfs_dyn.write(&path, &old).unwrap();
        let store = mem_store(&vfs, 0);
        let s = store.stats();
        assert_eq!((s.recovered, s.quarantined), (0, 1));
        assert_eq!(vfs.file_count(), 0);
    }

    #[test]
    fn byte_budget_evicts_lru_but_keeps_newest() {
        let vfs = MemVfs::new();
        let module = compile_ok(corpus::POLYNOMIAL);
        let one = record::encode(STORE_SCHEMA_VERSION, &artifact_bytes(&module)).len() as u64;
        // Room for two artifacts, not three.
        let store = mem_store(&vfs, 2 * one + one / 2);
        store.put(key_of(1), &module).expect("put");
        store.put(key_of(2), &module).expect("put");
        assert!(store.get(key_of(1)).is_some(), "touch 1: now 2 is LRU");
        store.put(key_of(3), &module).expect("put");
        assert_eq!(store.stats().evictions, 1);
        assert!(store.contains(key_of(1)));
        assert!(!store.contains(key_of(2)));
        assert!(store.contains(key_of(3)));
        // A budget smaller than one artifact still keeps the newest.
        let tiny = mem_store(&vfs, 1);
        assert_eq!(tiny.len(), 1, "evicted down to the most recent");
    }

    #[test]
    fn corrupt_read_quarantines_instead_of_serving() {
        let vfs = MemVfs::new();
        let store = mem_store(&vfs, 0);
        let module = compile_ok(corpus::POLYNOMIAL);
        store.put(key_of(1), &module).expect("put");
        let path = PathBuf::from(format!("/store/{}.{ARTIFACT_EXT}", key_of(1)));
        let vfs_dyn: &dyn Vfs = &vfs;
        let mut bytes = vfs_dyn.read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        vfs_dyn.write(&path, &bytes).unwrap();
        assert!(store.get(key_of(1)).is_none(), "corrupt never served");
        let s = store.stats();
        assert_eq!(s.quarantined, 1);
        assert!(!store.contains(key_of(1)));
        assert_eq!(vfs.file_count(), 0);
    }

    #[test]
    fn tiered_lookup_memory_then_disk_then_compile() {
        let vfs = MemVfs::new();
        let compiles = AtomicUsize::new(0);
        let key = key_of(7);
        let run = |t: &TieredCache| {
            t.get_or_compile(key, || {
                compiles.fetch_add(1, Ordering::SeqCst);
                Ok(compile_ok(corpus::POLYNOMIAL))
            })
        };

        let t = tiered(&vfs);
        let (r, o) = run(&t);
        assert!(r.is_ok());
        assert_eq!(o, TieredOutcome::Compiled);
        let (_, o) = run(&t);
        assert_eq!(o, TieredOutcome::MemoryHit);
        assert_eq!(compiles.load(Ordering::SeqCst), 1);

        // "Restart": fresh memory tier over the same disk tree.
        let t2 = tiered(&vfs);
        let (r, o) = run(&t2);
        assert!(r.is_ok());
        assert_eq!(o, TieredOutcome::DiskHit, "warm restart skips compile");
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        // And the disk hit was promoted into memory.
        let (_, o) = run(&t2);
        assert_eq!(o, TieredOutcome::MemoryHit);
        assert!(o.served_without_compile());
    }

    #[test]
    fn tiered_negative_results_stay_memory_only() {
        let vfs = MemVfs::new();
        let t = tiered(&vfs);
        let key = key_of(8);
        let fail = || {
            Err(CompileFailure::Diagnostics(
                Session::new(CompileOptions::default())
                    .compile("module broken")
                    .expect_err("rejects"),
            ))
        };
        let (r, o) = t.get_or_compile(key, fail);
        assert!(r.is_err());
        assert_eq!(o, TieredOutcome::Compiled);
        let (r, o) = t.get_or_compile(key, fail);
        assert!(r.is_err());
        assert_eq!(o, TieredOutcome::NegativeHit);
        assert!(t.disk().expect("disk tier").is_empty());
        // A restart forgets the negative entry: it compiles again.
        let t2 = tiered(&vfs);
        let (_, o) = t2.get_or_compile(key, fail);
        assert_eq!(o, TieredOutcome::Compiled);
    }

    #[test]
    fn clear_tiers_reports_both_tiers() {
        let vfs = MemVfs::new();
        let t = tiered(&vfs);
        let (r, _) = t.get_or_compile(key_of(3), || Ok(compile_ok(corpus::POLYNOMIAL)));
        assert!(r.is_ok());
        let report = t.clear_tiers();
        assert_eq!(report.memory_entries, 1);
        assert!(report.memory_bytes > 0);
        assert_eq!(report.disk_entries, 1);
        assert!(report.disk_bytes > 0);
        assert_eq!(t.memory().len(), 0);
        assert!(t.disk().expect("disk tier").is_empty());
        let stats: CacheStats = t.memory().stats();
        assert_eq!(stats.resident_bytes, 0);
    }

    #[test]
    fn key_file_name_parsing_is_strict() {
        let key = ContentKey {
            lo: 0x0123_4567_89ab_cdef,
            hi: 0xfedc_ba98_7654_3210,
        };
        let name = format!("{key}.{ARTIFACT_EXT}");
        assert_eq!(key_from_file_name(&name), Some(key));
        assert_eq!(key_from_file_name("short.wart"), None);
        assert_eq!(key_from_file_name("notes.txt"), None);
        let bad = format!("{}z.{ARTIFACT_EXT}", &name[..31]);
        assert_eq!(key_from_file_name(&bad), None);
    }
}
