//! Hard-isolation execution tier: run one untrusted compile (and its
//! serving-path validation) in a re-exec'd child process.
//!
//! Cooperative cancellation and the supervisor's heartbeat watch
//! contain *most* misbehaviour, but a job that wedges a worker has
//! already proven it ignores every in-process control. The escalation
//! ladder's second rung re-runs such a job in a sacrificial child
//! process — the same binary, re-executed with [`CHILD_ENV`] set —
//! which the parent can kill with a real `SIGKILL` no matter what the
//! job does. The parent and child speak the crate's wire codec
//! ([`warp_common::wire`]) over stdin/stdout:
//!
//! ```text
//! parent                               child (same exe, CHILD_ENV=1)
//!   spawn ───────────────────────────►  maybe_run_child()
//!   write to_bytes(IsolateRequest)  ─►  read stdin to EOF, decode
//!   close stdin                         compile + validate backend
//!   poll try_wait() under timeout   ◄─  write to_bytes(IsolateVerdict)
//!   (timeout → SIGKILL)                 exit 0
//! ```
//!
//! The child never gets a second request: one process, one job, one
//! verdict. A child that dies, hangs (killed at the parent's real-time
//! timeout), or writes garbage is reported as an [`IsolateError`] —
//! the caller treats all three as a failed probe and moves to the
//! ladder's last rung (the circuit breaker quarantines the name).
//!
//! Both service binaries (`w2cd`, `wserve`) call [`maybe_run_child`]
//! first thing in `main`, so [`run_isolated`]'s default of
//! `current_exe()` re-execs whichever daemon is running. Tests point
//! it at an explicitly built binary instead.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use warp_common::{wire, CancelToken, ManualClock};
use warp_common::{wire_enum, wire_struct};

use crate::{audit, CompileFailure, CompileOptions, ExecBackend, Session, SessionCtrl};

/// Environment variable that switches a re-exec'd binary into
/// single-request child mode (see [`maybe_run_child`]).
pub const CHILD_ENV: &str = "W2_ISOLATE_CHILD";

/// Fixed seed for the serving-path smoke inputs, shared by the
/// in-process and isolated validators so both tiers exercise the same
/// data.
pub const VALIDATE_SEED: u64 = 0x5eed_cafe;

/// One job shipped to an isolated child: the source and budgets plus
/// the chaos toggles the soak harness uses to make the child
/// misbehave on purpose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IsolateRequest {
    /// Job name (diagnostics only; the child does not consult the
    /// breaker).
    pub name: String,
    /// W2 source text.
    pub source: String,
    /// Validate the native serving path (with sim fallback) after
    /// compiling; `false` = compile only.
    pub native: bool,
    /// [`SessionCtrl::skew_max_events`].
    pub skew_max_events: u64,
    /// [`SessionCtrl::max_cell_cycles`].
    pub max_cell_cycles: u64,
    /// [`SessionCtrl::max_source_bytes`].
    pub max_source_bytes: u64,
    /// Chaos: spin forever instead of working — the parent's kill
    /// timeout is the only way out. Exercises the `SIGKILL` rung.
    pub chaos_spin: bool,
    /// Chaos: report the native serving path as failed, forcing the
    /// sim fallback.
    pub chaos_native: bool,
}

wire_struct!(IsolateRequest {
    name,
    source,
    native,
    skew_max_events,
    max_cell_cycles,
    max_source_bytes,
    chaos_spin,
    chaos_native,
});

/// The child's answer to one [`IsolateRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsolateVerdict {
    /// Compile (and validation, if requested) succeeded.
    Served {
        /// The skew analysis degraded to conservative bounds.
        degraded: bool,
        /// The native serving path failed and the sim fallback served
        /// the validation instead.
        fell_back: bool,
    },
    /// The compile (or both serving paths) failed deterministically.
    Failed {
        /// `true` for budget/cancellation interruptions (retryable),
        /// `false` for program rejections.
        transient: bool,
        /// Rendered failure, for the parent's diagnostic.
        rendered: String,
    },
    /// The job panicked inside the child (contained there).
    Panicked {
        /// Rendered panic payload.
        what: String,
    },
}

wire_enum!(IsolateVerdict {
    0 => Served { degraded, fell_back },
    1 => Failed { transient, rendered },
    2 => Panicked { what },
});

/// Why an isolated execution produced no verdict. All variants mean
/// the probe failed; they differ only in the story the diagnostic
/// tells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsolateError {
    /// The child could not be spawned or spoken to.
    Io(String),
    /// The child exited without a success status (crash, abort,
    /// signal).
    Died(String),
    /// The child outlived the real-time budget and was `SIGKILL`ed.
    TimedOut {
        /// How long the parent waited before killing it.
        waited_ms: u64,
    },
    /// The child exited cleanly but its response did not decode.
    Garbled(String),
}

impl std::fmt::Display for IsolateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolateError::Io(e) => write!(f, "cannot run isolated child: {e}"),
            IsolateError::Died(status) => write!(f, "isolated child died ({status})"),
            IsolateError::TimedOut { waited_ms } => {
                write!(f, "isolated child unresponsive for {waited_ms} ms; killed")
            }
            IsolateError::Garbled(e) => write!(f, "isolated child wrote a garbled verdict: {e}"),
        }
    }
}

/// Child-mode entry point. Call this first in `main` of any binary
/// that may be used as an isolation host: when [`CHILD_ENV`] is set it
/// serves exactly one request from stdin, writes the verdict to
/// stdout, and exits — it never returns. When the variable is absent
/// it is a no-op.
pub fn maybe_run_child() {
    if std::env::var_os(CHILD_ENV).is_none() {
        return;
    }
    let mut bytes = Vec::new();
    if std::io::stdin().read_to_end(&mut bytes).is_err() {
        std::process::exit(3);
    }
    let req: IsolateRequest = match wire::from_bytes(&bytes) {
        Ok(r) => r,
        Err(_) => std::process::exit(3),
    };
    if req.chaos_spin {
        // Model a hard wedge: ignore everything until the parent's
        // SIGKILL arrives.
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    let verdict = execute_request(&req);
    let out = wire::to_bytes(&verdict);
    let mut stdout = std::io::stdout();
    let _ = stdout.write_all(&out);
    let _ = stdout.flush();
    std::process::exit(0);
}

/// Runs one request to a verdict in-process, with panics contained.
/// This is the child's work loop, exposed so tests can check the
/// compile/validate/fallback logic without spawning processes.
pub fn execute_request(req: &IsolateRequest) -> IsolateVerdict {
    let result = std::panic::catch_unwind(|| run_request(req));
    match result {
        Ok(v) => v,
        Err(payload) => IsolateVerdict::Panicked {
            what: panic_message(&payload),
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn run_request(req: &IsolateRequest) -> IsolateVerdict {
    // The parent's kill timeout is the real budget; the child itself
    // compiles un-deadlined on an inert token.
    let ctrl = SessionCtrl {
        cancel: CancelToken::new(Arc::new(ManualClock::new(0))),
        skew_max_events: req.skew_max_events,
        max_cell_cycles: req.max_cell_cycles,
        max_source_bytes: req.max_source_bytes,
        backend: if req.native {
            ExecBackend::Native
        } else {
            ExecBackend::Sim
        },
        ..SessionCtrl::default()
    };
    let module = match Session::new(CompileOptions::default())
        .with_ctrl(ctrl)
        .try_compile(&req.source)
    {
        Ok(m) => m,
        Err(failure) => {
            return IsolateVerdict::Failed {
                transient: matches!(failure, CompileFailure::Interrupted { .. }),
                rendered: failure.to_string(),
            }
        }
    };
    let degraded = module.skew.degraded;
    if !req.native {
        return IsolateVerdict::Served {
            degraded,
            fell_back: false,
        };
    }
    let owned = audit::seeded_inputs(&module, VALIDATE_SEED);
    let inputs: Vec<(&str, &[f32])> = owned
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();
    let native_err = if req.chaos_native {
        Some("chaos: injected native fault".to_owned())
    } else {
        match module.run_native(&inputs, &warp_native::NativeOptions::default()) {
            Ok(_) => None,
            Err(e) => Some(e.to_string()),
        }
    };
    match native_err {
        None => IsolateVerdict::Served {
            degraded,
            fell_back: false,
        },
        Some(native) => match module.run(&inputs) {
            Ok(_) => IsolateVerdict::Served {
                degraded,
                fell_back: true,
            },
            Err(sim) => IsolateVerdict::Failed {
                transient: false,
                rendered: format!(
                    "native serving path failed ({native}); sim fallback too ({sim})"
                ),
            },
        },
    }
}

/// Ships `req` to a freshly spawned child of `exe` (`None` =
/// `current_exe()`) and returns its verdict. The child is `SIGKILL`ed
/// — not asked — if it produces no verdict within `timeout` of real
/// time, which is the entire point of this tier: no job behaviour can
/// prevent reclamation.
pub fn run_isolated(
    exe: Option<&Path>,
    req: &IsolateRequest,
    timeout: Duration,
) -> Result<IsolateVerdict, IsolateError> {
    let exe: PathBuf = match exe {
        Some(p) => p.to_owned(),
        None => std::env::current_exe().map_err(|e| IsolateError::Io(e.to_string()))?,
    };
    let mut child = Command::new(&exe)
        .env(CHILD_ENV, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| IsolateError::Io(e.to_string()))?;
    {
        let mut stdin = child.stdin.take().expect("stdin was piped");
        // A child that dies before reading gives a broken pipe here;
        // fall through and report its exit status instead.
        let _ = stdin.write_all(&wire::to_bytes(req));
        // Dropping stdin closes it: the child's read-to-EOF completes.
    }
    let start = Instant::now();
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if start.elapsed() >= timeout {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(IsolateError::TimedOut {
                        waited_ms: start.elapsed().as_millis() as u64,
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(IsolateError::Io(e.to_string()));
            }
        }
    };
    let mut bytes = Vec::new();
    if let Some(mut stdout) = child.stdout.take() {
        let _ = stdout.read_to_end(&mut bytes);
    }
    if !status.success() {
        return Err(IsolateError::Died(status.to_string()));
    }
    wire::from_bytes(&bytes).map_err(|e| IsolateError::Garbled(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn request_and_verdict_round_trip_the_wire() {
        let req = IsolateRequest {
            name: "poly".to_owned(),
            source: corpus::POLYNOMIAL.to_owned(),
            native: true,
            skew_max_events: 1,
            max_cell_cycles: 2,
            max_source_bytes: 3,
            chaos_spin: false,
            chaos_native: true,
        };
        let back: IsolateRequest = wire::from_bytes(&wire::to_bytes(&req)).unwrap();
        assert_eq!(back, req);
        for v in [
            IsolateVerdict::Served {
                degraded: false,
                fell_back: true,
            },
            IsolateVerdict::Failed {
                transient: true,
                rendered: "why".to_owned(),
            },
            IsolateVerdict::Panicked {
                what: "boom".to_owned(),
            },
        ] {
            let back: IsolateVerdict = wire::from_bytes(&wire::to_bytes(&v)).unwrap();
            assert_eq!(back, v);
        }
    }

    fn request(name: &str, source: &str, native: bool) -> IsolateRequest {
        IsolateRequest {
            name: name.to_owned(),
            source: source.to_owned(),
            native,
            skew_max_events: 0,
            max_cell_cycles: 0,
            max_source_bytes: 0,
            chaos_spin: false,
            chaos_native: false,
        }
    }

    #[test]
    fn execute_request_compiles_and_validates() {
        let v = execute_request(&request("poly", corpus::POLYNOMIAL, true));
        assert_eq!(
            v,
            IsolateVerdict::Served {
                degraded: false,
                fell_back: false
            }
        );
    }

    #[test]
    fn execute_request_reports_rejections_as_permanent() {
        let v = execute_request(&request("bad", "module broken", false));
        let IsolateVerdict::Failed { transient, .. } = v else {
            panic!("expected Failed, got {v:?}");
        };
        assert!(!transient);
    }

    #[test]
    fn chaos_native_forces_the_sim_fallback() {
        let mut req = request("poly", corpus::POLYNOMIAL, true);
        req.chaos_native = true;
        let v = execute_request(&req);
        assert_eq!(
            v,
            IsolateVerdict::Served {
                degraded: false,
                fell_back: true
            }
        );
    }
}
