//! The always-on compile daemon: the concurrent counterpart of
//! [`CompileService`](crate::service::CompileService).
//!
//! Where `CompileService` is a *batch* engine — clients submit, then
//! an explicit `run` drains the queue — a [`CompileDaemon`] keeps a
//! [`WorkerPool`] hot: `submit` returns a job id immediately, workers
//! compile as soon as capacity allows, and clients collect their own
//! results with [`CompileDaemon::wait`]. Every compile goes through
//! the content-addressed [`CompileCache`], so repeated requests for
//! one program (the common case for a processor-array compile server)
//! are served without recompiling, and N concurrent requests for the
//! same program compile it once (single-flight).
//!
//! The daemon inherits the pool's robustness contract: bounded queue
//! with load shedding and retry-after hints, per-job deadlines and
//! pipeline budgets via [`SessionCtrl`], panic isolation, per-name
//! FIFO dispatch, and a per-name circuit breaker. A cached *negative*
//! result still feeds the breaker — a program that keeps being
//! resubmitted after a deterministic rejection is quarantined without
//! ever stampeding the pool with recompiles.
//!
//! For chaos testing, [`CompileDaemon::with_chaos_panic_marker`]
//! injects a panic into any job whose name contains the marker —
//! modelling an internal compiler error without needing a source
//! program that actually crashes the pipeline.

use std::sync::Arc;

use warp_common::{Clock, RealVfs, SystemClock, Vfs, VfsError};
use warp_service::{
    Admission, JobFailure, JobReport, JobState, JobSuccess, PoolConfig, PoolStats, ShutdownMode,
    WorkerPool,
};

use crate::cache::{cache_key, CacheConfig, CacheStats, CompileCache};
use crate::service::{classify_failure, BatchReport, ServiceConfig};
use crate::store::{ClearReport, DiskStore, StoreConfig, StoreStats, TieredCache};
use crate::{CompileFailure, CompileOptions, CompiledModule, ExecBackend, Session, SessionCtrl};

/// Configuration of a [`CompileDaemon`]: the batch service's knobs
/// (executor + pipeline budgets + worker count) plus the cache's.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DaemonConfig {
    /// Executor, pipeline-budget, and worker-count knobs.
    pub service: ServiceConfig,
    /// Compile-cache knobs (memory tier).
    pub cache: CacheConfig,
    /// Persistent artifact store (disk tier); `None` = memory-only.
    pub store: Option<StoreConfig>,
}

/// One daemon job's report. The module is shared with the cache, so a
/// hit costs an `Arc` clone, not a deep copy.
pub type DaemonReport = JobReport<Arc<CompiledModule>, CompileFailure>;

/// The always-on concurrent compile service. See the module docs.
///
/// # Examples
///
/// ```
/// use warp_compiler::{corpus, daemon::{CompileDaemon, DaemonConfig}, CompileOptions};
/// use warp_service::ShutdownMode;
///
/// let daemon = CompileDaemon::with_system_clock(
///     CompileOptions::default(),
///     DaemonConfig::default(),
/// );
/// let id = daemon.submit("polynomial", corpus::POLYNOMIAL).id().unwrap();
/// let reports = daemon.wait(&[id]);
/// assert!(reports[0].outcome.is_success());
/// // The same source again: served from the cache.
/// let id2 = daemon.submit("polynomial-again", corpus::POLYNOMIAL).id().unwrap();
/// assert!(daemon.wait(&[id2])[0].outcome.is_success());
/// assert_eq!(daemon.cache_stats().hits, 1);
/// daemon.shutdown(ShutdownMode::Drain);
/// ```
pub struct CompileDaemon {
    opts: CompileOptions,
    config: DaemonConfig,
    pool: WorkerPool<Arc<CompiledModule>, CompileFailure>,
    cache: Arc<TieredCache>,
    /// Disk-tier counters snapshotted right after the recovery scan
    /// (recovered/quarantined/tmp-cleaned), for the warm-start banner.
    warm_start: Option<StoreStats>,
    /// Why the disk tier is absent despite being configured; the
    /// daemon degrades to memory-only rather than refusing to start.
    store_error: Option<VfsError>,
    chaos_panic_marker: Option<String>,
}

impl CompileDaemon {
    /// A daemon over an injectable clock, with the disk tier (if
    /// configured) on the real filesystem. Workers spawn immediately.
    pub fn new(opts: CompileOptions, config: DaemonConfig, clock: Arc<dyn Clock>) -> CompileDaemon {
        CompileDaemon::with_vfs(opts, config, clock, Arc::new(RealVfs))
    }

    /// A daemon whose disk tier lives on an injectable [`Vfs`] — the
    /// crash soak runs this over a fault-injecting in-memory tree. If
    /// the store fails to open (directory uncreatable/unlistable) the
    /// daemon starts memory-only and reports the error via
    /// [`CompileDaemon::store_error`].
    pub fn with_vfs(
        opts: CompileOptions,
        config: DaemonConfig,
        clock: Arc<dyn Clock>,
        vfs: Arc<dyn Vfs>,
    ) -> CompileDaemon {
        let pool = WorkerPool::new(
            PoolConfig {
                exec: config.service.exec.clone(),
                workers: config.service.workers,
            },
            clock.clone(),
        );
        let mem = CompileCache::new(config.cache, clock);
        let (disk, warm_start, store_error) = match &config.store {
            None => (None, None, None),
            Some(sc) => match DiskStore::open(vfs, sc.clone()) {
                Ok(store) => {
                    let warm = store.stats();
                    (Some(store), Some(warm), None)
                }
                Err(e) => (None, None, Some(e)),
            },
        };
        let cache = Arc::new(TieredCache::new(mem, disk));
        CompileDaemon {
            opts,
            config,
            pool,
            cache,
            warm_start,
            store_error,
            chaos_panic_marker: None,
        }
    }

    /// A daemon over the real clock (ticks are microseconds).
    pub fn with_system_clock(opts: CompileOptions, config: DaemonConfig) -> CompileDaemon {
        CompileDaemon::new(opts, config, Arc::new(SystemClock::new()))
    }

    /// Chaos hook: any job whose name contains `marker` panics instead
    /// of compiling, modelling an internal compiler error. Set before
    /// submitting; used by the soak harness.
    pub fn with_chaos_panic_marker(mut self, marker: impl Into<String>) -> CompileDaemon {
        self.chaos_panic_marker = Some(marker.into());
        self
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The effective worker count (after resolving `workers: 0`).
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Admission control: queues a compile job (workers pick it up
    /// immediately) or sheds it with a retry hint when the queue is at
    /// capacity.
    pub fn submit(&self, name: impl Into<String>, source: impl Into<String>) -> Admission {
        self.submit_with_backend(name, source, ExecBackend::default())
    }

    /// As [`CompileDaemon::submit`], with the serving backend recorded
    /// on the job's [`SessionCtrl`] — and therefore in its cache key,
    /// so sim- and native-serving artifacts never alias
    /// (`w2cd`'s `submit NAME FILE.w2 [sim|native]`).
    pub fn submit_with_backend(
        &self,
        name: impl Into<String>,
        source: impl Into<String>,
        backend: ExecBackend,
    ) -> Admission {
        let source = source.into();
        let opts = self.opts.clone();
        let cache = self.cache.clone();
        let chaos = self.chaos_panic_marker.clone();
        let skew_max_events = self.config.service.skew_max_events;
        let max_cell_cycles = self.config.service.max_cell_cycles;
        let max_source_bytes = self.config.service.max_source_bytes;
        self.pool.submit(name, move |ctx| {
            if let Some(marker) = &chaos {
                if ctx.name.contains(marker.as_str()) {
                    panic!("chaos: injected panic in `{}`", ctx.name);
                }
            }
            let ctrl = SessionCtrl {
                cancel: ctx.cancel.clone(),
                skew_max_events,
                max_cell_cycles,
                max_source_bytes,
                backend,
                ..SessionCtrl::default()
            };
            let key = cache_key(&source, &opts, &ctrl);
            let (result, _provenance) = cache.get_or_compile(key, || {
                Session::new(opts.clone())
                    .with_ctrl(ctrl.clone())
                    .try_compile(&source)
            });
            match result {
                Ok(module) => {
                    let degraded = module.skew.degraded;
                    Ok(JobSuccess {
                        value: module,
                        degraded,
                    })
                }
                Err(failure) => Err(JobFailure {
                    kind: classify_failure(&failure),
                    error: failure,
                }),
            }
        })
    }

    /// Blocks until the given jobs finish and takes their reports (in
    /// id order, each delivered exactly once).
    pub fn wait(&self, ids: &[usize]) -> Vec<DaemonReport> {
        self.pool.wait(ids)
    }

    /// Where job `id` currently is.
    pub fn state_of(&self, id: usize) -> Option<JobState> {
        self.pool.state_of(id)
    }

    /// `(id, name, state)` for every job still in the system.
    pub fn jobs_in_flight(&self) -> Vec<(usize, String, JobState)> {
        self.pool.jobs_in_flight()
    }

    /// Jobs currently queued (excludes running).
    pub fn queue_len(&self) -> usize {
        self.pool.queue_len()
    }

    /// Jobs currently executing.
    pub fn running_len(&self) -> usize {
        self.pool.running_len()
    }

    /// Pool counters (admissions, sheds, completions, …).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Memory-tier cache counters (hits, misses, evictions, …).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.memory().stats()
    }

    /// Disk-tier counters, when the store is open.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.cache.disk().map(DiskStore::stats)
    }

    /// The disk tier's counters as they stood right after the opening
    /// recovery scan (entries recovered, corrupt quarantined, `.tmp`
    /// leftovers cleaned) — the warm-start banner's numbers.
    pub fn warm_start(&self) -> Option<StoreStats> {
        self.warm_start
    }

    /// Why the configured disk tier failed to open, if it did; the
    /// daemon is running memory-only in that case.
    pub fn store_error(&self) -> Option<&VfsError> {
        self.store_error.as_ref()
    }

    /// The tiered cache itself (soak harnesses drive it directly).
    pub fn cache(&self) -> &TieredCache {
        &self.cache
    }

    /// Drops every entry in both tiers (operator `cache clear`),
    /// reporting what each reclaimed.
    pub fn clear_cache(&self) -> ClearReport {
        self.cache.clear_tiers()
    }

    /// Names quarantined by the circuit breaker.
    pub fn quarantined_names(&self) -> Vec<String> {
        self.pool.quarantined_names()
    }

    /// Names with breaker history (tripped or warming), with counts.
    pub fn breaker_history(&self) -> Vec<(String, u32)> {
        self.pool.breaker_history()
    }

    /// `true` once the breaker has quarantined `name`.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.pool.is_quarantined(name)
    }

    /// Clears breaker history for `name`; `false` when there was none.
    pub fn reset_breaker(&self, name: &str) -> bool {
        self.pool.reset_breaker(name)
    }

    /// Gates dispatch (lockstep drivers); see [`WorkerPool::pause`].
    pub fn pause(&self) {
        self.pool.pause();
    }

    /// Reopens dispatch after [`CompileDaemon::pause`].
    pub fn resume(&self) {
        self.pool.resume();
    }

    /// Stops the pool and joins the workers; see
    /// [`WorkerPool::shutdown`].
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.pool.shutdown(mode);
    }
}

/// Repackages daemon reports as a batch [`BatchReport`] so the daemon
/// front-ends reuse the existing summary table and health verdict.
/// Modules are deep-cloned out of their cache `Arc`s — fine for
/// operator-facing summaries, wrong for a hot serving path.
pub fn batch_report(reports: Vec<DaemonReport>, quarantined: Vec<String>) -> BatchReport {
    use warp_service::JobOutcome;
    let jobs = reports
        .into_iter()
        .map(|r| JobReport {
            id: r.id,
            name: r.name,
            outcome: match r.outcome {
                JobOutcome::Success(s) => JobOutcome::Success(JobSuccess {
                    value: (*s.value).clone(),
                    degraded: s.degraded,
                }),
                JobOutcome::Failed {
                    kind,
                    error,
                    attempts,
                } => JobOutcome::Failed {
                    kind,
                    error,
                    attempts,
                },
                JobOutcome::TimedOut { reason, attempts } => {
                    JobOutcome::TimedOut { reason, attempts }
                }
                JobOutcome::Panicked { what, attempts } => JobOutcome::Panicked { what, attempts },
                JobOutcome::Quarantined {
                    consecutive_failures,
                } => JobOutcome::Quarantined {
                    consecutive_failures,
                },
            },
            wall_ticks: r.wall_ticks,
        })
        .collect();
    BatchReport { jobs, quarantined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use warp_common::ManualClock;
    use warp_service::ExecutorConfig;

    fn daemon(workers: usize, exec: ExecutorConfig) -> CompileDaemon {
        CompileDaemon::new(
            CompileOptions::default(),
            DaemonConfig {
                service: ServiceConfig {
                    exec,
                    workers,
                    ..ServiceConfig::default()
                },
                cache: CacheConfig {
                    byte_budget: 0,
                    negative_ttl_ticks: 1_000_000,
                },
                store: None,
            },
            Arc::new(ManualClock::new(0)),
        )
    }

    #[test]
    fn concurrent_submissions_compile_and_cache() {
        let d = daemon(4, ExecutorConfig::default());
        let mut ids = Vec::new();
        for round in 0..3 {
            for (name, src) in corpus::TABLE_7_1 {
                let id = d
                    .submit(format!("{name}#{round}"), src)
                    .id()
                    .expect("accepted");
                ids.push(id);
            }
        }
        let reports = d.wait(&ids);
        assert_eq!(reports.len(), 15);
        assert!(reports.iter().all(|r| r.outcome.is_success()));
        let cs = d.cache_stats();
        // 5 distinct programs, 15 lookups: at most 5 compiles; the rest
        // hit or coalesced on the in-flight compile.
        assert_eq!(cs.lookups, 15);
        assert!(cs.misses <= 5, "misses={}", cs.misses);
        assert!(cs.hits + cs.coalesced >= 10);
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn negative_cache_still_feeds_the_breaker() {
        let d = daemon(
            2,
            ExecutorConfig {
                breaker_threshold: 3,
                ..ExecutorConfig::default()
            },
        );
        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(d.submit("broken", "module broken").id().expect("accepted"));
        }
        let reports = d.wait(&ids);
        let labels: Vec<&str> = reports.iter().map(|r| r.outcome.label()).collect();
        assert_eq!(
            labels,
            ["failed", "failed", "failed", "quarantined", "quarantined"]
        );
        // Only the first failure compiled; the rest were negative hits
        // or quarantined before reaching the cache.
        let cs = d.cache_stats();
        assert_eq!(cs.misses, 1);
        assert_eq!(cs.negative_hits, 2);
        assert!(d.is_quarantined("broken"));
        assert!(d.reset_breaker("broken"));
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn chaos_marker_panics_are_contained() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let d = daemon(2, ExecutorConfig::default()).with_chaos_panic_marker("!boom");
        let bomb = d
            .submit("poly!boom", corpus::POLYNOMIAL)
            .id()
            .expect("accepted");
        let ok = d.submit("poly", corpus::POLYNOMIAL).id().expect("accepted");
        let reports = d.wait(&[bomb, ok]);
        std::panic::set_hook(hook);
        assert_eq!(reports[0].outcome.label(), "panicked");
        assert!(reports[1].outcome.is_success());
        assert_eq!(d.pool_stats().panicked, 1);
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn batch_report_preserves_counts_and_summary_shape() {
        let d = daemon(2, ExecutorConfig::default());
        let ids: Vec<usize> = corpus::TABLE_7_1
            .iter()
            .map(|(name, src)| d.submit(*name, *src).id().expect("accepted"))
            .collect();
        let reports = d.wait(&ids);
        let batch = batch_report(reports, d.quarantined_names());
        assert_eq!(batch.succeeded(), 5);
        assert!(batch.is_healthy());
        assert!(batch
            .summary()
            .starts_with("batch: 5 ok (0 degraded), 0 failed, 0 timed out, 0 quarantined"));
        d.shutdown(ShutdownMode::Drain);
    }
}
