//! The always-on compile daemon: the concurrent counterpart of
//! [`CompileService`](crate::service::CompileService).
//!
//! Where `CompileService` is a *batch* engine — clients submit, then
//! an explicit `run` drains the queue — a [`CompileDaemon`] keeps a
//! [`WorkerPool`] hot: `submit` returns a job id immediately, workers
//! compile as soon as capacity allows, and clients collect their own
//! results with [`CompileDaemon::wait`]. Every compile goes through
//! the content-addressed [`CompileCache`], so repeated requests for
//! one program (the common case for a processor-array compile server)
//! are served without recompiling, and N concurrent requests for the
//! same program compile it once (single-flight).
//!
//! The daemon inherits the pool's robustness contract: bounded queue
//! with load shedding and retry-after hints, per-job deadlines and
//! pipeline budgets via [`SessionCtrl`], panic isolation, per-name
//! FIFO dispatch, and a per-name circuit breaker. A cached *negative*
//! result still feeds the breaker — a program that keeps being
//! resubmitted after a deterministic rejection is quarantined without
//! ever stampeding the pool with recompiles.
//!
//! For chaos testing, [`CompileDaemon::with_chaos_panic_marker`]
//! injects a panic into any job whose name contains the marker —
//! modelling an internal compiler error without needing a source
//! program that actually crashes the pipeline.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use warp_common::{Clock, Diagnostic, DiagnosticBag, RealVfs, SystemClock, Vfs, VfsError};
use warp_service::{
    Admission, FailureKind, JobFailure, JobReport, JobState, JobSuccess, PoolConfig, PoolStats,
    ShutdownMode, WorkerPool,
};

use crate::cache::{cache_key, CacheConfig, CacheStats, CompileCache};
use crate::isolate::{self, IsolateRequest, IsolateVerdict, VALIDATE_SEED};
use crate::service::{classify_failure, BatchReport, ServiceConfig};
use crate::store::{ClearReport, DiskStore, StoreConfig, StoreStats, TieredCache};
use crate::{
    audit, CompileFailure, CompileOptions, CompiledModule, ExecBackend, NativeRunError, Session,
    SessionCtrl,
};

/// Configuration of a [`CompileDaemon`]: the batch service's knobs
/// (executor + pipeline budgets + worker count) plus the cache's.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DaemonConfig {
    /// Executor, pipeline-budget, and worker-count knobs.
    pub service: ServiceConfig,
    /// Compile-cache knobs (memory tier).
    pub cache: CacheConfig,
    /// Persistent artifact store (disk tier); `None` = memory-only.
    pub store: Option<StoreConfig>,
}

/// One daemon job's report. The module is shared with the cache, so a
/// hit costs an `Arc` clone, not a deep copy.
pub type DaemonReport = JobReport<Arc<CompiledModule>, CompileFailure>;

/// Counters for the native serving path and its automatic sim
/// fallback, snapshotted by [`CompileDaemon::native_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NativeServeStats {
    /// Native validations attempted (breaker closed).
    pub attempts: u64,
    /// Native validations that failed (structured error or chaos).
    pub failures: u64,
    /// Jobs transparently served by the sim fallback after a native
    /// failure — the `degraded_native` count.
    pub fallbacks: u64,
    /// Jobs routed straight to sim because the native breaker was
    /// open (these also count as fallbacks).
    pub breaker_skips: u64,
    /// Consecutive native failures; at the breaker threshold the
    /// native path is skipped until a reset.
    pub consecutive_failures: u32,
}

/// The per-backend circuit breaker guarding the native serving path.
struct NativeGate(Mutex<NativeServeStats>);

impl NativeGate {
    fn lock(&self) -> MutexGuard<'_, NativeServeStats> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn breaker_open(&self, threshold: u32) -> bool {
        threshold != 0 && self.lock().consecutive_failures >= threshold
    }
}

/// Chaos hook state for wedge injection: which names spin, and the
/// harness-owned latch that eventually lets the zombies unwind.
struct ChaosSpin {
    /// Names containing this marker spin on *every* run — a
    /// reproducible hard wedge (the escalated child spins too and is
    /// killed).
    marker: Option<String>,
    /// Names containing this marker spin only on their *first* run —
    /// an environmental wedge the subprocess probe clears.
    once_marker: Option<String>,
    /// Set by the harness when the soak ends so detached zombie
    /// threads exit instead of burning until process death.
    release: Arc<AtomicBool>,
    fired: Mutex<BTreeSet<String>>,
}

impl ChaosSpin {
    /// `true` when this in-process run of `name` must spin.
    fn should_spin(&self, name: &str) -> bool {
        if self.spins_persistently(name) {
            return true;
        }
        if self
            .once_marker
            .as_deref()
            .is_some_and(|m| name.contains(m))
        {
            return self
                .fired
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(name.to_owned());
        }
        false
    }

    fn spins_persistently(&self, name: &str) -> bool {
        self.marker.as_deref().is_some_and(|m| name.contains(m))
    }
}

/// Wraps a serving-layer failure (isolation, validation) as a
/// [`CompileFailure`] so it flows through the existing report
/// taxonomy.
fn synthetic_failure(message: String) -> CompileFailure {
    let mut bag = DiagnosticBag::new();
    bag.push(Diagnostic::error_global(message));
    CompileFailure::Diagnostics(bag)
}

/// The always-on concurrent compile service. See the module docs.
///
/// # Examples
///
/// ```
/// use warp_compiler::{corpus, daemon::{CompileDaemon, DaemonConfig}, CompileOptions};
/// use warp_service::ShutdownMode;
///
/// let daemon = CompileDaemon::with_system_clock(
///     CompileOptions::default(),
///     DaemonConfig::default(),
/// );
/// let id = daemon.submit("polynomial", corpus::POLYNOMIAL).id().unwrap();
/// let reports = daemon.wait(&[id]);
/// assert!(reports[0].outcome.is_success());
/// // The same source again: served from the cache.
/// let id2 = daemon.submit("polynomial-again", corpus::POLYNOMIAL).id().unwrap();
/// assert!(daemon.wait(&[id2])[0].outcome.is_success());
/// assert_eq!(daemon.cache_stats().hits, 1);
/// daemon.shutdown(ShutdownMode::Drain);
/// ```
pub struct CompileDaemon {
    opts: CompileOptions,
    config: DaemonConfig,
    pool: WorkerPool<Arc<CompiledModule>, CompileFailure>,
    cache: Arc<TieredCache>,
    /// Disk-tier counters snapshotted right after the recovery scan
    /// (recovered/quarantined/tmp-cleaned), for the warm-start banner.
    warm_start: Option<StoreStats>,
    /// Why the disk tier is absent despite being configured; the
    /// daemon degrades to memory-only rather than refusing to start.
    store_error: Option<VfsError>,
    chaos_panic_marker: Option<String>,
    chaos_spin: Option<Arc<ChaosSpin>>,
    chaos_native_marker: Option<String>,
    native_gate: Arc<NativeGate>,
    /// Host binary for the hard-isolation tier; `None` re-execs
    /// `current_exe()` (correct for the service binaries, which hook
    /// [`isolate::maybe_run_child`]).
    isolate_exe: Option<PathBuf>,
    /// Real-time budget per isolated child before it is `SIGKILL`ed.
    isolate_timeout: Duration,
}

impl CompileDaemon {
    /// A daemon over an injectable clock, with the disk tier (if
    /// configured) on the real filesystem. Workers spawn immediately.
    pub fn new(opts: CompileOptions, config: DaemonConfig, clock: Arc<dyn Clock>) -> CompileDaemon {
        CompileDaemon::with_vfs(opts, config, clock, Arc::new(RealVfs))
    }

    /// A daemon whose disk tier lives on an injectable [`Vfs`] — the
    /// crash soak runs this over a fault-injecting in-memory tree. If
    /// the store fails to open (directory uncreatable/unlistable) the
    /// daemon starts memory-only and reports the error via
    /// [`CompileDaemon::store_error`].
    pub fn with_vfs(
        opts: CompileOptions,
        config: DaemonConfig,
        clock: Arc<dyn Clock>,
        vfs: Arc<dyn Vfs>,
    ) -> CompileDaemon {
        let pool = WorkerPool::new(
            PoolConfig {
                exec: config.service.exec.clone(),
                workers: config.service.workers,
                supervise_grace_ticks: config.service.supervise_grace_ticks,
                supervise_interval_ms: config.service.supervise_interval_ms,
            },
            clock.clone(),
        );
        let mem = CompileCache::new(config.cache, clock);
        let (disk, warm_start, store_error) = match &config.store {
            None => (None, None, None),
            Some(sc) => match DiskStore::open(vfs, sc.clone()) {
                Ok(store) => {
                    let warm = store.stats();
                    (Some(store), Some(warm), None)
                }
                Err(e) => (None, None, Some(e)),
            },
        };
        let cache = Arc::new(TieredCache::new(mem, disk));
        CompileDaemon {
            opts,
            config,
            pool,
            cache,
            warm_start,
            store_error,
            chaos_panic_marker: None,
            chaos_spin: None,
            chaos_native_marker: None,
            native_gate: Arc::new(NativeGate(Mutex::new(NativeServeStats::default()))),
            isolate_exe: None,
            isolate_timeout: Duration::from_secs(10),
        }
    }

    /// A daemon over the real clock (ticks are microseconds).
    pub fn with_system_clock(opts: CompileOptions, config: DaemonConfig) -> CompileDaemon {
        CompileDaemon::new(opts, config, Arc::new(SystemClock::new()))
    }

    /// Chaos hook: any job whose name contains `marker` panics instead
    /// of compiling, modelling an internal compiler error. Set before
    /// submitting; used by the soak harness.
    pub fn with_chaos_panic_marker(mut self, marker: impl Into<String>) -> CompileDaemon {
        self.chaos_panic_marker = Some(marker.into());
        self
    }

    /// Chaos hook: any job whose name contains `marker` spins without
    /// polling its cancel token — a reproducible hard wedge (its
    /// escalated subprocess retry spins too, proving the `SIGKILL`
    /// rung). `release` is the harness latch that lets abandoned
    /// zombie threads unwind at soak end. Set before submitting.
    pub fn with_chaos_spin_marker(
        mut self,
        marker: impl Into<String>,
        release: Arc<AtomicBool>,
    ) -> CompileDaemon {
        let spin = self.chaos_spin_mut(release);
        spin.marker = Some(marker.into());
        self
    }

    /// As [`CompileDaemon::with_chaos_spin_marker`], but the wedge
    /// fires only on the *first* run of each matching name — an
    /// environmental hang whose subprocess probe (and therefore its
    /// resubmission) succeeds.
    pub fn with_chaos_spin_once_marker(
        mut self,
        marker: impl Into<String>,
        release: Arc<AtomicBool>,
    ) -> CompileDaemon {
        let spin = self.chaos_spin_mut(release);
        spin.once_marker = Some(marker.into());
        self
    }

    fn chaos_spin_mut(&mut self, release: Arc<AtomicBool>) -> &mut ChaosSpin {
        let spin = self.chaos_spin.get_or_insert_with(|| {
            Arc::new(ChaosSpin {
                marker: None,
                once_marker: None,
                release,
                fired: Mutex::new(BTreeSet::new()),
            })
        });
        Arc::get_mut(spin).expect("chaos hooks are configured before any submit")
    }

    /// Chaos hook: any native-backend job whose name contains `marker`
    /// has its native serving validation fail, forcing the sim
    /// fallback. Set before submitting.
    pub fn with_chaos_native_marker(mut self, marker: impl Into<String>) -> CompileDaemon {
        self.chaos_native_marker = Some(marker.into());
        self
    }

    /// Overrides the binary re-exec'd for hard-isolated jobs (tests
    /// point this at a built service binary; the default
    /// `current_exe()` is right for the daemons themselves).
    pub fn with_isolate_exe(mut self, exe: impl Into<PathBuf>) -> CompileDaemon {
        self.isolate_exe = Some(exe.into());
        self
    }

    /// Real-time budget per isolated child before `SIGKILL` (default
    /// 10 s).
    pub fn with_isolate_timeout(mut self, timeout: Duration) -> CompileDaemon {
        self.isolate_timeout = timeout;
        self
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The effective worker count (after resolving `workers: 0`).
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Admission control: queues a compile job (workers pick it up
    /// immediately) or sheds it with a retry hint when the queue is at
    /// capacity.
    pub fn submit(&self, name: impl Into<String>, source: impl Into<String>) -> Admission {
        self.submit_with_backend(name, source, ExecBackend::default())
    }

    /// As [`CompileDaemon::submit`], with the serving backend recorded
    /// on the job's [`SessionCtrl`] — and therefore in its cache key,
    /// so sim- and native-serving artifacts never alias
    /// (`w2cd`'s `submit NAME FILE.w2 [sim|native]`).
    pub fn submit_with_backend(
        &self,
        name: impl Into<String>,
        source: impl Into<String>,
        backend: ExecBackend,
    ) -> Admission {
        let name = name.into();
        let source = source.into();
        let opts = self.opts.clone();
        let cache = self.cache.clone();
        let chaos = self.chaos_panic_marker.clone();
        let chaos_spin = self.chaos_spin.clone();
        let chaos_native = self.chaos_native_marker.clone();
        let native_gate = self.native_gate.clone();
        let breaker_threshold = self.config.service.exec.breaker_threshold;
        let skew_max_events = self.config.service.skew_max_events;
        let max_cell_cycles = self.config.service.max_cell_cycles;
        let max_source_bytes = self.config.service.max_source_bytes;
        // Escalation ladder: a name that has already wedged a worker
        // never gets a second chance in-thread — its retry is probed
        // in a SIGKILLable child first.
        let escalate = self.pool.was_wedged(&name);
        let isolate_exe = self.isolate_exe.clone();
        let isolate_timeout = self.isolate_timeout;
        self.pool.submit(name, move |ctx| {
            if let Some(marker) = &chaos {
                if ctx.name.contains(marker.as_str()) {
                    panic!("chaos: injected panic in `{}`", ctx.name);
                }
            }
            let chaos_native_hit = chaos_native
                .as_deref()
                .is_some_and(|m| ctx.name.contains(m));
            if escalate {
                let req = IsolateRequest {
                    name: ctx.name.clone(),
                    source: source.clone(),
                    native: backend == ExecBackend::Native,
                    skew_max_events,
                    max_cell_cycles,
                    max_source_bytes,
                    chaos_spin: chaos_spin
                        .as_ref()
                        .is_some_and(|s| s.spins_persistently(&ctx.name)),
                    chaos_native: chaos_native_hit,
                };
                match isolate::run_isolated(isolate_exe.as_deref(), &req, isolate_timeout) {
                    // The probe survived; whatever it concluded, the
                    // job is safe to reproduce in-process below, where
                    // the cache and the normal failure taxonomy apply.
                    Ok(IsolateVerdict::Served { .. }) | Ok(IsolateVerdict::Failed { .. }) => {}
                    Ok(IsolateVerdict::Panicked { what }) => {
                        return Err(JobFailure {
                            kind: FailureKind::Permanent,
                            error: synthetic_failure(format!(
                                "isolated probe of previously-wedged `{}` panicked: {what}",
                                ctx.name
                            )),
                        })
                    }
                    // Death, hang-and-kill, garbled output: the last
                    // rung — fail permanently so the breaker
                    // quarantines the name.
                    Err(e) => {
                        return Err(JobFailure {
                            kind: FailureKind::Permanent,
                            error: synthetic_failure(format!(
                                "hard-isolated retry of previously-wedged `{}` failed: {e}",
                                ctx.name
                            )),
                        })
                    }
                }
            } else if let Some(spin) = &chaos_spin {
                if spin.should_spin(&ctx.name) {
                    // Ignore cancellation entirely; only the harness
                    // latch (or process death) ends this.
                    while !spin.release.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
            let ctrl = SessionCtrl {
                cancel: ctx.cancel.clone(),
                skew_max_events,
                max_cell_cycles,
                max_source_bytes,
                backend,
                ..SessionCtrl::default()
            };
            let key = cache_key(&source, &opts, &ctrl);
            let (result, _provenance) = cache.get_or_compile(key, || {
                Session::new(opts.clone())
                    .with_ctrl(ctrl.clone())
                    .try_compile(&source)
            });
            match result {
                Ok(module) => {
                    let mut degraded = module.skew.degraded;
                    if backend == ExecBackend::Native {
                        match serve_native(
                            &module,
                            ctx,
                            chaos_native_hit,
                            &native_gate,
                            breaker_threshold,
                        ) {
                            Ok(fell_back) => degraded |= fell_back,
                            Err(failure) => return Err(failure),
                        }
                    }
                    Ok(JobSuccess {
                        value: module,
                        degraded,
                    })
                }
                Err(failure) => Err(JobFailure {
                    kind: classify_failure(&failure),
                    error: failure,
                }),
            }
        })
    }

    /// Blocks until the given jobs finish and takes their reports (in
    /// id order, each delivered exactly once).
    pub fn wait(&self, ids: &[usize]) -> Vec<DaemonReport> {
        self.pool.wait(ids)
    }

    /// Where job `id` currently is.
    pub fn state_of(&self, id: usize) -> Option<JobState> {
        self.pool.state_of(id)
    }

    /// `(id, name, state)` for every job still in the system.
    pub fn jobs_in_flight(&self) -> Vec<(usize, String, JobState)> {
        self.pool.jobs_in_flight()
    }

    /// Jobs currently queued (excludes running).
    pub fn queue_len(&self) -> usize {
        self.pool.queue_len()
    }

    /// Jobs currently executing.
    pub fn running_len(&self) -> usize {
        self.pool.running_len()
    }

    /// Pool counters (admissions, sheds, completions, …).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Memory-tier cache counters (hits, misses, evictions, …).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.memory().stats()
    }

    /// Disk-tier counters, when the store is open.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.cache.disk().map(DiskStore::stats)
    }

    /// The disk tier's counters as they stood right after the opening
    /// recovery scan (entries recovered, corrupt quarantined, `.tmp`
    /// leftovers cleaned) — the warm-start banner's numbers.
    pub fn warm_start(&self) -> Option<StoreStats> {
        self.warm_start
    }

    /// Why the configured disk tier failed to open, if it did; the
    /// daemon is running memory-only in that case.
    pub fn store_error(&self) -> Option<&VfsError> {
        self.store_error.as_ref()
    }

    /// The tiered cache itself (soak harnesses drive it directly).
    pub fn cache(&self) -> &TieredCache {
        &self.cache
    }

    /// Drops every entry in both tiers (operator `cache clear`),
    /// reporting what each reclaimed.
    pub fn clear_cache(&self) -> ClearReport {
        self.cache.clear_tiers()
    }

    /// Counters for the native serving path and its sim fallback.
    pub fn native_stats(&self) -> NativeServeStats {
        *self.native_gate.lock()
    }

    /// `true` while the per-backend breaker is skipping the native
    /// path (consecutive failures at or past the breaker threshold).
    pub fn native_breaker_open(&self) -> bool {
        self.native_gate
            .breaker_open(self.config.service.exec.breaker_threshold)
    }

    /// Closes the native breaker (operator override); returns `true`
    /// when it was open.
    pub fn reset_native_breaker(&self) -> bool {
        let was_open = self.native_breaker_open();
        self.native_gate.lock().consecutive_failures = 0;
        was_open
    }

    /// Runs one supervision scan synchronously; see
    /// [`WorkerPool::supervise_now`].
    pub fn supervise_now(&self) -> usize {
        self.pool.supervise_now()
    }

    /// Worker threads currently presumed live; see
    /// [`WorkerPool::live_workers`].
    pub fn live_workers(&self) -> usize {
        self.pool.live_workers()
    }

    /// Every name that has ever wedged a worker.
    pub fn wedged_names(&self) -> Vec<String> {
        self.pool.wedged_names()
    }

    /// Names quarantined by the circuit breaker.
    pub fn quarantined_names(&self) -> Vec<String> {
        self.pool.quarantined_names()
    }

    /// Names with breaker history (tripped or warming), with counts.
    pub fn breaker_history(&self) -> Vec<(String, u32)> {
        self.pool.breaker_history()
    }

    /// `true` once the breaker has quarantined `name`.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.pool.is_quarantined(name)
    }

    /// Clears breaker history for `name`; `false` when there was none.
    pub fn reset_breaker(&self, name: &str) -> bool {
        self.pool.reset_breaker(name)
    }

    /// Gates dispatch (lockstep drivers); see [`WorkerPool::pause`].
    pub fn pause(&self) {
        self.pool.pause();
    }

    /// Reopens dispatch after [`CompileDaemon::pause`].
    pub fn resume(&self) {
        self.pool.resume();
    }

    /// Stops the pool and joins the workers; see
    /// [`WorkerPool::shutdown`].
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.pool.shutdown(mode);
    }
}

/// Validates the native serving path for one freshly-served job:
/// compiles are backend-agnostic, so the daemon proves the *execution*
/// path works by running seeded smoke inputs on the native executor.
/// A native failure transparently retries the validation on the sim
/// backend (`Ok(true)` = job degraded to sim) and feeds the
/// per-backend breaker; once the breaker is open the native attempt is
/// skipped entirely until it is reset.
fn serve_native(
    module: &CompiledModule,
    ctx: &warp_service::JobCtx,
    chaos_native: bool,
    gate: &NativeGate,
    breaker_threshold: u32,
) -> Result<bool, JobFailure<CompileFailure>> {
    let owned = audit::seeded_inputs(module, VALIDATE_SEED);
    let inputs: Vec<(&str, &[f32])> = owned
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();
    if gate.breaker_open(breaker_threshold) {
        gate.lock().breaker_skips += 1;
        return match module.run(&inputs) {
            Ok(_) => {
                gate.lock().fallbacks += 1;
                Ok(true)
            }
            Err(sim) => Err(JobFailure {
                kind: FailureKind::Permanent,
                error: synthetic_failure(format!(
                    "native breaker open and sim fallback failed ({sim})"
                )),
            }),
        };
    }
    gate.lock().attempts += 1;
    let native_err = if chaos_native {
        Some("chaos: injected native fault".to_owned())
    } else {
        let native_opts = warp_native::NativeOptions {
            cancel: ctx.cancel.clone(),
            ..warp_native::NativeOptions::default()
        };
        match module.run_native(&inputs, &native_opts) {
            Ok(_) => None,
            // Cancellation/deadline during validation is the job's
            // timeout, not the backend's fault: no breaker feed, no
            // fallback.
            Err(NativeRunError::Native(warp_native::NativeError::Interrupted(reason))) => {
                return Err(JobFailure {
                    kind: FailureKind::Timeout,
                    error: synthetic_failure(format!("native validation interrupted: {reason}")),
                })
            }
            Err(e) => Some(e.to_string()),
        }
    };
    match native_err {
        None => {
            gate.lock().consecutive_failures = 0;
            Ok(false)
        }
        Some(native) => {
            {
                let mut stats = gate.lock();
                stats.failures += 1;
                stats.consecutive_failures = stats.consecutive_failures.saturating_add(1);
            }
            match module.run(&inputs) {
                Ok(_) => {
                    gate.lock().fallbacks += 1;
                    Ok(true)
                }
                Err(sim) => Err(JobFailure {
                    kind: FailureKind::Permanent,
                    error: synthetic_failure(format!(
                        "native serving path failed ({native}); sim fallback too ({sim})"
                    )),
                }),
            }
        }
    }
}

/// Repackages daemon reports as a batch [`BatchReport`] so the daemon
/// front-ends reuse the existing summary table and health verdict.
/// Modules are deep-cloned out of their cache `Arc`s — fine for
/// operator-facing summaries, wrong for a hot serving path.
pub fn batch_report(reports: Vec<DaemonReport>, quarantined: Vec<String>) -> BatchReport {
    use warp_service::JobOutcome;
    let jobs = reports
        .into_iter()
        .map(|r| JobReport {
            id: r.id,
            name: r.name,
            outcome: match r.outcome {
                JobOutcome::Success(s) => JobOutcome::Success(JobSuccess {
                    value: (*s.value).clone(),
                    degraded: s.degraded,
                }),
                JobOutcome::Failed {
                    kind,
                    error,
                    attempts,
                } => JobOutcome::Failed {
                    kind,
                    error,
                    attempts,
                },
                JobOutcome::TimedOut { reason, attempts } => {
                    JobOutcome::TimedOut { reason, attempts }
                }
                JobOutcome::Panicked { what, attempts } => JobOutcome::Panicked { what, attempts },
                JobOutcome::Quarantined {
                    consecutive_failures,
                } => JobOutcome::Quarantined {
                    consecutive_failures,
                },
                JobOutcome::Wedged { stalled_for_ticks } => {
                    JobOutcome::Wedged { stalled_for_ticks }
                }
            },
            wall_ticks: r.wall_ticks,
        })
        .collect();
    BatchReport { jobs, quarantined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use warp_common::ManualClock;
    use warp_service::{ExecutorConfig, JobOutcome};

    fn daemon(workers: usize, exec: ExecutorConfig) -> CompileDaemon {
        CompileDaemon::new(
            CompileOptions::default(),
            DaemonConfig {
                service: ServiceConfig {
                    exec,
                    workers,
                    ..ServiceConfig::default()
                },
                cache: CacheConfig {
                    byte_budget: 0,
                    negative_ttl_ticks: 1_000_000,
                },
                store: None,
            },
            Arc::new(ManualClock::new(0)),
        )
    }

    #[test]
    fn concurrent_submissions_compile_and_cache() {
        let d = daemon(4, ExecutorConfig::default());
        let mut ids = Vec::new();
        for round in 0..3 {
            for (name, src) in corpus::TABLE_7_1 {
                let id = d
                    .submit(format!("{name}#{round}"), src)
                    .id()
                    .expect("accepted");
                ids.push(id);
            }
        }
        let reports = d.wait(&ids);
        assert_eq!(reports.len(), 15);
        assert!(reports.iter().all(|r| r.outcome.is_success()));
        let cs = d.cache_stats();
        // 5 distinct programs, 15 lookups: at most 5 compiles; the rest
        // hit or coalesced on the in-flight compile.
        assert_eq!(cs.lookups, 15);
        assert!(cs.misses <= 5, "misses={}", cs.misses);
        assert!(cs.hits + cs.coalesced >= 10);
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn negative_cache_still_feeds_the_breaker() {
        let d = daemon(
            2,
            ExecutorConfig {
                breaker_threshold: 3,
                ..ExecutorConfig::default()
            },
        );
        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(d.submit("broken", "module broken").id().expect("accepted"));
        }
        let reports = d.wait(&ids);
        let labels: Vec<&str> = reports.iter().map(|r| r.outcome.label()).collect();
        assert_eq!(
            labels,
            ["failed", "failed", "failed", "quarantined", "quarantined"]
        );
        // Only the first failure compiled; the rest were negative hits
        // or quarantined before reaching the cache.
        let cs = d.cache_stats();
        assert_eq!(cs.misses, 1);
        assert_eq!(cs.negative_hits, 2);
        assert!(d.is_quarantined("broken"));
        assert!(d.reset_breaker("broken"));
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn chaos_marker_panics_are_contained() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let d = daemon(2, ExecutorConfig::default()).with_chaos_panic_marker("!boom");
        let bomb = d
            .submit("poly!boom", corpus::POLYNOMIAL)
            .id()
            .expect("accepted");
        let ok = d.submit("poly", corpus::POLYNOMIAL).id().expect("accepted");
        let reports = d.wait(&[bomb, ok]);
        std::panic::set_hook(hook);
        assert_eq!(reports[0].outcome.label(), "panicked");
        assert!(reports[1].outcome.is_success());
        assert_eq!(d.pool_stats().panicked, 1);
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn native_failure_falls_back_to_sim_and_degrades() {
        let d = daemon(2, ExecutorConfig::default()).with_chaos_native_marker("!nfault");
        let ok = d
            .submit_with_backend("poly-native", corpus::POLYNOMIAL, ExecBackend::Native)
            .id()
            .expect("accepted");
        let reports = d.wait(&[ok]);
        let JobOutcome::Success(s) = &reports[0].outcome else {
            panic!(
                "native-validated job failed: {:?}",
                reports[0].outcome.label()
            );
        };
        assert!(!s.degraded, "clean native serve is not degraded");
        let bad = d
            .submit_with_backend("poly!nfault", corpus::POLYNOMIAL, ExecBackend::Native)
            .id()
            .expect("accepted");
        let reports = d.wait(&[bad]);
        let JobOutcome::Success(s) = &reports[0].outcome else {
            panic!("fallback job failed: {:?}", reports[0].outcome.label());
        };
        assert!(s.degraded, "sim-fallback serve is degraded");
        let stats = d.native_stats();
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.breaker_skips, 0);
        assert!(!d.native_breaker_open());
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn native_breaker_opens_after_consecutive_failures_and_resets() {
        let d = daemon(
            1,
            ExecutorConfig {
                breaker_threshold: 2,
                ..ExecutorConfig::default()
            },
        )
        .with_chaos_native_marker("!nfault");
        for i in 0..2 {
            let id = d
                .submit_with_backend(
                    format!("n{i}!nfault"),
                    corpus::POLYNOMIAL,
                    ExecBackend::Native,
                )
                .id()
                .expect("accepted");
            assert!(d.wait(&[id])[0].outcome.is_success());
        }
        assert!(d.native_breaker_open(), "two consecutive native failures");
        // Open breaker: a clean native job is routed straight to sim.
        let skipped = d
            .submit_with_backend("clean", corpus::POLYNOMIAL, ExecBackend::Native)
            .id()
            .expect("accepted");
        let reports = d.wait(&[skipped]);
        let JobOutcome::Success(s) = &reports[0].outcome else {
            panic!("breaker-skipped job failed");
        };
        assert!(s.degraded, "breaker-skip serves via sim");
        let stats = d.native_stats();
        assert_eq!(stats.attempts, 2, "no native attempt while open");
        assert_eq!(stats.breaker_skips, 1);
        assert_eq!(stats.fallbacks, 3);
        // Operator reset closes it; the next clean job serves native.
        assert!(d.reset_native_breaker());
        assert!(!d.reset_native_breaker(), "second reset is a no-op");
        let clean = d
            .submit_with_backend("clean2", corpus::POLYNOMIAL, ExecBackend::Native)
            .id()
            .expect("accepted");
        let reports = d.wait(&[clean]);
        let JobOutcome::Success(s) = &reports[0].outcome else {
            panic!("post-reset job failed");
        };
        assert!(!s.degraded);
        assert_eq!(d.native_stats().attempts, 3);
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn batch_report_preserves_counts_and_summary_shape() {
        let d = daemon(2, ExecutorConfig::default());
        let ids: Vec<usize> = corpus::TABLE_7_1
            .iter()
            .map(|(name, src)| d.submit(*name, *src).id().expect("accepted"))
            .collect();
        let reports = d.wait(&ids);
        let batch = batch_report(reports, d.quarantined_names());
        assert_eq!(batch.succeeded(), 5);
        assert!(batch.is_healthy());
        assert!(batch
            .summary()
            .starts_with("batch: 5 ok (0 degraded), 0 failed, 0 timed out, 0 quarantined"));
        d.shutdown(ShutdownMode::Drain);
    }
}
