//! The totality fuzzing harness: arbitrary bytes through the guarded
//! pipeline, with panic capture, hang detection, and crash shrinking.
//!
//! Where [`differential`](crate::differential) checks that the
//! compiler's *answers* are right on well-typed programs, this harness
//! checks the complementary promise that compilation is a *total
//! function*: any input — corpus programs chewed up by the
//! [`warp_oracle::fuzz`] mutators into truncated, spliced, non-UTF-8,
//! absurdly nested bytes — must come back as a structured verdict.
//! Acceptable verdicts are a successful module, diagnostics, a budget
//! stop ([`CompileFailure::Interrupted`] / [`CompileFailure::TooLarge`])
//! or a timing-arithmetic overflow ([`CompileFailure::TimingOverflow`]).
//! A panic or a hang is a compiler bug, full stop.
//!
//! Each case follows the same script. A per-case seed is derived from
//! the root seed (`splitmix64(seed + i)`, the same scheme the
//! differential harness uses), the [`Mutator`] produces the input, and
//! [`check_case`] runs it through a [`Session`] under
//! `catch_unwind`, a wall-clock [`CancelToken`] deadline, and the full
//! set of resource guards ([`SessionCtrl`]: source-size cap,
//! cell-cycle ceiling, skew event budget). A panic is caught, its
//! message recorded, and the input handed to
//! [`warp_oracle::shrink_lines`] with "still crashes" as the predicate
//! — the byte-level shrinker, because crashers are usually not
//! parseable. The reduced input is written to the repro directory as
//! `fuzz-<seed>.w2` with a header comment carrying the replay command,
//! plus an `.orig.w2` sidecar with the unshrunk bytes — the same
//! self-describing repro shape `--differential` writes.
//!
//! [`FuzzOptions::inject_panic`] is the harness's own audit hook: it
//! plants a deliberate panic on inputs containing a needle, which must
//! then be caught, shrunk, and written out — proving the capture path
//! works before anyone needs it in anger.

use crate::{audit, corpus, CompileFailure, CompileOptions, ExecBackend, Session, SessionCtrl};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use warp_common::{splitmix64, CancelToken, SplitMix64, SystemClock};
use warp_oracle::{shrink_lines, Mutator};

/// Configuration for one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Number of fuzzed inputs.
    pub cases: usize,
    /// Root seed; case `i` derives its own seed from it, so one crasher
    /// is replayable without rerunning the whole campaign.
    pub seed: u64,
    /// Compile options for every case.
    pub compile: CompileOptions,
    /// Where shrunk crashers are written (`None` = don't write files).
    pub repro_dir: Option<PathBuf>,
    /// Per-case wall-clock budget; `Duration::ZERO` disables the
    /// deadline. A case that exceeds it counts as a budget stop — and a
    /// case that *ignores* it would hang the run, which is exactly the
    /// bug class the deadline exists to surface.
    pub case_timeout: Duration,
    /// Ceiling on the dynamic cell-program length
    /// ([`SessionCtrl::max_cell_cycles`]); 0 = unlimited.
    pub max_cell_cycles: u64,
    /// Ceiling on the input size ([`SessionCtrl::max_source_bytes`]);
    /// 0 = unlimited.
    pub max_source_bytes: u64,
    /// Ceiling on skew-analysis event enumeration
    /// ([`SessionCtrl::skew_max_events`]); 0 = unlimited.
    pub skew_max_events: u64,
    /// Modulo-schedule innermost loops ([`SessionCtrl::pipeline`]).
    pub pipeline: bool,
    /// Predicate-call budget for the crash shrinker.
    pub shrink_budget: usize,
    /// Test hook: panic on any input containing this needle, simulating
    /// a reintroduced compiler bug. The panic is raised *inside* the
    /// guarded region, so a working harness must catch, shrink, and
    /// report it like any real crash.
    pub inject_panic: Option<String>,
    /// With [`ExecBackend::Native`], every input that compiles is also
    /// *executed* on the native backend (seeded inputs, same deadline)
    /// inside the guarded region — so a native-executor panic on a
    /// fuzzed-but-valid program is captured and shrunk exactly like a
    /// compiler crash. Structured [`warp_native::NativeError`]s are
    /// totality kept, not crashes.
    pub backend: ExecBackend,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            cases: 100,
            seed: 1,
            compile: CompileOptions::default(),
            repro_dir: None,
            case_timeout: Duration::from_secs(5),
            max_cell_cycles: 2_000_000,
            max_source_bytes: 4 * 1024 * 1024,
            skew_max_events: 5_000_000,
            pipeline: true,
            shrink_budget: 2_000,
            inject_panic: None,
            backend: ExecBackend::default(),
        }
    }
}

/// The structured verdict for one fuzzed input. Everything except
/// [`FuzzVerdict::Crash`] is the compiler keeping its totality promise.
#[derive(Clone, Debug)]
pub enum FuzzVerdict {
    /// The input was a valid program and compiled to a module.
    Compiled,
    /// The input was rejected with diagnostics (including non-UTF-8
    /// inputs, which the `&str` pipeline boundary rejects up front).
    Rejected,
    /// A resource guard stopped the case: deadline, source-size cap,
    /// cell-cycle ceiling, or skew event budget.
    Budget,
    /// Timing arithmetic overflowed and was reported as
    /// [`CompileFailure::TimingOverflow`] instead of wrapping.
    Overflow,
    /// The compiler panicked. The payload is the panic message.
    Crash(String),
}

/// A caught, shrunk panic.
#[derive(Clone, Debug)]
pub struct CrashCase {
    /// Index in the fuzzed sequence.
    pub case_index: usize,
    /// Per-case seed (regenerates the input from the corpus).
    pub case_seed: u64,
    /// The original fuzzed input.
    pub input: Vec<u8>,
    /// The line-shrunk input that still crashes.
    pub shrunk: Vec<u8>,
    /// The panic message from the first crash.
    pub detail: String,
    /// Repro file, when a repro directory was configured.
    pub repro: Option<PathBuf>,
}

/// Aggregate result of [`run_fuzz`].
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases attempted.
    pub cases: usize,
    /// Inputs that compiled clean.
    pub compiled: usize,
    /// Inputs rejected with diagnostics.
    pub rejected: usize,
    /// Inputs stopped by a resource guard.
    pub budget: usize,
    /// Inputs stopped by checked timing arithmetic.
    pub overflow: usize,
    /// Panics caught, shrunk, and recorded.
    pub crashes: Vec<CrashCase>,
}

impl FuzzReport {
    /// `true` when the run is evidence of totality: no case panicked.
    pub fn clean(&self) -> bool {
        self.crashes.is_empty()
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz: {} case(s) — {} compiled, {} rejected, {} budget, {} overflow, {} crash(es)",
            self.cases,
            self.compiled,
            self.rejected,
            self.budget,
            self.overflow,
            self.crashes.len(),
        )?;
        for c in &self.crashes {
            writeln!(
                f,
                "crash (case {}, seed {:#018x}): {}",
                c.case_index, c.case_seed, c.detail
            )?;
            match &c.repro {
                Some(p) => writeln!(f, "  shrunk repro: {}", p.display())?,
                None => writeln!(
                    f,
                    "  shrunk to ({} bytes):\n{}",
                    c.shrunk.len(),
                    String::from_utf8_lossy(&c.shrunk)
                )?,
            }
        }
        Ok(())
    }
}

/// Runs `opts.cases` mutated inputs through the guarded pipeline,
/// catching, shrinking, and recording every panic.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let sources: Vec<&str> = corpus::TABLE_7_1.iter().map(|(_, src)| *src).collect();
    let mutator = Mutator::new(&sources);
    let mut report = FuzzReport {
        cases: opts.cases,
        ..FuzzReport::default()
    };
    quiet_panics(|| {
        for i in 0..opts.cases {
            let case_seed = splitmix64(opts.seed.wrapping_add(i as u64));
            let input = mutator.case(&mut SplitMix64::new(case_seed));
            match check_case(&input, opts) {
                FuzzVerdict::Compiled => report.compiled += 1,
                FuzzVerdict::Rejected => report.rejected += 1,
                FuzzVerdict::Budget => report.budget += 1,
                FuzzVerdict::Overflow => report.overflow += 1,
                FuzzVerdict::Crash(detail) => {
                    let shrunk = shrink_lines(&input, opts.shrink_budget, |candidate| {
                        matches!(check_case(candidate, opts), FuzzVerdict::Crash(_))
                    });
                    let mut case = CrashCase {
                        case_index: i,
                        case_seed,
                        input: input.clone(),
                        shrunk,
                        detail,
                        repro: None,
                    };
                    if let Some(dir) = &opts.repro_dir {
                        match write_repro(dir, &case, opts) {
                            Ok(path) => case.repro = Some(path),
                            Err(e) => {
                                eprintln!("warning: could not write repro for case {i}: {e}");
                            }
                        }
                    }
                    report.crashes.push(case);
                }
            }
        }
    });
    report
}

/// Runs one input through the guarded pipeline under `catch_unwind`.
/// This is the exact predicate the crash shrinker uses, and the engine
/// behind the `tests/fuzz_regressions.rs` crasher corpus.
pub fn check_case(input: &[u8], opts: &FuzzOptions) -> FuzzVerdict {
    match panic::catch_unwind(AssertUnwindSafe(|| compile_input(input, opts))) {
        Ok(verdict) => verdict,
        Err(payload) => FuzzVerdict::Crash(panic_message(payload.as_ref())),
    }
}

/// The guarded region: injection hook, UTF-8 boundary, then a fully
/// budgeted [`Session`].
fn compile_input(input: &[u8], opts: &FuzzOptions) -> FuzzVerdict {
    if let Some(needle) = &opts.inject_panic {
        if !needle.is_empty() && contains(input, needle.as_bytes()) {
            panic!("injected fuzz panic: input contains `{needle}`");
        }
    }
    // The pipeline takes `&str`; non-UTF-8 bytes are rejected at this
    // boundary (as `w2c` rejects unreadable files), which is a
    // structured verdict, not a crash.
    let Ok(source) = std::str::from_utf8(input) else {
        return FuzzVerdict::Rejected;
    };
    let cancel = if opts.case_timeout.is_zero() {
        CancelToken::none()
    } else {
        let budget_us = u64::try_from(opts.case_timeout.as_micros()).unwrap_or(u64::MAX);
        CancelToken::with_deadline(Arc::new(SystemClock::new()), budget_us)
    };
    let session = Session::new(opts.compile.clone()).with_ctrl(SessionCtrl {
        cancel: cancel.clone(),
        skew_max_events: opts.skew_max_events,
        max_cell_cycles: opts.max_cell_cycles,
        max_source_bytes: opts.max_source_bytes,
        pipeline: opts.pipeline,
        backend: opts.backend,
        ..SessionCtrl::default()
    });
    match session.try_compile(source) {
        Ok(module) => {
            if opts.backend == ExecBackend::Native {
                // Drive the native executor on the compiled module —
                // still inside the caller's `catch_unwind`, so a panic
                // in table building or the dispatch loop is captured
                // and shrunk like any compiler crash. A structured
                // NativeError is the executor keeping its own totality
                // promise and needs no verdict of its own; only an
                // interruption is accounted as a budget stop.
                let owned = audit::seeded_inputs(&module, splitmix64(opts.seed));
                let inputs: Vec<(&str, &[f32])> = owned
                    .iter()
                    .map(|(n, d)| (n.as_str(), d.as_slice()))
                    .collect();
                let native_opts = warp_native::NativeOptions {
                    cancel,
                    ..warp_native::NativeOptions::default()
                };
                if let Err(crate::NativeRunError::Native(warp_native::NativeError::Interrupted(
                    _,
                ))) = module.run_native(&inputs, &native_opts)
                {
                    return FuzzVerdict::Budget;
                }
            }
            FuzzVerdict::Compiled
        }
        Err(CompileFailure::Diagnostics(_)) => FuzzVerdict::Rejected,
        Err(CompileFailure::TimingOverflow { .. }) => FuzzVerdict::Overflow,
        Err(CompileFailure::Interrupted { .. } | CompileFailure::TooLarge { .. }) => {
            FuzzVerdict::Budget
        }
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Silences the default panic hook for panics on *this* thread while
/// `f` runs — a fuzz run catches hundreds of expected panics during
/// shrinking, and each would otherwise print a backtrace banner.
/// Panics on other threads still reach the previous hook.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let fuzz_thread = std::thread::current().id();
    let prev = Arc::new(panic::take_hook());
    let prev_for_hook = Arc::clone(&prev);
    panic::set_hook(Box::new(move |info| {
        if std::thread::current().id() != fuzz_thread {
            prev_for_hook(info);
        }
    }));
    let result = f();
    let _ = panic::take_hook();
    panic::set_hook(Box::new(move |info| prev(info)));
    result
}

/// Writes the shrunk crasher (with a header comment carrying the
/// replay commands) plus an `.orig.w2` sidecar with the unshrunk
/// input. Crashers are raw bytes — possibly invalid UTF-8 — so the
/// files are written byte-for-byte. Returns the repro path.
fn write_repro(dir: &Path, case: &CrashCase, opts: &FuzzOptions) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("fuzz-{:016x}", case.case_seed);
    let path = dir.join(format!("{stem}.w2"));
    let header = format!(
        "/* fuzz crash: {} */\n\
         /* reproduce: w2c {stem}.w2 */\n\
         /* found by: w2c --fuzz {} --seed {} (case {}) */\n",
        case.detail.replace("*/", "* /"),
        opts.cases,
        opts.seed,
        case.case_index,
    );
    let mut text = header.into_bytes();
    text.extend_from_slice(&case.shrunk);
    std::fs::write(&path, text)?;
    std::fs::write(dir.join(format!("{stem}.orig.w2")), &case.input)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> FuzzOptions {
        FuzzOptions {
            cases: 60,
            seed: 1,
            ..FuzzOptions::default()
        }
    }

    #[test]
    fn clean_compiler_survives_fuzzing_without_crashes() {
        let report = run_fuzz(&quick_opts());
        assert!(report.clean(), "{report}");
        assert_eq!(
            report.compiled + report.rejected + report.budget + report.overflow,
            report.cases,
            "{report}"
        );
        // The mutators must not degenerate into all-rejects: some
        // corpus mutations stay compilable.
        assert!(report.rejected > 0, "{report}");
    }

    #[test]
    fn verdict_counts_are_deterministic_in_the_seed() {
        let a = run_fuzz(&quick_opts());
        let b = run_fuzz(&quick_opts());
        assert_eq!(
            (a.compiled, a.rejected, a.budget, a.overflow),
            (b.compiled, b.rejected, b.budget, b.overflow)
        );
    }

    #[test]
    fn injected_panic_is_caught_shrunk_and_written_as_a_repro() {
        let dir = std::env::temp_dir().join(format!("warp-fuzz-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Nearly every mutated input still contains `cellprogram`, so
        // the injected bug fires often — the harness must catch every
        // one in-process, shrink it, and write a replayable file.
        let opts = FuzzOptions {
            cases: 10,
            inject_panic: Some("cellprogram".to_owned()),
            repro_dir: Some(dir.clone()),
            shrink_budget: 500,
            ..quick_opts()
        };
        let report = run_fuzz(&opts);
        assert!(!report.crashes.is_empty(), "{report}");
        let c = &report.crashes[0];
        assert!(c.detail.contains("injected fuzz panic"), "{}", c.detail);
        assert!(c.shrunk.len() <= c.input.len());
        assert!(
            contains(&c.shrunk, b"cellprogram"),
            "shrunk lost the trigger"
        );
        let repro = c.repro.as_ref().expect("repro written");
        let bytes = std::fs::read(repro).expect("repro readable");
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("reproduce: w2c fuzz-"), "{text}");
        assert!(text.contains("--fuzz"), "{text}");
        let stem = repro.file_stem().unwrap().to_string_lossy();
        let orig = repro.parent().unwrap().join(format!("{stem}.orig.w2"));
        assert_eq!(std::fs::read(orig).expect("sidecar readable"), c.input);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn native_backend_fuzzing_stays_clean() {
        // Every compiling input is also executed natively; the run must
        // stay crash-free, and the verdict counts must stay what they
        // were under compile-only fuzzing (native errors are structured,
        // so they never reclassify a compiled case).
        let sim_only = run_fuzz(&quick_opts());
        let report = run_fuzz(&FuzzOptions {
            backend: ExecBackend::Native,
            ..quick_opts()
        });
        assert!(report.clean(), "{report}");
        assert_eq!(report.compiled, sim_only.compiled, "{report}");
        assert!(report.compiled > 0, "{report}");
    }

    #[test]
    fn crasher_corpus_classes_get_structured_verdicts() {
        let opts = FuzzOptions::default();
        // Non-UTF-8: rejected at the boundary.
        let verdict = check_case(&[0xff, 0xfe, 0x00, 0x28], &opts);
        assert!(matches!(verdict, FuzzVerdict::Rejected), "{verdict:?}");
        // Deep nesting: the parser depth guard answers with
        // diagnostics, not a stack overflow.
        let mut deep = String::from("module m (x in) float x[1]; cellprogram (c : 0 : 0) begin function f begin float v; v := ");
        for _ in 0..10_000 {
            deep.push('(');
        }
        deep.push('x');
        let verdict = check_case(deep.as_bytes(), &opts);
        assert!(matches!(verdict, FuzzVerdict::Rejected), "{verdict:?}");
        // Oversized input: the source-size guard fires first.
        let huge = vec![b' '; 8 * 1024 * 1024];
        let verdict = check_case(
            &huge,
            &FuzzOptions {
                max_source_bytes: 1024,
                ..FuzzOptions::default()
            },
        );
        assert!(matches!(verdict, FuzzVerdict::Budget), "{verdict:?}");
    }
}
