//! Plain-Rust reference implementations of the corpus computations.
//!
//! Each function reproduces the exact `f32` operation order of the
//! corresponding W2 program, so simulated array results can be compared
//! bit-for-bit.

/// Polynomial evaluation as the 10-cell Horner pipeline computes it:
/// cell `k` holds `c[k]` and performs `ans = c[k] + yin * z`, so the
/// result is `c[n-1] + z(c[n-2] + z(… + z·c[0]))` — i.e.
/// `P(z) = c[0]·z^(n-1) + … + c[n-1]`.
pub fn polynomial(c: &[f32], z: &[f32]) -> Vec<f32> {
    z.iter()
        .map(|&zv| {
            let mut acc = 0.0f32;
            for &ck in c {
                acc = ck + acc * zv;
            }
            acc
        })
        .collect()
}

/// 1-D convolution as the delay-line pipeline computes it:
/// `y[t - taps + 1] = Σ_k w[k]·x[t-k]` for `t ≥ taps-1`, accumulated in
/// ascending `k` order with `x[<0] = 0`.
pub fn conv1d(w: &[f32], x: &[f32]) -> Vec<f32> {
    let taps = w.len();
    let mut out = Vec::with_capacity(x.len() - taps + 1);
    for t in (taps - 1)..x.len() {
        let mut acc = 0.0f32;
        for (k, &wk) in w.iter().enumerate() {
            let xv = if t >= k { x[t - k] } else { 0.0 };
            acc += wk * xv;
        }
        out.push(acc);
    }
    out
}

/// Elementwise product of two flattened images.
pub fn binop(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// Four-class RGB color separation, mirroring the predicated decision
/// tree of the ColorSeg corpus program: class 1/2/3 for the dominant
/// channel (ties resolved in r, g, b order), class 0 for dark pixels
/// (`r+g+b < 96`). Input is interleaved `r,g,b` per pixel.
pub fn colorseg_rgb(rgb: &[f32]) -> Vec<f32> {
    assert_eq!(rgb.len() % 3, 0);
    rgb.chunks_exact(3)
        .map(|p| {
            let (r, g, b) = (p[0], p[1], p[2]);
            let mut s = if r >= g && r >= b {
                1.0
            } else if g >= b {
                2.0
            } else {
                3.0
            };
            if r + g + b < 96.0 {
                s = 0.0;
            }
            s
        })
        .collect()
}

/// Three-class grayscale separation with thresholds 85 and 170 (the
/// `grayseg` corpus variant).
pub fn colorseg(img: &[f32]) -> Vec<f32> {
    img.iter()
        .map(|&v| {
            if v < 85.0 {
                0.0
            } else if v < 170.0 {
                1.0
            } else {
                2.0
            }
        })
        .collect()
}

/// Mandelbrot escape counts over `iters` iterations, replicating the
/// W2 program's operation shapes:
/// `zr' = (zr·zr − zi·zi) + cr`, `zi' = (2·zr)·zi + ci`, then the
/// magnitude test on the *new* point; diverged points keep iterating
/// (predication) but stop counting.
pub fn mandelbrot(cre: &[f32], cim: &[f32], iters: u32) -> Vec<f32> {
    assert_eq!(cre.len(), cim.len());
    cre.iter()
        .zip(cim)
        .map(|(&cr, &ci)| {
            let mut zr = 0.0f32;
            let mut zi = 0.0f32;
            let mut cnt = 0.0f32;
            for _ in 0..iters {
                let zr2 = zr * zr - zi * zi + cr;
                zi = (2.0 * zr) * zi + ci;
                zr = zr2;
                let mag = zr * zr + zi * zi;
                if mag < 4.0 {
                    cnt += 1.0;
                }
            }
            cnt
        })
        .collect()
}

/// Matrix multiplication `C = A·B` with `A` of shape `m×p` (row major)
/// and `B` of shape `p×q`; the dot products accumulate in ascending `k`
/// order like the cells do.
pub fn matmul(a: &[f32], b: &[f32], m: usize, p: usize, q: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * p);
    assert_eq!(b.len(), p * q);
    let mut c = vec![0.0f32; m * q];
    for r in 0..m {
        for col in 0..q {
            let mut acc = 0.0f32;
            for k in 0..p {
                acc += a[r * p + k] * b[k * q + col];
            }
            c[r * q + col] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_is_horner() {
        // P(z) = 2z + 3 with c = [2, 3].
        let r = polynomial(&[2.0, 3.0], &[0.0, 1.0, 2.0]);
        assert_eq!(r, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn conv_is_fir() {
        // Identity kernel [1]: output = input.
        assert_eq!(conv1d(&[1.0], &[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        // Difference kernel [1, -1]: y[t-1] = x[t] - x[t-1].
        assert_eq!(conv1d(&[1.0, -1.0], &[1.0, 4.0, 9.0]), vec![3.0, 5.0]);
    }

    #[test]
    fn binop_multiplies() {
        assert_eq!(binop(&[2.0, 3.0], &[4.0, 5.0]), vec![8.0, 15.0]);
    }

    #[test]
    fn colorseg_classes() {
        assert_eq!(
            colorseg(&[0.0, 84.9, 85.0, 169.9, 170.0, 255.0]),
            vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]
        );
    }

    #[test]
    fn mandelbrot_counts() {
        // c = 0: never escapes, counts all iterations.
        assert_eq!(mandelbrot(&[0.0], &[0.0], 4), vec![4.0]);
        // c = 2: z1 = 2, |z1|^2 = 4 not < 4: counts 0.
        assert_eq!(mandelbrot(&[2.0], &[0.0], 4), vec![0.0]);
    }

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let c = matmul(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }
}

// ---------- FFT (constant geometry / Pease) ----------

/// Twiddle factors for stage `s` of an `n`-point constant-geometry
/// (Pease) radix-2 DIF FFT.
///
/// Each stage interleaves the two half-size subproblems, so butterfly
/// `i` of stage `s` belongs to subproblem `i mod 2^s` at within-problem
/// index `j = i >> s`; its DIF twiddle `W_{n/2^s}^j` is `W_n^e` with
/// `e = (i >> s) << s` (clear the low `s` bits of `i`). Returns
/// `(re, im)`, one pair per butterfly.
pub fn pease_twiddles(n: usize, stage: u32) -> (Vec<f32>, Vec<f32>) {
    assert!(n.is_power_of_two() && n >= 2);
    let m = n.trailing_zeros();
    assert!(stage < m);
    let mut re = Vec::with_capacity(n / 2);
    let mut im = Vec::with_capacity(n / 2);
    for i in 0..n / 2 {
        let e = (i >> stage) << stage;
        let theta = -2.0 * std::f64::consts::PI * e as f64 / n as f64;
        re.push(theta.cos() as f32);
        im.push(theta.sin() as f32);
    }
    (re, im)
}

/// One constant-geometry butterfly stage, with exactly the f32
/// operation shapes of the W2 cell program:
/// `out[2i] = x[i] + x[i+n/2]`,
/// `out[2i+1] = (x[i] − x[i+n/2]) · w[i]` (complex).
pub fn pease_stage(re: &[f32], im: &[f32], twr: &[f32], twi: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = re.len();
    let half = n / 2;
    let mut or_ = vec![0.0f32; n];
    let mut oi = vec![0.0f32; n];
    for i in 0..half {
        let (ar, ai) = (re[i], im[i]);
        let (br, bi) = (re[i + half], im[i + half]);
        or_[2 * i] = ar + br;
        oi[2 * i] = ai + bi;
        let dr = ar - br;
        let di = ai - bi;
        or_[2 * i + 1] = dr * twr[i] - di * twi[i];
        oi[2 * i + 1] = dr * twi[i] + di * twr[i];
    }
    (or_, oi)
}

/// The full `log2 n`-stage constant-geometry FFT. The result is in
/// bit-reversed order; [`bit_reverse_permute`] restores natural order.
pub fn fft_pease(re: &[f32], im: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = re.len();
    assert!(n.is_power_of_two() && n >= 2);
    let m = n.trailing_zeros();
    let mut cur = (re.to_vec(), im.to_vec());
    for s in 0..m {
        let (twr, twi) = pease_twiddles(n, s);
        cur = pease_stage(&cur.0, &cur.1, &twr, &twi);
    }
    cur
}

/// Reorders a bit-reversed spectrum into natural frequency order.
pub fn bit_reverse_permute(data: &[f32]) -> Vec<f32> {
    let n = data.len();
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| data[(i as u32).reverse_bits() as usize >> (32 - bits)])
        .collect()
}

/// Naive `O(n²)` DFT in f64, the oracle for the FFT implementations.
pub fn dft_naive(re: &[f32], im: &[f32]) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let mut our = vec![0.0f64; n];
    let mut oui = vec![0.0f64; n];
    for k in 0..n {
        for t in 0..n {
            let theta = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            let (c, s) = (theta.cos(), theta.sin());
            our[k] += f64::from(re[t]) * c - f64::from(im[t]) * s;
            oui[k] += f64::from(re[t]) * s + f64::from(im[t]) * c;
        }
    }
    (our, oui)
}

#[cfg(test)]
mod fft_tests {
    use super::*;

    fn check_against_dft(n: usize) {
        let re: Vec<f32> = (0..n).map(|i| ((i * 7) % 5) as f32 - 2.0).collect();
        let im: Vec<f32> = (0..n).map(|i| ((i * 3) % 4) as f32 * 0.5).collect();
        let (fr, fi) = fft_pease(&re, &im);
        let fr = bit_reverse_permute(&fr);
        let fi = bit_reverse_permute(&fi);
        let (dr, di) = dft_naive(&re, &im);
        for k in 0..n {
            let tol = 1e-3 * (n as f64);
            assert!(
                (f64::from(fr[k]) - dr[k]).abs() < tol,
                "re[{k}]: fft {} vs dft {} (n = {n})",
                fr[k],
                dr[k]
            );
            assert!(
                (f64::from(fi[k]) - di[k]).abs() < tol,
                "im[{k}]: fft {} vs dft {} (n = {n})",
                fi[k],
                di[k]
            );
        }
    }

    #[test]
    fn pease_fft_matches_dft() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            check_against_dft(n);
        }
    }

    #[test]
    fn bit_reverse_involution() {
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let once = bit_reverse_permute(&data);
        let twice = bit_reverse_permute(&once);
        assert_eq!(twice, data);
        assert_ne!(once, data);
    }

    #[test]
    fn stage_zero_twiddles_are_roots_of_unity() {
        let (re, im) = pease_twiddles(8, 0);
        // Stage 0 exponents are 0..3: W_8^0..W_8^3.
        assert!((re[0] - 1.0).abs() < 1e-6);
        assert!(im[0].abs() < 1e-6);
        assert!((re[2] - 0.0).abs() < 1e-6);
        assert!((im[2] + 1.0).abs() < 1e-6);
    }
}
