//! The Warp compiler driver: W2 source in, a complete machine program
//! out.
//!
//! This crate wires the pipeline of paper §6.1 together (Figure 6-1):
//!
//! ```text
//! W2 source ──► front end ──► flow analysis ──► decomposition
//!      ──► cell code generation ──► skew & queue analysis
//!      ──► IU code generation ──► host code generation
//! ```
//!
//! The driver is an explicit pass manager: a [`Session`] runs the
//! nine named passes of [`passes::PIPELINE`] in order, timing each
//! one ([`Metrics::per_pass`]) and reporting every intermediate
//! artifact to an attached [`warp_common::PassObserver`] — that is
//! what `w2c --time-passes` and `w2c --dump-after <pass>` are built
//! on. [`compile`] is the plain entry point; [`compile_many`]
//! batch-compiles independent modules on scoped threads with
//! deterministic output ordering.
//!
//! The result is a [`CompiledModule`] that can be executed on the
//! cycle-level simulator with [`CompiledModule::run`].
//!
//! The [`corpus`] module carries the paper's five benchmark programs
//! (Table 7-1) plus parameterized generators, and [`mod@reference`] holds
//! plain-Rust implementations of the same computations for end-to-end
//! validation.
//!
//! # Examples
//!
//! ```
//! use warp_compiler::{compile, CompileOptions};
//!
//! let module = compile(warp_compiler::corpus::POLYNOMIAL, &CompileOptions::default())?;
//! assert_eq!(module.n_cells, 10);
//!
//! // Evaluate P(z) = sum c_k z^(9-k) over 100 points on the 10-cell array.
//! let c: Vec<f32> = (1..=10).map(|k| k as f32 / 10.0).collect();
//! let z: Vec<f32> = (0..100).map(|i| -1.0 + i as f32 * 0.02).collect();
//! let report = module.run(&[("c", &c), ("z", &z)])?;
//! let expected = warp_compiler::reference::polynomial(&c, &z);
//! assert_eq!(report.host.get("results")?, &expected[..]);
//! # Ok::<(), warp_compiler::CompileOrSimError>(())
//! ```

pub mod audit;
pub mod bench;
pub mod cache;
pub mod corpus;
pub mod crash;
pub mod daemon;
pub mod differential;
pub mod fuzz;
pub mod health;
pub mod isolate;
pub mod oracle;
pub mod passes;
pub mod protocol;
pub mod reference;
pub mod service;
mod session;
pub mod soak;
pub mod store;
pub mod supervise;

pub use service::{BatchReport, CompileService, ServiceConfig};
pub use session::{compile_many, Session};

use std::time::Duration;
use warp_cell::{CellCode, CellMachine};
use warp_common::{CancelReason, CancelToken, DiagnosticBag, PassTiming};
use warp_host::{HostError, HostMemory, HostProgram};
use warp_ir::{comm, CellIr, LowerOptions};
use warp_iu::{IuOptions, IuProgram};
use warp_sim::{FaultReport, MachineConfig, RunReport, SimError, SimOptions, StaticClaims};
use warp_skew::{SkewMethod, SkewReport};

/// Options for one compilation.
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    /// Cell machine parameters.
    pub machine: CellMachine,
    /// IU code generation options.
    pub iu: IuOptions,
    /// Lowering/optimization options.
    pub lower: LowerOptions,
    /// Skew computation method.
    pub skew_method: SkewMethod,
}

/// Which executor serves a compiled module's runs.
///
/// The compiler's output is identical either way — the backend is an
/// *execution* preference recorded with the request so the service
/// layer can route runs and the cache can key artifacts per serving
/// path. [`ExecBackend::Sim`] is the cycle-accurate simulator (the
/// timing/audit oracle); [`ExecBackend::Native`] is the `warp-native`
/// fast path, bitwise-identical on values but untimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecBackend {
    /// Cycle-level simulation (`warp-sim`) — timed, auditable, slow.
    #[default]
    Sim,
    /// Flat-op-table native execution (`warp-native`) — untimed, fast.
    Native,
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecBackend::Sim => write!(f, "sim"),
            ExecBackend::Native => write!(f, "native"),
        }
    }
}

impl std::str::FromStr for ExecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecBackend, String> {
        match s {
            "sim" => Ok(ExecBackend::Sim),
            "native" => Ok(ExecBackend::Native),
            other => Err(format!("unknown backend `{other}` (expected sim|native)")),
        }
    }
}

/// Resource-control knobs for one compilation, injected by the service
/// layer: cooperative cancellation polled at every pass boundary (and
/// inside the skew enumeration), a budget slice for the exact skew
/// engine, an IR-size ceiling checked between passes, and pipeline
/// policy toggles. The default is fully inert — un-budgeted compiles
/// behave exactly as before.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionCtrl {
    /// Cancellation handle; checked before every pass and threaded into
    /// the skew analysis.
    pub cancel: CancelToken,
    /// Budget on dynamic I/O events for the skew pass's exact
    /// enumeration (`0` = unlimited). Exceeding it degrades the skew
    /// report to conservative closed-form bounds
    /// ([`warp_skew::SkewReport::degraded`]).
    pub skew_max_events: u64,
    /// Ceiling on the dynamic length of the generated cell program in
    /// cycles, checked after cell code generation (`0` = unlimited) —
    /// the memory/IR-size budget guarding against oversized loop
    /// bounds.
    pub max_cell_cycles: u64,
    /// Ceiling on the source text size in bytes, checked before the
    /// frontend runs (`0` = unlimited). Oversized inputs fail fast with
    /// [`CompileFailure::TooLarge`] instead of being lexed.
    pub max_source_bytes: u64,
    /// Modulo-schedule (software-pipeline) eligible innermost loops
    /// (see [`warp_cell::modulo`]). On by default; `w2c --no-pipeline`
    /// clears it for one-iteration-at-a-time baselines and A/B runs.
    pub pipeline: bool,
    /// Ceiling on total rewrite-pattern applications in the `rewrite`
    /// pass (`None` = unlimited). A debugging/bisection knob: fuel `k`
    /// stops the fixpoint driver after the k-th application.
    pub rewrite_fuel: Option<u64>,
    /// Which executor this request's runs are served by
    /// (`w2c --backend`, `w2cd` per-job backend field). Part of the
    /// content-addressed cache key.
    pub backend: ExecBackend,
}

impl Default for SessionCtrl {
    fn default() -> SessionCtrl {
        SessionCtrl {
            cancel: CancelToken::default(),
            skew_max_events: 0,
            max_cell_cycles: 0,
            max_source_bytes: 0,
            pipeline: true,
            rewrite_fuel: None,
            backend: ExecBackend::default(),
        }
    }
}

/// A structured compilation failure: what stopped the pipeline, and
/// where. [`Session::try_compile`] returns this; the plain
/// [`compile`] entry point flattens it back into a [`DiagnosticBag`]
/// for compatibility.
#[derive(Clone, Debug)]
pub enum CompileFailure {
    /// The program was rejected with ordinary diagnostics.
    Diagnostics(DiagnosticBag),
    /// The compilation was cancelled or ran past its deadline; `pass`
    /// names the pass boundary (or in-pass poll) that observed it.
    Interrupted {
        /// The pass that was running (or about to run).
        pass: &'static str,
        /// Why the compilation was stopped.
        reason: CancelReason,
    },
    /// A measured resource exceeded its configured ceiling: the
    /// generated cell program outgrew [`SessionCtrl::max_cell_cycles`],
    /// or the source text outgrew [`SessionCtrl::max_source_bytes`].
    TooLarge {
        /// The pass whose output tripped the ceiling.
        pass: &'static str,
        /// What was measured (`"cell cycles"`, `"source bytes"`).
        what: &'static str,
        /// The measured size.
        size: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// Timing arithmetic overflowed its fixed-width representation:
    /// the rational skew bounds or the `i64` schedule offsets could
    /// not be computed exactly ([`warp_skew::TimingOverflow`]). The
    /// program is rejected rather than scheduled with wrong timing.
    TimingOverflow {
        /// The pass whose arithmetic overflowed.
        pass: &'static str,
        /// Human-readable description of the overflowing computation.
        detail: String,
    },
}

impl CompileFailure {
    /// `true` for the budget-enforcement outcomes (interruption or size
    /// ceiling) as opposed to an ordinary rejection of the program.
    pub fn is_budget_failure(&self) -> bool {
        matches!(
            self,
            CompileFailure::Interrupted { .. } | CompileFailure::TooLarge { .. }
        )
    }

    /// Flattens the failure into plain diagnostics.
    pub fn into_diagnostics(self) -> DiagnosticBag {
        match self {
            CompileFailure::Diagnostics(d) => d,
            other => {
                let mut diags = DiagnosticBag::new();
                diags.push(warp_common::Diagnostic::error_global(other.to_string()));
                diags
            }
        }
    }
}

impl std::fmt::Display for CompileFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileFailure::Diagnostics(d) => write!(f, "{d}"),
            CompileFailure::Interrupted { pass, reason } => {
                write!(f, "compilation interrupted during `{pass}`: {reason}")
            }
            CompileFailure::TooLarge {
                pass,
                what,
                size,
                limit,
            } => write!(
                f,
                "program too large during `{pass}`: {size} {what} exceeds the configured \
                 limit of {limit}"
            ),
            CompileFailure::TimingOverflow { pass, detail } => {
                write!(f, "timing arithmetic overflow during `{pass}`: {detail}")
            }
        }
    }
}

impl std::error::Error for CompileFailure {}

impl From<DiagnosticBag> for CompileFailure {
    fn from(d: DiagnosticBag) -> CompileFailure {
        CompileFailure::Diagnostics(d)
    }
}

/// Size and timing metrics of one compilation — the columns of Table
/// 7-1, plus the per-pass wall-clock breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Non-blank source lines ("W2 Lines").
    pub w2_lines: u32,
    /// Static cell micro-instructions ("Cell µcode").
    pub cell_ucode: u32,
    /// Static IU micro-instructions ("IU µcode").
    pub iu_ucode: u64,
    /// Wall-clock compile time ("Compile time").
    pub compile_time: Duration,
    /// Per-pass wall-clock breakdown, in pipeline order (one entry per
    /// pass of [`passes::PIPELINE`]).
    pub per_pass: Vec<PassTiming>,
    /// Per-pattern application counts from the `rewrite` pass, sorted
    /// by pattern name. Empty when optimization is disabled.
    pub rewrite_hits: Vec<(String, u64)>,
}

impl Metrics {
    /// The summed per-pass time (≤ [`Metrics::compile_time`]; the
    /// difference is driver overhead).
    pub fn pass_time_total(&self) -> Duration {
        self.per_pass.iter().map(|t| t.duration).sum()
    }
}

/// A fully compiled module: programs for the cells, the IU, and the
/// host, plus the analyses that justify them.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// Module name from the source.
    pub name: String,
    /// Cells declared by the `cellprogram` range.
    pub n_cells: u32,
    /// The cell IR (kept for the simulator's variable/loop tables).
    pub ir: CellIr,
    /// The cell microprogram.
    pub cell_code: CellCode,
    /// The IU program.
    pub iu: IuProgram,
    /// The host transfer scripts.
    pub host: HostProgram,
    /// Skew and queue analysis results.
    pub skew: SkewReport,
    /// Communication structure of the program.
    pub comm: comm::CommReport,
    /// Machine parameters the module was compiled for.
    pub machine: CellMachine,
    /// Compilation metrics.
    pub metrics: Metrics,
    /// Warning-severity diagnostics from the front end (unused locals,
    /// dead loop indices). A successful compile never carries errors —
    /// those reject the program — so drivers print these and exit
    /// successfully.
    pub warnings: Vec<warp_common::Diagnostic>,
}

/// Compiles a W2 module by running a [`Session`] with no observer.
///
/// # Errors
///
/// Returns the accumulated diagnostics of whichever pass rejected the
/// program: parsing, semantic analysis, the unidirectionality check of
/// §5.1.1, lowering, cell or IU code generation, or the skew/queue
/// analysis.
pub fn compile(source: &str, opts: &CompileOptions) -> Result<CompiledModule, DiagnosticBag> {
    Session::new(opts.clone()).compile(source)
}

/// An error from compiling or running a module (convenience for examples
/// and doctests).
#[derive(Debug)]
pub enum CompileOrSimError {
    /// Compilation diagnostics.
    Compile(DiagnosticBag),
    /// A simulator invariant violation.
    Sim(SimError),
    /// A host-memory binding error (unknown variable, wrong length).
    Host(HostError),
}

impl std::fmt::Display for CompileOrSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileOrSimError::Compile(d) => write!(f, "{d}"),
            CompileOrSimError::Sim(e) => write!(f, "{e}"),
            CompileOrSimError::Host(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileOrSimError {
    /// Simulator and host errors keep their underlying cause reachable
    /// (e.g. `Sim(Host(e))` chains down to the [`HostError`]), so
    /// callers can walk to the root instead of re-parsing messages.
    /// Compile diagnostics are an aggregate with no single cause.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileOrSimError::Compile(_) => None,
            CompileOrSimError::Sim(e) => Some(e),
            CompileOrSimError::Host(e) => Some(e),
        }
    }
}

impl From<DiagnosticBag> for CompileOrSimError {
    fn from(d: DiagnosticBag) -> CompileOrSimError {
        CompileOrSimError::Compile(d)
    }
}

impl From<SimError> for CompileOrSimError {
    fn from(e: SimError) -> CompileOrSimError {
        CompileOrSimError::Sim(e)
    }
}

impl From<HostError> for CompileOrSimError {
    fn from(e: HostError) -> CompileOrSimError {
        CompileOrSimError::Host(e)
    }
}

/// An error from a native-backend run: either the inputs did not bind,
/// or the native executor itself stopped ([`warp_native::NativeError`]
/// — starved queue, out-of-bounds access, budget ceiling,
/// cancellation).
#[derive(Clone, Debug)]
pub enum NativeRunError {
    /// A host-memory binding error (unknown variable, wrong length).
    Host(HostError),
    /// A structured native-execution failure.
    Native(warp_native::NativeError),
}

impl std::fmt::Display for NativeRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NativeRunError::Host(e) => write!(f, "{e}"),
            NativeRunError::Native(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NativeRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NativeRunError::Host(e) => Some(e),
            NativeRunError::Native(e) => Some(e),
        }
    }
}

impl From<HostError> for NativeRunError {
    fn from(e: HostError) -> NativeRunError {
        NativeRunError::Host(e)
    }
}

impl From<warp_native::NativeError> for NativeRunError {
    fn from(e: warp_native::NativeError) -> NativeRunError {
        NativeRunError::Native(e)
    }
}

impl CompiledModule {
    /// Runs the module on its declared number of cells at the computed
    /// minimum skew.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the inputs do not bind
    /// ([`SimError::Host`]) or a machine invariant is violated — which
    /// for compiler-produced parameters indicates a compiler bug.
    pub fn run(&self, inputs: &[(&str, &[f32])]) -> Result<RunReport, SimError> {
        self.run_with(self.n_cells, self.skew.min_skew, inputs)
    }

    /// Runs the module with explicit cell count and skew (used by tests
    /// to probe the minimality of the skew and by benchmarks to sweep
    /// configurations).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Host`] if `inputs` name unknown host
    /// variables or have wrong lengths, otherwise the first violated
    /// machine invariant.
    pub fn run_with(
        &self,
        n_cells: u32,
        skew: i64,
        inputs: &[(&str, &[f32])],
    ) -> Result<RunReport, SimError> {
        let mut host = HostMemory::new(&self.ir.vars);
        for (name, data) in inputs {
            host.set(name, data)?;
        }
        warp_sim::run(
            &MachineConfig {
                cell_code: &self.cell_code,
                iu: &self.iu,
                host_program: &self.host,
                machine: &self.machine,
                n_cells,
                skew,
                flow: self.skew.flow,
            },
            host,
        )
    }

    /// Lowers this module's cell IR into the native-execution program
    /// (`warp-native` flat op tables). Build once and
    /// [`run`](warp_native::NativeProgram::run) repeatedly — the build
    /// is cheap but not free, and benchmarks amortize it.
    pub fn native_program(&self) -> warp_native::NativeProgram {
        warp_native::NativeProgram::build(&self.ir, self.skew.flow)
    }

    /// Runs the module on the native backend: whole-array semantics
    /// executed as tight dispatch loops, bitwise-identical words to
    /// [`CompiledModule::run`] (the simulator) when compiled with
    /// reassociation off, but untimed — the returned report's `cycles`
    /// is 0 and the simulator remains the timing oracle.
    ///
    /// # Errors
    ///
    /// Returns [`NativeRunError::Host`] if `inputs` name unknown host
    /// variables or have wrong lengths, otherwise the first structured
    /// [`warp_native::NativeError`] the executor hits.
    pub fn run_native(
        &self,
        inputs: &[(&str, &[f32])],
        opts: &warp_native::NativeOptions,
    ) -> Result<RunReport, NativeRunError> {
        let program = self.native_program();
        let mut host = HostMemory::new(&self.ir.vars);
        for (name, data) in inputs {
            host.set(name, data)?;
        }
        Ok(program.run(host, opts)?)
    }

    /// The static claims the skew/queue analysis made for this module —
    /// what the [`audit`] module holds the simulator's observations
    /// against.
    pub fn claims(&self) -> StaticClaims {
        StaticClaims {
            min_skew: self.skew.min_skew,
            queue_occupancy: self.skew.queue_occupancy.clone(),
        }
    }

    /// Runs the module under explicit [`SimOptions`] — fault plan, ring
    /// buffer, and static claims — returning a structured
    /// [`FaultReport`] on any violation (including input-binding
    /// failures, which surface as [`SimError::Host`] with no cycles
    /// run).
    ///
    /// # Errors
    ///
    /// Returns the [`FaultReport`] for the first violated invariant.
    pub fn run_audited(
        &self,
        n_cells: u32,
        skew: i64,
        inputs: &[(&str, &[f32])],
        opts: &SimOptions,
    ) -> Result<RunReport, Box<FaultReport>> {
        let mut host = HostMemory::new(&self.ir.vars);
        for (name, data) in inputs {
            if let Err(e) = host.set(name, data) {
                return Err(Box::new(FaultReport {
                    error: SimError::Host(e),
                    cycles_run: 0,
                    queue_high_water: Default::default(),
                    recent_events: Vec::new(),
                    claims: opts.claims.clone(),
                    injected: opts.plan.describe(),
                }));
            }
        }
        warp_sim::run_with_options(
            &MachineConfig {
                cell_code: &self.cell_code,
                iu: &self.iu,
                host_program: &self.host,
                machine: &self.machine,
                n_cells,
                skew,
                flow: self.skew.flow,
            },
            host,
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_produces_metrics() {
        let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
        assert_eq!(m.name, "polynomial");
        assert_eq!(m.n_cells, 10);
        assert!(m.metrics.w2_lines > 20);
        assert!(m.metrics.cell_ucode > 10);
        assert!(m.metrics.iu_ucode > 0);
        assert!(m.skew.min_skew >= 0);
        assert!(m.comm.is_unidirectional());
    }

    #[test]
    fn per_pass_timings_cover_the_pipeline() {
        let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
        let names: Vec<_> = m.metrics.per_pass.iter().map(|t| t.name).collect();
        assert_eq!(names, passes::pass_names().collect::<Vec<_>>());
        assert!(m.metrics.pass_time_total() <= m.metrics.compile_time);
    }

    #[test]
    fn bidirectional_rejected_at_driver() {
        let src = "module bidi (a in, r out) float a[4]; float r[4]; \
            cellprogram (cid : 0 : 1) begin function f begin float x; \
            receive (L, X, x, a[0]); send (R, X, x); \
            receive (R, Y, x); send (L, Y, x, r[0]); \
            end call f; end";
        let err = compile(src, &CompileOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains("cannot be mapped")
                || err.to_string().contains("bidirectional"),
            "{err}"
        );
    }

    #[test]
    fn parse_errors_propagate() {
        let err = compile("module broken", &CompileOptions::default()).unwrap_err();
        assert!(err.has_errors());
    }

    #[test]
    fn native_backend_matches_the_simulator_bitwise() {
        let mut opts = CompileOptions::default();
        opts.lower.reassociate = false;
        let m = compile(corpus::POLYNOMIAL, &opts).expect("compiles");
        let c: Vec<f32> = (1..=10).map(|k| k as f32 / 10.0).collect();
        let z: Vec<f32> = (0..100).map(|i| -1.0 + i as f32 * 0.02).collect();
        let inputs: &[(&str, &[f32])] = &[("c", &c), ("z", &z)];
        let sim = m.run(inputs).expect("sim runs");
        let native = m
            .run_native(inputs, &warp_native::NativeOptions::default())
            .expect("native runs");
        let sim_out: Vec<u32> = sim
            .host
            .get("results")
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let native_out: Vec<u32> = native
            .host
            .get("results")
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(sim_out, native_out);
        assert_eq!(native.cycles, 0, "native is untimed");
        assert!(sim.cycles > 0);
    }

    #[test]
    fn native_run_input_errors_are_structured() {
        let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
        let err = m
            .run_native(
                &[("nonsense", &[1.0][..])],
                &warp_native::NativeOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, NativeRunError::Host(_)), "{err:?}");
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("sim".parse::<ExecBackend>().unwrap(), ExecBackend::Sim);
        assert_eq!(
            "native".parse::<ExecBackend>().unwrap(),
            ExecBackend::Native
        );
        assert!("jit".parse::<ExecBackend>().is_err());
        assert_eq!(ExecBackend::Native.to_string(), "native");
        assert_eq!(ExecBackend::default(), ExecBackend::Sim);
    }

    #[test]
    fn unknown_run_input_is_a_host_error() {
        let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
        let err = m.run(&[("nonsense", &[1.0][..])]).unwrap_err();
        assert!(matches!(err, SimError::Host(_)), "{err:?}");
        assert!(err.to_string().contains("unknown host variable"), "{err}");
    }
}
