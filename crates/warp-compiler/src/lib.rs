//! The Warp compiler driver: W2 source in, a complete machine program
//! out.
//!
//! This crate wires the pipeline of paper §6.1 together (Figure 6-1):
//!
//! ```text
//! W2 source ──► front end ──► flow analysis ──► decomposition
//!      ──► cell code generation ──► skew & queue analysis
//!      ──► IU code generation ──► host code generation
//! ```
//!
//! and packages the result as a [`CompiledModule`] that can be executed
//! on the cycle-level simulator with [`CompiledModule::run`].
//!
//! The [`corpus`] module carries the paper's five benchmark programs
//! (Table 7-1) plus parameterized generators, and [`mod@reference`] holds
//! plain-Rust implementations of the same computations for end-to-end
//! validation.
//!
//! # Examples
//!
//! ```
//! use warp_compiler::{compile, CompileOptions};
//!
//! let module = compile(warp_compiler::corpus::POLYNOMIAL, &CompileOptions::default())?;
//! assert_eq!(module.n_cells, 10);
//!
//! // Evaluate P(z) = sum c_k z^(9-k) over 100 points on the 10-cell array.
//! let c: Vec<f32> = (1..=10).map(|k| k as f32 / 10.0).collect();
//! let z: Vec<f32> = (0..100).map(|i| -1.0 + i as f32 * 0.02).collect();
//! let report = module.run(&[("c", &c), ("z", &z)])?;
//! let expected = warp_compiler::reference::polynomial(&c, &z);
//! assert_eq!(report.host.get("results"), &expected[..]);
//! # Ok::<(), warp_compiler::CompileOrSimError>(())
//! ```

pub mod corpus;
pub mod oracle;
pub mod reference;

use std::time::{Duration, Instant};
use w2_lang::parse_and_check;
use warp_cell::{codegen_with as cell_codegen, CellCode, CellCodegenOptions, CellMachine};
use warp_common::{Diagnostic, DiagnosticBag};
use warp_host::{host_codegen, HostMemory, HostProgram};
use warp_ir::{comm, decompose, lower, CellIr, LowerOptions};
use warp_iu::{iu_codegen, IuOptions, IuProgram};
use warp_sim::{MachineConfig, RunReport, SimError};
use warp_skew::{analyze, SkewMethod, SkewOptions, SkewReport};

/// Options for one compilation.
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    /// Cell machine parameters.
    pub machine: CellMachine,
    /// IU code generation options.
    pub iu: IuOptions,
    /// Lowering/optimization options.
    pub lower: LowerOptions,
    /// Skew computation method.
    pub skew_method: SkewMethod,
    /// Software-pipeline eligible innermost loops (see
    /// [`warp_cell::pipeline`]). Off by default; like loop unrolling it
    /// reorders operations across iterations, which the paper's
    /// successors (not this paper) automated.
    pub software_pipeline: bool,
}

/// Size and timing metrics of one compilation — the columns of Table
/// 7-1.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Non-blank source lines ("W2 Lines").
    pub w2_lines: u32,
    /// Static cell micro-instructions ("Cell µcode").
    pub cell_ucode: u32,
    /// Static IU micro-instructions ("IU µcode").
    pub iu_ucode: u64,
    /// Wall-clock compile time ("Compile time").
    pub compile_time: Duration,
}

/// A fully compiled module: programs for the cells, the IU, and the
/// host, plus the analyses that justify them.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// Module name from the source.
    pub name: String,
    /// Cells declared by the `cellprogram` range.
    pub n_cells: u32,
    /// The cell IR (kept for the simulator's variable/loop tables).
    pub ir: CellIr,
    /// The cell microprogram.
    pub cell_code: CellCode,
    /// The IU program.
    pub iu: IuProgram,
    /// The host transfer scripts.
    pub host: HostProgram,
    /// Skew and queue analysis results.
    pub skew: SkewReport,
    /// Communication structure of the program.
    pub comm: comm::CommReport,
    /// Machine parameters the module was compiled for.
    pub machine: CellMachine,
    /// Compilation metrics.
    pub metrics: Metrics,
}

/// Compiles a W2 module.
///
/// # Errors
///
/// Returns the accumulated diagnostics of whichever phase rejected the
/// program: parsing, semantic analysis, the unidirectionality check of
/// §5.1.1, lowering, cell or IU code generation, or the skew/queue
/// analysis.
pub fn compile(source: &str, opts: &CompileOptions) -> Result<CompiledModule, DiagnosticBag> {
    let start = Instant::now();
    let hir = parse_and_check(source)?;

    let comm_report = comm::analyze(&hir);
    if !comm_report.is_mappable() {
        let mut diags = DiagnosticBag::new();
        diags.push(Diagnostic::error_global(
            "program has both right and left communication cycles and cannot be mapped onto \
             the skewed computation model (paper §5.1.1)",
        ));
        return Err(diags);
    }
    if !comm_report.is_unidirectional() {
        let mut diags = DiagnosticBag::new();
        diags.push(Diagnostic::error_global(
            "program is bidirectional; like the paper's compiler, only unidirectional data \
             flow is supported (paper §5.1.1)",
        ));
        return Err(diags);
    }

    let mut ir = lower(&hir, &opts.lower)?;
    let dec = decompose::decompose(&mut ir);
    let cell_code = cell_codegen(
        &ir,
        &opts.machine,
        &CellCodegenOptions {
            software_pipeline: opts.software_pipeline,
        },
    )?;
    let skew = analyze(
        &cell_code,
        &ir.loops,
        &SkewOptions {
            method: opts.skew_method,
            queue_capacity: u64::from(opts.machine.queue_capacity),
            n_cells: ir.n_cells,
        },
    )?;
    let iu = iu_codegen(&ir, &dec, &cell_code, &opts.iu)?;
    let host = host_codegen(&ir, &cell_code, skew.flow)?;

    let metrics = Metrics {
        w2_lines: source.lines().filter(|l| !l.trim().is_empty()).count() as u32,
        cell_ucode: cell_code.static_len(),
        iu_ucode: iu.static_len(),
        compile_time: start.elapsed(),
    };

    Ok(CompiledModule {
        name: ir.name.clone(),
        n_cells: ir.n_cells,
        ir,
        cell_code,
        iu,
        host,
        skew,
        comm: comm_report,
        machine: opts.machine.clone(),
        metrics,
    })
}

/// An error from compiling or running a module (convenience for examples
/// and doctests).
#[derive(Debug)]
pub enum CompileOrSimError {
    /// Compilation diagnostics.
    Compile(DiagnosticBag),
    /// A simulator invariant violation.
    Sim(SimError),
}

impl std::fmt::Display for CompileOrSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileOrSimError::Compile(d) => write!(f, "{d}"),
            CompileOrSimError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileOrSimError {}

impl From<DiagnosticBag> for CompileOrSimError {
    fn from(d: DiagnosticBag) -> CompileOrSimError {
        CompileOrSimError::Compile(d)
    }
}

impl From<SimError> for CompileOrSimError {
    fn from(e: SimError) -> CompileOrSimError {
        CompileOrSimError::Sim(e)
    }
}

impl CompiledModule {
    /// Runs the module on its declared number of cells at the computed
    /// minimum skew.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a machine invariant is violated — which
    /// for compiler-produced parameters indicates a compiler bug.
    pub fn run(&self, inputs: &[(&str, &[f32])]) -> Result<RunReport, SimError> {
        self.run_with(self.n_cells, self.skew.min_skew, inputs)
    }

    /// Runs the module with explicit cell count and skew (used by tests
    /// to probe the minimality of the skew and by benchmarks to sweep
    /// configurations).
    ///
    /// # Errors
    ///
    /// Returns the first violated machine invariant.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` name unknown host variables or have wrong
    /// lengths.
    pub fn run_with(
        &self,
        n_cells: u32,
        skew: i64,
        inputs: &[(&str, &[f32])],
    ) -> Result<RunReport, SimError> {
        let mut host = HostMemory::new(&self.ir.vars);
        for (name, data) in inputs {
            host.set(name, data);
        }
        warp_sim::run(
            &MachineConfig {
                cell_code: &self.cell_code,
                iu: &self.iu,
                host_program: &self.host,
                machine: &self.machine,
                n_cells,
                skew,
                flow: self.skew.flow,
            },
            host,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_produces_metrics() {
        let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
        assert_eq!(m.name, "polynomial");
        assert_eq!(m.n_cells, 10);
        assert!(m.metrics.w2_lines > 20);
        assert!(m.metrics.cell_ucode > 10);
        assert!(m.metrics.iu_ucode > 0);
        assert!(m.skew.min_skew >= 0);
        assert!(m.comm.is_unidirectional());
    }

    #[test]
    fn bidirectional_rejected_at_driver() {
        let src = "module bidi (a in, r out) float a[4]; float r[4]; \
            cellprogram (cid : 0 : 1) begin function f begin float x; \
            receive (L, X, x, a[0]); send (R, X, x); \
            receive (R, Y, x); send (L, Y, x, r[0]); \
            end call f; end";
        let err = compile(src, &CompileOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains("cannot be mapped")
                || err.to_string().contains("bidirectional"),
            "{err}"
        );
    }

    #[test]
    fn parse_errors_propagate() {
        let err = compile("module broken", &CompileOptions::default()).unwrap_err();
        assert!(err.has_errors());
    }
}
