//! The kill/restart recovery soak for the persistent artifact store.
//!
//! Where `soak` proves the *concurrent executor* under chaos, this
//! module proves the *durability tier*: a store that is killed at a
//! seeded crash-point — mid-write, mid-rename, even mid-recovery —
//! and restarted, over and over, while background disk faults (torn
//! writes, bit flips, `ENOSPC`) fire at seeded rates.
//!
//! The soak runs entirely in-process and deterministically: the
//! "disk" is a [`MemVfs`] that survives across simulated process
//! lifetimes, each lifetime wraps it in a fresh [`FaultVfs`] with a
//! crash-point drawn from the seed, and the "process" is a
//! [`TieredCache`] (memory tier + [`DiskStore`]) that is dropped and
//! rebuilt every life — exactly the state a `kill -9` loses.
//!
//! Each life serves a seeded Zipfian request mix and checks two
//! invariants per response and one per restart:
//!
//! 1. **Never serve corruption.** Every served module's canonical
//!    bytes (timings zeroed, see
//!    [`canonical_artifact_bytes`](crate::store::canonical_artifact_bytes))
//!    must equal those of a known-good fresh compile of the same
//!    program, bitwise.
//! 2. **Always serve.** Every request must succeed — disk faults may
//!    cost a recompile, never an error.
//! 3. **Recovery is total.** At each restart, every artifact file in
//!    the store directory was either recovered intact or quarantined;
//!    none is left unaccounted, and the on-disk file count afterwards
//!    matches the recovered index.
//!
//! A final fault-free life measures the warm hit rate (how much of
//! the universe survived the whole ordeal on disk) and cold-compile
//! vs. warm-hit latency, and a deterministic [`ManualClock`] phase
//! exercises negative-cache TTL expiry end to end. Run-twice
//! determinism: every counter and outcome in the report except the
//! wall-clock latency fields is a pure function of the seed.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use warp_common::vfs::{FaultCounts, FaultProfile, FaultVfs};
use warp_common::{ManualClock, MemVfs, SplitMix64, Vfs};

use crate::cache::{cache_key, CacheConfig, CompileCache};
use crate::soak::{program_universe, zipf};
use crate::store::{
    canonical_artifact_bytes, DiskStore, StoreConfig, StoreStats, TieredCache, TieredOutcome,
};
use crate::{CompileFailure, CompileOptions, Session, SessionCtrl};

/// Configuration of one crash/restart soak run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashSoakConfig {
    /// Seed for everything: request mix, crash-point placement,
    /// background fault arrivals.
    pub seed: u64,
    /// Simulated process lifetimes, each armed with one crash-point.
    pub lives: u64,
    /// Requests served per lifetime (fewer if the crash fires first
    /// and the life is cut short).
    pub requests_per_life: usize,
    /// Disk-tier byte budget (0 = unbounded).
    pub store_bytes: u64,
    /// Torn-write probability per mille per write.
    pub torn_write_per_mille: u64,
    /// Bit-flip probability per mille per read.
    pub bit_flip_per_mille: u64,
    /// `ENOSPC` probability per mille per write.
    pub no_space_per_mille: u64,
    /// Negative-cache TTL (ticks) for the `ManualClock` expiry phase.
    pub negative_ttl_ticks: u64,
}

impl Default for CrashSoakConfig {
    fn default() -> CrashSoakConfig {
        CrashSoakConfig {
            seed: 0xC0A5_7AC5,
            // ≥ 50 fired crash-points is the acceptance bar; roughly
            // half the draws land past a life's op count (that life
            // survives — also worth exercising), so 128 lives keep a
            // comfortable margin over the bar.
            lives: 128,
            requests_per_life: 24,
            store_bytes: 0,
            torn_write_per_mille: 60,
            bit_flip_per_mille: 25,
            no_space_per_mille: 15,
            negative_ttl_ticks: 1_000,
        }
    }
}

/// What one simulated lifetime observed (determinism-guard identity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifeSummary {
    /// Lifetime index.
    pub life: u64,
    /// Op number the crash-point was armed at.
    pub crash_armed_at: u64,
    /// Whether the crash actually fired this life.
    pub crashed: bool,
    /// Artifacts recovered intact by this life's opening scan.
    pub recovered: u64,
    /// Entries quarantined by this life's opening scan.
    pub quarantined: u64,
    /// Requests served before death.
    pub served: u64,
    /// Per-outcome counts: memory hits, disk hits, compiles.
    pub memory_hits: u64,
    /// Requests served by decoding a disk artifact.
    pub disk_hits: u64,
    /// Requests that ran the compiler.
    pub compiles: u64,
}

/// Everything one crash soak observed.
#[derive(Clone, Debug)]
pub struct CrashSoakReport {
    /// The configuration that produced this report.
    pub config: CrashSoakConfig,
    /// One summary per simulated lifetime.
    pub lives: Vec<LifeSummary>,
    /// Lifetimes whose crash-point actually fired.
    pub crash_points_fired: u64,
    /// Total requests served across all lives.
    pub served: u64,
    /// Served modules whose canonical bytes mismatched the known-good
    /// compile (must be 0).
    pub corrupt_served: u64,
    /// Total artifacts recovered across all restarts.
    pub recovered_total: u64,
    /// Total entries quarantined across all restarts and reads.
    pub quarantined_total: u64,
    /// Total `.tmp` crash leftovers cleaned across all restarts.
    pub tmp_cleaned_total: u64,
    /// Disk-tier hits across all lives.
    pub disk_hits: u64,
    /// Compiles across all lives.
    pub compiles: u64,
    /// Disk writes that failed (crash, `ENOSPC`, fault).
    pub put_failures: u64,
    /// Background fault totals across all lives.
    pub faults: FaultCounts,
    /// Fraction of the program universe served from disk by the
    /// final fault-free restart.
    pub warm_hit_rate: f64,
    /// Disk-tier counters of the final fault-free restart.
    pub final_store: StoreStats,
    /// Negative-cache entries that expired in the TTL phase.
    pub ttl_expired: u64,
    /// Mean cold-compile latency (µs wall clock; not part of the
    /// determinism identity).
    pub cold_mean_us: u64,
    /// Mean warm disk-hit latency (µs wall clock; not part of the
    /// determinism identity).
    pub warm_mean_us: u64,
    /// Invariant violations observed (empty = the run proved out).
    pub violations: Vec<String>,
}

impl CrashSoakReport {
    /// `true` when every durability invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The seed-determined identity of the run: everything except the
    /// wall-clock latency fields. Two runs with one seed must agree.
    pub fn identity(&self) -> (Vec<LifeSummary>, Vec<u64>, f64) {
        (
            self.lives.clone(),
            vec![
                self.crash_points_fired,
                self.served,
                self.corrupt_served,
                self.recovered_total,
                self.quarantined_total,
                self.tmp_cleaned_total,
                self.disk_hits,
                self.compiles,
                self.put_failures,
                self.faults.total(),
                self.ttl_expired,
            ],
            self.warm_hit_rate,
        )
    }

    /// Renders the crash-soak `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"warp-crash-soak-v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"lives\": {},\n", self.config.lives));
        out.push_str(&format!(
            "  \"crash_points_fired\": {},\n",
            self.crash_points_fired
        ));
        out.push_str(&format!("  \"served\": {},\n", self.served));
        out.push_str(&format!("  \"corrupt_served\": {},\n", self.corrupt_served));
        out.push_str(&format!(
            "  \"recovered_total\": {},\n",
            self.recovered_total
        ));
        out.push_str(&format!(
            "  \"quarantined_total\": {},\n",
            self.quarantined_total
        ));
        out.push_str(&format!(
            "  \"tmp_cleaned_total\": {},\n",
            self.tmp_cleaned_total
        ));
        out.push_str(&format!("  \"disk_hits\": {},\n", self.disk_hits));
        out.push_str(&format!("  \"compiles\": {},\n", self.compiles));
        out.push_str(&format!("  \"put_failures\": {},\n", self.put_failures));
        out.push_str(&format!(
            "  \"faults\": {{\"torn_writes\": {}, \"short_reads\": {}, \"bit_flips\": {}, \
             \"no_space\": {}, \"io_errors\": {}}},\n",
            self.faults.torn_writes,
            self.faults.short_reads,
            self.faults.bit_flips,
            self.faults.no_space,
            self.faults.io_errors,
        ));
        out.push_str(&format!(
            "  \"warm_hit_rate\": {:.4},\n",
            self.warm_hit_rate
        ));
        out.push_str(&format!(
            "  \"cold_restart_mean_us\": {},\n",
            self.cold_mean_us
        ));
        out.push_str(&format!(
            "  \"warm_restart_mean_us\": {},\n",
            self.warm_mean_us
        ));
        out.push_str(&format!("  \"ttl_expired\": {},\n", self.ttl_expired));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            for c in v.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push_str("]\n}\n");
        out
    }
}

const STORE_DIR: &str = "/crash-soak/store";

/// The expected canonical bytes of every universe program, from
/// fault-free compiles: the ground truth every served module is
/// bitwise-checked against.
struct GroundTruth {
    programs: Vec<(&'static str, String, warp_common::ContentKey, Vec<u8>)>,
}

fn ground_truth(opts: &CompileOptions, ctrl: &SessionCtrl) -> GroundTruth {
    let programs = program_universe()
        .into_iter()
        .map(|(name, source)| {
            let module = Session::new(opts.clone())
                .try_compile(&source)
                .expect("universe program compiles");
            let key = cache_key(&source, opts, ctrl);
            let canon = canonical_artifact_bytes(&module);
            (name, source, key, canon)
        })
        .collect();
    GroundTruth { programs }
}

fn fresh_compile(
    opts: &CompileOptions,
    source: &str,
) -> Result<crate::CompiledModule, CompileFailure> {
    Session::new(opts.clone()).try_compile(source)
}

/// Runs the crash/restart soak. See the module docs for the phases
/// and invariants.
pub fn run_crash_soak(config: &CrashSoakConfig) -> CrashSoakReport {
    let opts = CompileOptions::default();
    let ctrl = SessionCtrl::default();
    let truth = ground_truth(&opts, &ctrl);
    let disk = MemVfs::new();
    let mut rng = SplitMix64::new(config.seed);
    let store_config = StoreConfig {
        dir: PathBuf::from(STORE_DIR),
        byte_budget: config.store_bytes,
    };

    let mut lives = Vec::new();
    let mut violations = Vec::new();
    let mut faults = FaultCounts::default();
    let mut totals = (0u64, 0u64, 0u64); // recovered, quarantined, tmp
    let mut corrupt_served = 0u64;
    let mut served = 0u64;
    let mut disk_hits = 0u64;
    let mut compiles = 0u64;
    let mut put_failures = 0u64;
    let mut crash_points_fired = 0u64;

    for life in 0..config.lives {
        // Arm this life's crash-point. The recovery scan itself ticks
        // the op counter, so small draws kill the store mid-recovery
        // — the nastiest restart there is. The window is kept inside
        // the ops a typical life performs (scan reads + first-touch
        // disk hits + write-through puts); once the memory tier is
        // warm a life stops touching the disk, so a draw past the
        // window simply means that life survives.
        let crash_armed_at = 1 + rng.below(28);
        let profile = FaultProfile {
            seed: rng.next_u64(),
            torn_write_per_mille: config.torn_write_per_mille,
            short_read_per_mille: 0,
            bit_flip_per_mille: config.bit_flip_per_mille,
            no_space_per_mille: config.no_space_per_mille,
            io_error_per_mille: 0,
            crash_at_op: Some(crash_armed_at),
        };
        let vfs = Arc::new(FaultVfs::new(Arc::new(disk.clone()), profile));

        let mut summary = LifeSummary {
            life,
            crash_armed_at,
            crashed: false,
            recovered: 0,
            quarantined: 0,
            served: 0,
            memory_hits: 0,
            disk_hits: 0,
            compiles: 0,
        };

        // An open killed by the crash-point (or an injected fault)
        // degrades to memory-only, exactly as the real daemon does.
        let store = DiskStore::open(vfs.clone(), store_config.clone()).ok();
        if let Some(store) = &store {
            let warm = store.stats();
            summary.recovered = warm.recovered;
            summary.quarantined = warm.quarantined;
            totals.0 += warm.recovered;
            totals.1 += warm.quarantined;
            totals.2 += warm.tmp_cleaned;
        }
        let tiered = TieredCache::new(
            CompileCache::new(CacheConfig::default(), Arc::new(ManualClock::new(0))),
            store,
        );

        for r in 0..config.requests_per_life {
            let pick = zipf(&mut rng, truth.programs.len());
            let (name, source, key, canon) = &truth.programs[pick];
            let (result, outcome) = tiered.get_or_compile(*key, || fresh_compile(&opts, source));
            match result {
                Ok(module) => {
                    summary.served += 1;
                    if canonical_artifact_bytes(&module) != *canon {
                        corrupt_served += 1;
                        violations.push(format!(
                            "life {life} request {r}: served corrupt artifact for `{name}` \
                             (outcome {})",
                            outcome.label()
                        ));
                    }
                }
                Err(_) => violations.push(format!(
                    "life {life} request {r}: `{name}` failed to serve — \
                     disk faults must never surface as errors"
                )),
            }
            match outcome {
                TieredOutcome::MemoryHit => summary.memory_hits += 1,
                TieredOutcome::DiskHit => summary.disk_hits += 1,
                TieredOutcome::Compiled => summary.compiles += 1,
                TieredOutcome::NegativeHit | TieredOutcome::Coalesced => {}
            }
            // Process death: the memory tier and store index vanish;
            // whatever reached the durable tree is next life's
            // problem. Serve out of memory a moment longer and the
            // soak would miss the interesting window, so die now.
            if vfs.has_crashed() {
                break;
            }
        }

        summary.crashed = vfs.has_crashed();
        if summary.crashed {
            crash_points_fired += 1;
        }
        served += summary.served;
        disk_hits += summary.disk_hits;
        compiles += summary.compiles;
        if let Some(store) = tiered.disk() {
            let s = store.stats();
            put_failures += s.put_failures;
            // Quarantines during reads (not counted by the open scan).
            totals.1 += s.quarantined - summary.quarantined;
        }
        let c = vfs.fault_counts();
        faults.torn_writes += c.torn_writes;
        faults.short_reads += c.short_reads;
        faults.bit_flips += c.bit_flips;
        faults.no_space += c.no_space;
        faults.io_errors += c.io_errors;
        lives.push(summary);
    }

    // Final fault-free restart: recovery must be total, and whatever
    // survived must serve bitwise-correct. Measures the warm hit rate
    // and cold-vs-warm latency for BENCH_serve.json.
    let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
    let store = DiskStore::open(vfs, store_config).expect("fault-free open succeeds");
    let final_warm = store.stats();
    totals.0 += final_warm.recovered;
    totals.1 += final_warm.quarantined;
    totals.2 += final_warm.tmp_cleaned;
    if disk.file_count() as u64 != final_warm.recovered {
        violations.push(format!(
            "recovery not total: {} files on disk after a scan that recovered {}",
            disk.file_count(),
            final_warm.recovered
        ));
    }
    let tiered = TieredCache::new(
        CompileCache::new(CacheConfig::default(), Arc::new(ManualClock::new(0))),
        Some(store),
    );
    let mut warm_hits = 0u64;
    let mut cold_us = Vec::new();
    let mut warm_us = Vec::new();
    for (name, source, key, canon) in &truth.programs {
        let start = Instant::now();
        let (result, outcome) = tiered.get_or_compile(*key, || fresh_compile(&opts, source));
        let elapsed = start.elapsed().as_micros() as u64;
        match result {
            Ok(module) => {
                if canonical_artifact_bytes(&module) != *canon {
                    corrupt_served += 1;
                    violations.push(format!(
                        "final restart: served corrupt artifact for `{name}`"
                    ));
                }
            }
            Err(_) => violations.push(format!("final restart: `{name}` failed to serve")),
        }
        match outcome {
            TieredOutcome::DiskHit => {
                warm_hits += 1;
                warm_us.push(elapsed);
            }
            TieredOutcome::Compiled => cold_us.push(elapsed),
            _ => {}
        }
    }
    served += truth.programs.len() as u64;
    disk_hits += warm_hits;
    let warm_hit_rate = warm_hits as f64 / truth.programs.len() as f64;
    let final_store = tiered.disk().expect("disk tier").stats();
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0
        } else {
            v.iter().sum::<u64>() / v.len() as u64
        }
    };

    // Negative-TTL phase on a ManualClock: a deterministic failure is
    // cached negative, expires after the configured ticks, and is
    // recompiled — the end-to-end proof the TTL runs on the injected
    // clock, not wall time.
    let clock = Arc::new(ManualClock::new(0));
    let ttl_cache = TieredCache::new(
        CompileCache::new(
            CacheConfig {
                negative_ttl_ticks: config.negative_ttl_ticks,
                ..CacheConfig::default()
            },
            clock.clone(),
        ),
        None,
    );
    let bad_source = "module broken";
    let bad_key = cache_key(bad_source, &opts, &ctrl);
    let run_bad = || ttl_cache.get_or_compile(bad_key, || fresh_compile(&opts, bad_source));
    let (_, first) = run_bad();
    let (_, second) = run_bad();
    clock.advance(config.negative_ttl_ticks + 1);
    let (_, third) = run_bad();
    let ttl_expired = ttl_cache.memory().stats().expired;
    if first != TieredOutcome::Compiled
        || second != TieredOutcome::NegativeHit
        || third != TieredOutcome::Compiled
        || ttl_expired == 0
    {
        violations.push(format!(
            "negative TTL phase: expected compiled/negative-hit/compiled with an expiry, \
             got {}/{}/{} with {} expired",
            first.label(),
            second.label(),
            third.label(),
            ttl_expired
        ));
    }

    CrashSoakReport {
        config: config.clone(),
        lives,
        crash_points_fired,
        served,
        corrupt_served,
        recovered_total: totals.0,
        quarantined_total: totals.1,
        tmp_cleaned_total: totals.2,
        disk_hits,
        compiles,
        put_failures,
        faults,
        warm_hit_rate,
        final_store,
        ttl_expired,
        cold_mean_us: mean(&cold_us),
        warm_mean_us: mean(&warm_us),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CrashSoakConfig {
        CrashSoakConfig {
            lives: 12,
            requests_per_life: 8,
            ..CrashSoakConfig::default()
        }
    }

    #[test]
    fn crash_soak_holds_invariants() {
        let report = run_crash_soak(&quick());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.corrupt_served, 0);
        assert!(report.crash_points_fired > 0, "no crash-point ever fired");
        assert!(report.served > 0);
    }

    #[test]
    fn crash_soak_is_deterministic() {
        let a = run_crash_soak(&quick());
        let b = run_crash_soak(&quick());
        assert_eq!(a.identity(), b.identity());
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = run_crash_soak(&CrashSoakConfig {
            lives: 4,
            requests_per_life: 4,
            ..CrashSoakConfig::default()
        });
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"warp-crash-soak-v1\""));
        assert!(json.contains("\"corrupt_served\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
