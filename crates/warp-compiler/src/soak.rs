//! The seeded chaos/soak harness: proof that the always-on compile
//! service degrades gracefully instead of wedging or dropping work.
//!
//! [`run_soak`] drives a live [`CompileDaemon`] with a deterministic
//! load generator and checks the robustness invariants as it goes:
//!
//! * **Workload.** A Zipfian mix over a small program universe
//!   (corpus programs plus parameterized generator variants — the
//!   "one artifact re-served many times" shape of a processor-array
//!   compile server), with a seeded poison fraction split across
//!   three chaos classes: syntax crashers (deterministic rejection →
//!   breaker food), injected internal-compiler-error panics (via the
//!   daemon's chaos marker), and cancel-at-admission "bombs"
//!   (abandoning clients).
//! * **Lockstep waves.** Each wave pauses dispatch, submits a burst
//!   against the quiescent queue, cancels that wave's bombs, resumes,
//!   and waits for every accepted job. Pausing makes admission
//!   decisions — and therefore shed counts at each overload factor —
//!   a pure function of the seed, while execution itself stays fully
//!   concurrent across the worker pool.
//! * **Overload.** After the steady phase, one burst per configured
//!   overload factor `f` submits `f × queue_capacity` jobs, measuring
//!   the shed rate under 1×/4×/16× pressure.
//! * **Shutdown.** A final wave is submitted and then aborted
//!   mid-flight, checking that the daemon exits cleanly and still
//!   delivers exactly one response per accepted job.
//!
//! Invariants checked (violations are *recorded*, not panicked, so
//! the harness can report everything it saw):
//!
//! 1. Every accepted job yields exactly one report; waiting again
//!    yields nothing (no lost or duplicated responses).
//! 2. Every rejected job carries a positive retry-after hint.
//! 3. The queue depth never exceeds its capacity.
//! 4. Poison names are quarantined; healthy jobs only ever end in
//!    `ok`/`degraded` (no collateral damage).
//! 5. The aborted wave's jobs all come back `timeout` (cancelled),
//!    exactly once each.
//!
//! The per-job `(name, outcome-label)` multiset is returned in sorted
//! order, so running the same seed twice and comparing
//! [`SoakReport::outcomes`] is a loom-free determinism guard: any
//! nondeterministic shed, breaker, or cache behavior shows up as a
//! set difference.
//!
//! [`SoakReport::to_json`] renders `BENCH_serve.json` next to the
//! existing `BENCH_compile.json` (same hand-rolled serializer idiom).

use std::sync::Arc;

use warp_common::{Clock, SplitMix64};
use warp_service::{Admission, ExecutorConfig, ShutdownMode};

use crate::cache::{CacheConfig, CacheStats};
use crate::corpus;
use crate::daemon::{CompileDaemon, DaemonConfig};
use crate::service::ServiceConfig;
use crate::CompileOptions;

/// Name marker that triggers the daemon's injected-panic chaos hook.
pub const CHAOS_MARKER: &str = "!ice";
/// Breaker key of the syntax-crasher poison class.
pub const POISON_SYNTAX: &str = "poison-syntax";
/// Breaker key of the injected-panic poison class (contains the
/// chaos marker).
pub const POISON_ICE: &str = "poison-ice!ice";

/// A W2 source that fails the front end deterministically.
const SYNTAX_CRASHER: &str = "module crasher (x in) this is not w2";

/// Knobs of one soak run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoakConfig {
    /// Seed for the whole workload (program mix, poison placement,
    /// arrival jitter).
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Jobs submitted in the steady (1×) phase.
    pub jobs: usize,
    /// Poison jobs per thousand submissions.
    pub poison_per_mille: u32,
    /// Queue capacity (wave size).
    pub queue_capacity: usize,
    /// Circuit-breaker threshold.
    pub breaker_threshold: u32,
    /// Per-job deadline in clock ticks (`0` = none; keep 0 on a
    /// `ManualClock` so labels stay interleaving-independent).
    pub deadline_ticks: u64,
    /// Overload factors to probe after the steady phase (each factor
    /// `f` submits `f × queue_capacity` jobs in one burst).
    pub overload_factors: Vec<u32>,
    /// Maximum seeded arrival jitter between submissions, in clock
    /// ticks (`0` = none). On a `ManualClock` this is what makes
    /// elapsed time advance.
    pub arrival_jitter_max_ticks: u64,
    /// Negative-cache TTL in clock ticks, forwarded to the daemon's
    /// [`CacheConfig`]. The default is effectively "never expires" so
    /// poison jobs stay negative hits for the whole soak; a soak on a
    /// `ManualClock` can set a small value and jitter past it to
    /// exercise deterministic expiry.
    pub negative_ttl_ticks: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: 0x50AC_50AC,
            workers: 4,
            jobs: 200,
            poison_per_mille: 150,
            queue_capacity: 32,
            breaker_threshold: 3,
            deadline_ticks: 0,
            overload_factors: vec![1, 4, 16],
            arrival_jitter_max_ticks: 50,
            negative_ttl_ticks: u64::MAX / 2,
        }
    }
}

/// Shed measurements for one overload factor.
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadPoint {
    /// The overload factor (multiples of queue capacity).
    pub factor: u32,
    /// Jobs submitted in the burst.
    pub submitted: u64,
    /// Jobs admitted.
    pub accepted: u64,
    /// Jobs shed with a retry hint.
    pub shed: u64,
}

impl OverloadPoint {
    /// Fraction of the burst that was shed.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }
}

/// Everything one soak run observed.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// The configuration that produced this report.
    pub config: SoakConfig,
    /// Sorted `(job name, outcome label)` pairs for every accepted job
    /// — the determinism-guard identity.
    pub outcomes: Vec<(String, String)>,
    /// Total admission attempts across all phases.
    pub submitted: u64,
    /// Jobs admitted.
    pub accepted: u64,
    /// Jobs shed at admission.
    pub shed: u64,
    /// Per-overload-factor shed measurements.
    pub overload: Vec<OverloadPoint>,
    /// Names quarantined by the circuit breaker at the end.
    pub quarantined: Vec<String>,
    /// Cache counters at the end.
    pub cache: CacheStats,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Elapsed clock ticks across the whole run.
    pub elapsed_ticks: u64,
    /// Median completed-job latency in ticks (µs on the system clock).
    pub p50_ticks: u64,
    /// 99th-percentile completed-job latency in ticks.
    pub p99_ticks: u64,
    /// Completed jobs per second of clock time (0 when the clock did
    /// not advance).
    pub jobs_per_sec: f64,
    /// Invariant violations observed (empty = the run proved out).
    pub violations: Vec<String>,
}

impl SoakReport {
    /// `true` when every robustness invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"warp-serve-bench-v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"workers\": {},\n", self.config.workers));
        out.push_str(&format!(
            "  \"poison_per_mille\": {},\n",
            self.config.poison_per_mille
        ));
        out.push_str(&format!(
            "  \"queue_capacity\": {},\n",
            self.config.queue_capacity
        ));
        out.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        out.push_str(&format!("  \"accepted\": {},\n", self.accepted));
        out.push_str(&format!("  \"shed\": {},\n", self.shed));
        out.push_str(&format!("  \"jobs_per_sec\": {:.3},\n", self.jobs_per_sec));
        out.push_str(&format!("  \"p50_latency_ticks\": {},\n", self.p50_ticks));
        out.push_str(&format!("  \"p99_latency_ticks\": {},\n", self.p99_ticks));
        out.push_str(&format!(
            "  \"cache_hit_rate\": {:.4},\n",
            self.cache.hit_rate()
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"lookups\": {}, \"hits\": {}, \"negative_hits\": {}, \
             \"misses\": {}, \"coalesced\": {}, \"evictions\": {}}},\n",
            self.cache.lookups,
            self.cache.hits,
            self.cache.negative_hits,
            self.cache.misses,
            self.cache.coalesced,
            self.cache.evictions,
        ));
        out.push_str(&format!(
            "  \"max_queue_depth\": {},\n",
            self.max_queue_depth
        ));
        out.push_str("  \"overload\": [\n");
        for (i, p) in self.overload.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"factor\": {}, \"submitted\": {}, \"accepted\": {}, \
                 \"shed\": {}, \"shed_rate\": {:.4}}}{}\n",
                p.factor,
                p.submitted,
                p.accepted,
                p.shed,
                p.shed_rate(),
                if i + 1 < self.overload.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"quarantined\": [");
        for (i, name) in self.quarantined.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(name));
        }
        out.push_str("],\n");
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(v));
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The Zipfian program universe: corpus staples plus generator
/// variants, weighted `1/rank`. Small programs keep a 200-job soak
/// fast; the cache makes most submissions hits anyway.
pub(crate) fn program_universe() -> Vec<(&'static str, String)> {
    vec![
        ("poly10", corpus::POLYNOMIAL.to_owned()),
        ("conv1d", corpus::ONED_CONV.to_owned()),
        ("poly4", corpus::polynomial_source(4, 8)),
        ("conv3", corpus::conv1d_source(3, 16)),
        ("binop2", corpus::binop_source(2, 4)),
        ("poly6", corpus::polynomial_source(6, 12)),
        ("conv5", corpus::conv1d_source(5, 8)),
        ("binop4", corpus::binop_source(4, 4)),
    ]
}

/// Draws a Zipf(1) rank in `0..n`: weight of rank `k` is `1/(k+1)`.
pub(crate) fn zipf(rng: &mut SplitMix64, n: usize) -> usize {
    let weights: Vec<u64> = (0..n)
        .map(|k| (1_000_000 / (k as u64 + 1)).max(1))
        .collect();
    let total: u64 = weights.iter().sum();
    let mut draw = rng.below(total);
    for (k, w) in weights.iter().enumerate() {
        if draw < *w {
            return k;
        }
        draw -= w;
    }
    n - 1
}

struct Driver {
    daemon: CompileDaemon,
    rng: SplitMix64,
    programs: Vec<(&'static str, String)>,
    jitter_max: u64,
    clock: Arc<dyn Clock>,
    poison_per_mille: u32,
    next_serial: usize,
    outcomes: Vec<(String, String)>,
    latencies: Vec<u64>,
    submitted: u64,
    accepted: u64,
    shed: u64,
    violations: Vec<String>,
}

impl Driver {
    fn violation(&mut self, what: String) {
        self.violations.push(what);
    }

    /// Submits one burst of `size` jobs against the paused daemon,
    /// cancels the wave's bombs, then resumes and waits for every
    /// accepted job. Returns (submitted, accepted, shed) for the wave.
    fn wave(&mut self, size: usize) -> (u64, u64, u64) {
        self.daemon.pause();
        let mut ids = Vec::new();
        let mut bombs = Vec::new();
        let (mut submitted, mut accepted, mut shed) = (0_u64, 0_u64, 0_u64);
        for _ in 0..size {
            let serial = self.next_serial;
            self.next_serial += 1;
            if self.jitter_max != 0 {
                let jitter = self.rng.below(self.jitter_max + 1);
                if jitter != 0 {
                    self.clock.sleep_ticks(jitter);
                }
            }
            let poison = self.rng.chance(self.poison_per_mille.into(), 1_000);
            let (name, source, is_bomb) = if poison {
                match self.rng.below(3) {
                    0 => (POISON_SYNTAX.to_owned(), SYNTAX_CRASHER.to_owned(), false),
                    1 => (POISON_ICE.to_owned(), corpus::POLYNOMIAL.to_owned(), false),
                    _ => (
                        format!("bomb#{serial}"),
                        corpus::POLYNOMIAL.to_owned(),
                        true,
                    ),
                }
            } else {
                let k = zipf(&mut self.rng, self.programs.len());
                let (prog, src) = &self.programs[k];
                (format!("{prog}#{serial}"), src.clone(), false)
            };
            submitted += 1;
            match self.daemon.submit(&name, source) {
                Admission::Accepted { id, cancel } => {
                    accepted += 1;
                    ids.push(id);
                    if is_bomb {
                        bombs.push(cancel);
                    }
                }
                Admission::Rejected { retry_after_ticks } => {
                    shed += 1;
                    if retry_after_ticks == 0 {
                        self.violation(format!(
                            "rejected job `{name}` carried no retry-after hint"
                        ));
                    }
                }
            }
        }
        // Abandoning clients: cancel this wave's bombs while dispatch
        // is still gated, so the label is deterministic.
        for bomb in &bombs {
            bomb.cancel();
        }
        self.daemon.resume();
        let reports = self.daemon.wait(&ids);
        if reports.len() != ids.len() {
            self.violation(format!(
                "lost responses: waited for {} jobs, got {} reports",
                ids.len(),
                reports.len()
            ));
        }
        for r in &reports {
            self.outcomes
                .push((r.name.clone(), r.outcome.label().to_owned()));
            self.latencies.push(r.wall_ticks);
        }
        // Exactly-once: a second wait must deliver nothing.
        let dupes = self.daemon.wait(&ids);
        if !dupes.is_empty() {
            self.violation(format!(
                "duplicated responses: second wait returned {} reports",
                dupes.len()
            ));
        }
        self.submitted += submitted;
        self.accepted += accepted;
        self.shed += shed;
        (submitted, accepted, shed)
    }
}

/// Runs the full soak against a fresh daemon on the given clock. See
/// the module docs for the phases and invariants.
pub fn run_soak(config: &SoakConfig, clock: Arc<dyn Clock>) -> SoakReport {
    let daemon = CompileDaemon::new(
        CompileOptions::default(),
        DaemonConfig {
            service: ServiceConfig {
                exec: ExecutorConfig {
                    queue_capacity: config.queue_capacity,
                    deadline_ticks: config.deadline_ticks,
                    breaker_threshold: config.breaker_threshold,
                    ..ExecutorConfig::default()
                },
                workers: config.workers,
                // Generous pipeline budgets; the universe clears them.
                skew_max_events: 50_000_000,
                max_cell_cycles: 100_000_000,
                max_source_bytes: 4 * 1024 * 1024,
                ..ServiceConfig::default()
            },
            cache: CacheConfig {
                byte_budget: 64 << 20,
                negative_ttl_ticks: config.negative_ttl_ticks,
            },
            store: None,
        },
        clock.clone(),
    )
    .with_chaos_panic_marker(CHAOS_MARKER);

    let started = clock.now_ticks();
    let mut driver = Driver {
        daemon,
        rng: SplitMix64::new(config.seed),
        programs: program_universe(),
        jitter_max: config.arrival_jitter_max_ticks,
        clock: clock.clone(),
        poison_per_mille: config.poison_per_mille,
        next_serial: 0,
        outcomes: Vec::new(),
        latencies: Vec::new(),
        submitted: 0,
        accepted: 0,
        shed: 0,
        violations: Vec::new(),
    };

    // Steady phase: waves of exactly queue_capacity against an empty
    // queue — nothing sheds at 1×.
    let mut remaining = config.jobs;
    while remaining > 0 {
        let size = remaining.min(config.queue_capacity.max(1));
        driver.wave(size);
        remaining -= size;
    }

    // Overload phase: one burst per factor.
    let mut overload = Vec::new();
    for &factor in &config.overload_factors {
        let size = config.queue_capacity.max(1) * factor as usize;
        let (submitted, accepted, shed) = driver.wave(size);
        overload.push(OverloadPoint {
            factor,
            submitted,
            accepted,
            shed,
        });
    }

    // Shutdown phase: submit a wave, abort mid-flight, and require
    // exactly one (cancelled) response per accepted job.
    driver.daemon.pause();
    let mut late_ids = Vec::new();
    for _ in 0..config.queue_capacity.max(1) {
        let serial = driver.next_serial;
        driver.next_serial += 1;
        driver.submitted += 1;
        if let Some(id) = driver
            .daemon
            .submit(format!("shutdown#{serial}"), corpus::POLYNOMIAL)
            .id()
        {
            driver.accepted += 1;
            late_ids.push(id);
        } else {
            driver.shed += 1;
        }
    }
    driver.daemon.shutdown(ShutdownMode::Abort);
    let late = driver.daemon.wait(&late_ids);
    if late.len() != late_ids.len() {
        driver.violation(format!(
            "shutdown dropped responses: {} accepted, {} reported",
            late_ids.len(),
            late.len()
        ));
    }
    for r in &late {
        if r.outcome.label() != "timeout" {
            driver.violation(format!(
                "aborted job `{}` ended `{}`, expected cancelled timeout",
                r.name,
                r.outcome.label()
            ));
        }
        driver
            .outcomes
            .push((r.name.clone(), r.outcome.label().to_owned()));
    }
    // Post-shutdown submissions must shed, not vanish.
    if driver
        .daemon
        .submit("late", corpus::POLYNOMIAL)
        .is_accepted()
    {
        driver.violation("daemon accepted a job after shutdown".to_owned());
    }

    // Invariant sweep over the collected outcomes.
    let pool = driver.daemon.pool_stats();
    if pool.max_queue_depth > config.queue_capacity && config.queue_capacity != 0 {
        driver.violation(format!(
            "queue depth {} exceeded capacity {}",
            pool.max_queue_depth, config.queue_capacity
        ));
    }
    let quarantined = driver.daemon.quarantined_names();
    for name in &quarantined {
        if name != POISON_SYNTAX && name != POISON_ICE {
            driver.violation(format!("collateral quarantine of healthy name `{name}`"));
        }
    }
    let mut healthy_bad = Vec::new();
    for (name, label) in &driver.outcomes {
        let is_poison = name.starts_with("poison-")
            || name.starts_with("bomb#")
            || name.starts_with("shutdown#");
        if !is_poison && label != "ok" && label != "degraded" && healthy_bad.len() < 5 {
            healthy_bad.push(format!("healthy job `{name}` ended `{label}`"));
        }
    }
    driver.violations.extend(healthy_bad);

    let mut outcomes = driver.outcomes;
    outcomes.sort();
    let mut latencies = driver.latencies;
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
            latencies[idx]
        }
    };
    let elapsed_ticks = clock.now_ticks().saturating_sub(started);
    let completed = latencies.len() as f64;
    let jobs_per_sec = if elapsed_ticks == 0 {
        0.0
    } else {
        completed * 1_000_000.0 / elapsed_ticks as f64
    };

    SoakReport {
        config: config.clone(),
        outcomes,
        submitted: driver.submitted,
        accepted: driver.accepted,
        shed: driver.shed,
        overload,
        quarantined,
        cache: driver.daemon.cache_stats(),
        max_queue_depth: pool.max_queue_depth,
        elapsed_ticks,
        p50_ticks: percentile(0.50),
        p99_ticks: percentile(0.99),
        jobs_per_sec,
        violations: driver.violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_common::ManualClock;

    fn small() -> SoakConfig {
        SoakConfig {
            jobs: 40,
            queue_capacity: 8,
            workers: 2,
            overload_factors: vec![1, 4],
            ..SoakConfig::default()
        }
    }

    #[test]
    fn small_soak_is_clean_and_sheds_at_overload() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = run_soak(&small(), Arc::new(ManualClock::new(0)));
        std::panic::set_hook(hook);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.accepted > 0);
        // 1× overload sheds nothing; 4× sheds three quarters.
        assert_eq!(report.overload[0].shed, 0);
        assert_eq!(report.overload[1].shed, 3 * 8);
        assert!(report.cache.hit_rate() > 0.5, "{:?}", report.cache);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"warp-serve-bench-v1\""));
        assert!(json.contains("\"violations\": []"));
    }

    #[test]
    fn same_seed_same_outcome_set() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let a = run_soak(&small(), Arc::new(ManualClock::new(0)));
        let b = run_soak(&small(), Arc::new(ManualClock::new(0)));
        std::panic::set_hook(hook);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.quarantined, b.quarantined);
    }

    #[test]
    fn different_seeds_differ() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let a = run_soak(&small(), Arc::new(ManualClock::new(0)));
        let b = run_soak(
            &SoakConfig {
                seed: 99,
                ..small()
            },
            Arc::new(ManualClock::new(0)),
        );
        std::panic::set_hook(hook);
        assert_ne!(a.outcomes, b.outcomes);
    }
}
