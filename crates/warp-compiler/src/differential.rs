//! The differential conformance harness: generated programs through
//! the full pipeline, checked word-for-word against the reference
//! oracle, with automatic shrinking of any disagreement.
//!
//! Each case follows the same script. A seeded program comes out of
//! [`warp_oracle::gen`]; the [`Session`] pipeline compiles it under a
//! wall-clock deadline and a cell-cycle ceiling (a pathological
//! generated program must cost a skipped case, never a hung run); the
//! oracle interprets the HIR sequentially; the selected executors
//! ([`DiffOptions::backend`]) — the cycle-level simulator, the native
//! backend, or both — run the compiled module on the same seeded
//! inputs. Every pair of runs must agree **bitwise** — on every `out`
//! parameter and on every word of the boundary output streams
//! ([`warp_sim::RunReport::out_streams`] vs
//! [`warp_oracle::OracleRun::streams`]), so a reordered or dropped
//! word is caught even when the final memory image looks right. With
//! [`BackendSel::All`] the comparison is three-way (oracle, simulator,
//! native, pairwise), and a mismatch names the disagreeing pair —
//! which localizes a fault to one executor when the other two agree.
//! To make bit-equality meaningful the driver compiles with
//! reassociation disabled; everything else runs at default options.
//!
//! A disagreement is handed to [`warp_oracle::shrink`] with "still a
//! confirmed mismatch" as the predicate — candidates the compiler
//! rejects or the oracle cannot run are automatically uninteresting —
//! and the reduced program is written to the repro directory as a
//! self-describing `.w2` file whose header comment carries the exact
//! `w2c --differential-check` command that replays it.
//!
//! An injected fault plan ([`DiffOptions::inject`]) turns the harness
//! on itself: under, say, `skew=-1` every case should mismatch (or
//! trip a machine invariant), which is how the harness's own detection
//! power is audited in CI.

use crate::{audit, CompileFailure, CompileOptions, Session, SessionCtrl};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use w2_lang::ast::Chan;
use w2_lang::hir::HirModule;
use w2_lang::parse_and_check;
use w2_lang::parser::parse;
use warp_common::{splitmix64, CancelToken, SystemClock};
use warp_host::HostMemory;
use warp_native::{NativeError, NativeOptions};
use warp_oracle::shrink::print_compact;
use warp_oracle::{generate, interpret_run, shrink, GenConfig, ShrinkStats};
use warp_sim::{FaultPlan, SimError, SimOptions};

/// Which compiled-module executors a differential case runs against
/// the oracle. `All` is the three-way mode: oracle, simulator, and
/// native compared pairwise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendSel {
    /// Oracle vs the cycle-level simulator (the historical harness).
    #[default]
    Sim,
    /// Oracle vs the native backend only.
    Native,
    /// Three-way: oracle, simulator, and native, compared pairwise.
    All,
}

impl BackendSel {
    /// `true` when the simulator participates.
    pub fn runs_sim(self) -> bool {
        matches!(self, BackendSel::Sim | BackendSel::All)
    }

    /// `true` when the native backend participates.
    pub fn runs_native(self) -> bool {
        matches!(self, BackendSel::Native | BackendSel::All)
    }
}

impl fmt::Display for BackendSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSel::Sim => write!(f, "sim"),
            BackendSel::Native => write!(f, "native"),
            BackendSel::All => write!(f, "all"),
        }
    }
}

impl std::str::FromStr for BackendSel {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendSel, String> {
        match s {
            "sim" => Ok(BackendSel::Sim),
            "native" => Ok(BackendSel::Native),
            "all" => Ok(BackendSel::All),
            other => Err(format!(
                "unknown backend `{other}` (expected sim|native|all)"
            )),
        }
    }
}

/// Configuration for one differential run.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Number of generated cases.
    pub cases: usize,
    /// Root seed; case `i` derives its program and input seeds from it.
    pub seed: u64,
    /// Program-generator shape budget.
    pub gen: GenConfig,
    /// Compile options. Reassociation is forced off internally so the
    /// oracle and the compiled code evaluate identical f32 expressions.
    pub compile: CompileOptions,
    /// Fault plan injected into every simulation (`None` = clean runs).
    pub inject: Option<FaultPlan>,
    /// Where shrunk repros are written (`None` = don't write files).
    pub repro_dir: Option<PathBuf>,
    /// Per-case wall-clock budget covering compile and simulation;
    /// `Duration::ZERO` disables the deadline.
    pub case_timeout: Duration,
    /// Ceiling on the dynamic cell-program length
    /// ([`SessionCtrl::max_cell_cycles`]); 0 = unlimited.
    pub max_cell_cycles: u64,
    /// Predicate-call budget for the shrinker.
    pub shrink_budget: usize,
    /// Modulo-schedule innermost loops ([`SessionCtrl::pipeline`]).
    /// Both settings must agree bitwise with the oracle; CI runs the
    /// campaign with each.
    pub pipeline: bool,
    /// Which executors run the compiled module against the oracle.
    pub backend: BackendSel,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            cases: 50,
            seed: 1,
            gen: GenConfig::default(),
            compile: CompileOptions::default(),
            inject: None,
            repro_dir: None,
            case_timeout: Duration::from_secs(10),
            max_cell_cycles: 2_000_000,
            shrink_budget: 3_000,
            pipeline: true,
            backend: BackendSel::default(),
        }
    }
}

/// What happened to one program.
#[derive(Clone, Debug)]
pub enum CaseOutcome {
    /// Every executor pair agreed bitwise.
    Agree,
    /// The compiler rejected the program (diagnostics). For generated
    /// programs this counts against the generator, not the compiler.
    Rejected(String),
    /// A budget stopped the case: compile deadline, size ceiling, or
    /// simulation deadline.
    Budget(String),
    /// The oracle itself could not execute the program.
    OracleError(String),
    /// Two executors diverged (or one failed outright while the oracle
    /// ran clean). The payload names the disagreeing pair and the
    /// first diverging word.
    Mismatch(String),
}

/// A confirmed, shrunk disagreement.
#[derive(Clone, Debug)]
pub struct MismatchCase {
    /// Index in the generated sequence.
    pub case_index: usize,
    /// Seed that regenerates the original program.
    pub program_seed: u64,
    /// Seed for [`audit::seeded_inputs`].
    pub input_seed: u64,
    /// The original generated source.
    pub source: String,
    /// The shrunk source (canonical form).
    pub shrunk: String,
    /// Shrinker counters.
    pub shrink_stats: ShrinkStats,
    /// First observed divergence, on the original program.
    pub detail: String,
    /// Repro file, when a repro directory was configured.
    pub repro: Option<PathBuf>,
}

/// Aggregate result of [`run_differential`].
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Cases attempted.
    pub cases: usize,
    /// Bitwise agreements.
    pub agree: usize,
    /// Compiler rejections (generator defects).
    pub rejected: usize,
    /// Budget-stopped cases.
    pub budget: usize,
    /// Oracle execution failures.
    pub oracle_errors: usize,
    /// Confirmed disagreements, shrunk.
    pub mismatches: Vec<MismatchCase>,
    /// One example rejection, for diagnosing the generator.
    pub first_rejection: Option<String>,
}

impl DiffReport {
    /// `true` when the run is evidence of conformance: every case
    /// compiled, ran, and agreed.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty() && self.rejected == 0 && self.oracle_errors == 0
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential: {} case(s) — {} agree, {} mismatch, {} rejected, {} budget, {} oracle error(s)",
            self.cases,
            self.agree,
            self.mismatches.len(),
            self.rejected,
            self.budget,
            self.oracle_errors,
        )?;
        if let Some(r) = &self.first_rejection {
            writeln!(f, "first rejection:\n{r}")?;
        }
        for m in &self.mismatches {
            writeln!(
                f,
                "mismatch (case {}, program seed {:#018x}, input seed {:#018x}): {}",
                m.case_index, m.program_seed, m.input_seed, m.detail
            )?;
            match &m.repro {
                Some(p) => writeln!(f, "  shrunk repro: {}", p.display())?,
                None => writeln!(f, "  shrunk to:\n{}", m.shrunk)?,
            }
        }
        Ok(())
    }
}

/// Runs `opts.cases` generated programs through compile → simulate →
/// compare, shrinking and recording every disagreement.
pub fn run_differential(opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport {
        cases: opts.cases,
        ..DiffReport::default()
    };
    for i in 0..opts.cases {
        let program_seed = splitmix64(opts.seed.wrapping_add(i as u64));
        let input_seed = splitmix64(program_seed);
        let prog = generate(program_seed, &opts.gen);
        match check_case(&prog.source, input_seed, opts) {
            CaseOutcome::Agree => report.agree += 1,
            CaseOutcome::Rejected(d) => {
                report.rejected += 1;
                report
                    .first_rejection
                    .get_or_insert_with(|| format!("{d}\n--- source ---\n{}", prog.source));
            }
            CaseOutcome::Budget(_) => report.budget += 1,
            CaseOutcome::OracleError(d) => {
                report.oracle_errors += 1;
                report.first_rejection.get_or_insert_with(|| {
                    format!("oracle error: {d}\n--- source ---\n{}", prog.source)
                });
            }
            CaseOutcome::Mismatch(detail) => {
                let (shrunk, shrink_stats) = shrink(&prog.source, opts.shrink_budget, |src| {
                    matches!(check_case(src, input_seed, opts), CaseOutcome::Mismatch(_))
                });
                let mut case = MismatchCase {
                    case_index: i,
                    program_seed,
                    input_seed,
                    source: prog.source.clone(),
                    shrunk,
                    shrink_stats,
                    detail,
                    repro: None,
                };
                if let Some(dir) = &opts.repro_dir {
                    match write_repro(dir, &case, opts.inject.as_ref()) {
                        Ok(path) => case.repro = Some(path),
                        Err(e) => eprintln!("warning: could not write repro for case {i}: {e}"),
                    }
                }
                report.mismatches.push(case);
            }
        }
    }
    report
}

/// Compiles and runs one program against the oracle. This is the exact
/// predicate the shrinker uses, and the engine behind
/// `w2c FILE --differential-check`.
pub fn check_case(source: &str, input_seed: u64, opts: &DiffOptions) -> CaseOutcome {
    let cancel = if opts.case_timeout.is_zero() {
        CancelToken::none()
    } else {
        let budget_us = u64::try_from(opts.case_timeout.as_micros()).unwrap_or(u64::MAX);
        CancelToken::with_deadline(Arc::new(SystemClock::new()), budget_us)
    };

    let mut copts = opts.compile.clone();
    // Height reduction reassociates +/* chains; the oracle evaluates the
    // source expression tree, so bit-equality needs this off.
    copts.lower.reassociate = false;
    let session = Session::new(copts).with_ctrl(SessionCtrl {
        cancel: cancel.clone(),
        max_cell_cycles: opts.max_cell_cycles,
        pipeline: opts.pipeline,
        ..SessionCtrl::default()
    });
    let module = match session.try_compile(source) {
        Ok(m) => m,
        Err(CompileFailure::Diagnostics(d)) => return CaseOutcome::Rejected(d.to_string()),
        Err(budget) => return CaseOutcome::Budget(budget.to_string()),
    };

    // The oracle interprets the HIR; variable ids are shared with the
    // compiled module's IR, so host memory can be built from either.
    let hir = match parse_and_check(source) {
        Ok(h) => h,
        Err(d) => return CaseOutcome::Rejected(d.to_string()),
    };
    let owned = audit::seeded_inputs(&module, input_seed);
    let inputs: Vec<(&str, &[f32])> = owned
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();
    let mut oracle_host = HostMemory::new(&module.ir.vars);
    for (name, data) in &inputs {
        if let Err(e) = oracle_host.set(name, data) {
            return CaseOutcome::OracleError(e.to_string());
        }
    }
    let oracle = match interpret_run(&hir, &oracle_host) {
        Ok(r) => r,
        Err(e) => return CaseOutcome::OracleError(e),
    };

    // Collect every participating executor's outputs, oracle first,
    // then compare all pairs — a mismatch names the disagreeing pair,
    // so with three executors a lone faulty one is localized.
    let mut outs: Vec<ExecOut> = vec![ExecOut {
        name: "oracle",
        host: oracle.host,
        streams: oracle.streams.into_iter().collect(),
    }];

    if opts.backend.runs_sim() {
        let sim_opts = SimOptions {
            plan: opts.inject.clone().unwrap_or_default(),
            cancel: cancel.clone(),
            ..SimOptions::default()
        };
        let sim = match module.run_audited(module.n_cells, module.skew.min_skew, &inputs, &sim_opts)
        {
            Ok(r) => r,
            Err(fault) => {
                if let SimError::Interrupted { .. } = fault.error {
                    return CaseOutcome::Budget(fault.error.to_string());
                }
                return CaseOutcome::Mismatch(format!(
                    "simulator failed where the oracle ran clean: {}",
                    fault.error
                ));
            }
        };
        outs.push(ExecOut {
            name: "simulator",
            host: sim.host,
            streams: sim.out_streams,
        });
    }

    if opts.backend.runs_native() {
        let native_opts = NativeOptions {
            cancel,
            ..NativeOptions::default()
        };
        let native = match module.run_native(&inputs, &native_opts) {
            Ok(r) => r,
            Err(crate::NativeRunError::Native(NativeError::Interrupted(reason))) => {
                return CaseOutcome::Budget(reason.to_string());
            }
            Err(e) => {
                return CaseOutcome::Mismatch(format!(
                    "native failed where the oracle ran clean: {e}"
                ));
            }
        };
        outs.push(ExecOut {
            name: "native",
            host: native.host,
            streams: native.out_streams,
        });
    }

    for i in 0..outs.len() {
        for j in i + 1..outs.len() {
            if let Some(detail) = first_divergence(&hir, &outs[i], &outs[j]) {
                return CaseOutcome::Mismatch(detail);
            }
        }
    }

    CaseOutcome::Agree
}

/// One executor's observable output: final host memory plus boundary
/// output streams in send order. The common shape the pairwise
/// comparison works over.
struct ExecOut {
    name: &'static str,
    host: HostMemory,
    streams: BTreeMap<Chan, Vec<f32>>,
}

/// Finds the first bitwise divergence between two executors' outputs:
/// `out` parameters word-for-word, then boundary streams word-for-word
/// and in order — which catches dropped or reordered words that happen
/// to leave the memory image intact. `None` means full agreement.
fn first_divergence(hir: &HirModule, a: &ExecOut, b: &ExecOut) -> Option<String> {
    for (var, dir) in &hir.params {
        if *dir != w2_lang::ast::ParamDir::Out {
            continue;
        }
        let name = &hir.vars[*var].name;
        let got = a.host.get(name).unwrap_or(&[]);
        let want = b.host.get(name).unwrap_or(&[]);
        for (k, (g, w)) in got.iter().zip(want).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Some(format!(
                    "out variable `{name}[{k}]`: {} {g:?} ({:#010x}) vs {} {w:?} ({:#010x})",
                    a.name,
                    g.to_bits(),
                    b.name,
                    w.to_bits()
                ));
            }
        }
    }

    let chans: BTreeSet<_> = a.streams.keys().chain(b.streams.keys()).copied().collect();
    for chan in chans {
        static EMPTY: Vec<f32> = Vec::new();
        let got = a.streams.get(&chan).unwrap_or(&EMPTY);
        let want = b.streams.get(&chan).unwrap_or(&EMPTY);
        if got.len() != want.len() {
            return Some(format!(
                "stream {chan:?}: {} delivered {} word(s), {} {}",
                a.name,
                got.len(),
                b.name,
                want.len()
            ));
        }
        for (k, (g, w)) in got.iter().zip(want).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Some(format!(
                    "stream {chan:?} word {k}: {} {g:?} vs {} {w:?}",
                    a.name, b.name
                ));
            }
        }
    }
    None
}

/// Writes the shrunk repro (compact layout, with a header comment
/// carrying the replay command) plus an `.orig.w2` sidecar with the
/// unshrunk program. Returns the repro path.
fn write_repro(
    dir: &Path,
    case: &MismatchCase,
    inject: Option<&FaultPlan>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("case-{:016x}", case.program_seed);
    let path = dir.join(format!("{stem}.w2"));
    let compact = match parse(&case.shrunk) {
        Ok(ast) => print_compact(&ast),
        Err(_) => case.shrunk.clone(),
    };
    let inject_flag = inject.map(|p| format!(" --inject {p}")).unwrap_or_default();
    let text = format!(
        "/* differential mismatch: {} */\n\
         /* reproduce: w2c {stem}.w2 --differential-check --seed {}{} */\n\
         {compact}",
        case.detail.replace("*/", "* /"),
        case.input_seed,
        inject_flag,
    );
    std::fs::write(&path, text)?;
    std::fs::write(dir.join(format!("{stem}.orig.w2")), &case.source)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> DiffOptions {
        DiffOptions {
            cases: 5,
            seed: 1,
            ..DiffOptions::default()
        }
    }

    #[test]
    fn clean_compiler_agrees_on_generated_programs() {
        let report = run_differential(&quick_opts());
        assert!(report.clean(), "{report}");
        assert_eq!(report.agree, 5, "{report}");
    }

    #[test]
    fn corpus_program_checks_clean() {
        let status = check_case(crate::corpus::POLYNOMIAL, 7, &quick_opts());
        assert!(matches!(status, CaseOutcome::Agree), "{status:?}");
    }

    #[test]
    fn injected_skew_fault_is_caught_and_shrinks() {
        let dir = std::env::temp_dir().join(format!(
            "warp-diff-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DiffOptions {
            cases: 3,
            seed: 1,
            inject: Some("skew=-1".parse().expect("valid spec")),
            repro_dir: Some(dir.clone()),
            ..DiffOptions::default()
        };
        let report = run_differential(&opts);
        assert!(
            !report.mismatches.is_empty(),
            "skew -1 must diverge somewhere: {report}"
        );
        let m = &report.mismatches[0];
        let repro = m.repro.as_ref().expect("repro written");
        let text = std::fs::read_to_string(repro).expect("repro readable");
        assert!(text.contains("--differential-check"), "{text}");
        // The shrunk body (after the two comment lines) stays small.
        let body_lines = text.lines().filter(|l| !l.starts_with("/*")).count();
        assert!(body_lines <= 10, "{body_lines} lines:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_word_fault_is_caught_without_invariant_trip() {
        // CorruptWord trips no machine invariant — only the oracle
        // comparison can see it, which is the point of this harness.
        let opts = DiffOptions {
            inject: Some("seed=3,corrupt=X:0".parse().expect("valid spec")),
            ..quick_opts()
        };
        let status = check_case(crate::corpus::POLYNOMIAL, 7, &opts);
        assert!(matches!(status, CaseOutcome::Mismatch(_)), "{status:?}");
    }

    #[test]
    fn three_way_harness_agrees_on_generated_programs() {
        let report = run_differential(&DiffOptions {
            backend: BackendSel::All,
            ..quick_opts()
        });
        assert!(report.clean(), "{report}");
        assert_eq!(report.agree, 5, "{report}");
    }

    #[test]
    fn native_only_harness_agrees_on_the_corpus() {
        let opts = DiffOptions {
            backend: BackendSel::Native,
            ..quick_opts()
        };
        let status = check_case(crate::corpus::POLYNOMIAL, 7, &opts);
        assert!(matches!(status, CaseOutcome::Agree), "{status:?}");
    }

    #[test]
    fn three_way_mismatch_localizes_the_corrupted_executor() {
        // The fault plan corrupts a word inside the *simulator* only;
        // oracle and native still agree, so the three-way comparison
        // must blame a pair that includes the simulator.
        let opts = DiffOptions {
            inject: Some("seed=3,corrupt=X:0".parse().expect("valid spec")),
            backend: BackendSel::All,
            ..quick_opts()
        };
        let status = check_case(crate::corpus::POLYNOMIAL, 7, &opts);
        let CaseOutcome::Mismatch(detail) = status else {
            panic!("expected a mismatch, got {status:?}");
        };
        assert!(detail.contains("simulator"), "{detail}");
        // Sanity: oracle and native agree when the corruption hits only
        // the simulated machine.
        let native_only = DiffOptions {
            backend: BackendSel::Native,
            ..opts
        };
        let status = check_case(crate::corpus::POLYNOMIAL, 7, &native_only);
        assert!(matches!(status, CaseOutcome::Agree), "{status:?}");
    }

    #[test]
    fn backend_sel_parses_and_displays() {
        assert_eq!("all".parse::<BackendSel>().unwrap(), BackendSel::All);
        assert_eq!("sim".parse::<BackendSel>().unwrap(), BackendSel::Sim);
        assert_eq!("native".parse::<BackendSel>().unwrap(), BackendSel::Native);
        assert!("oracle".parse::<BackendSel>().is_err());
        assert_eq!(BackendSel::All.to_string(), "all");
        assert!(BackendSel::All.runs_sim() && BackendSel::All.runs_native());
        assert!(!BackendSel::Sim.runs_native());
        assert!(!BackendSel::Native.runs_sim());
    }
}
