//! The driver's pass pipeline: one named pass per Figure 6-1 stage.
//!
//! The paper's compiler is explicitly staged (Figure 6-1):
//!
//! ```text
//! W2 source ──► front end ──► flow analysis ──► decomposition
//!      ──► cell code generation ──► skew & queue analysis
//!      ──► IU code generation ──► host code generation
//! ```
//!
//! [`Session`](crate::Session) runs exactly the passes listed in
//! [`PIPELINE`], in order. Each pass is observable (timed, and its
//! output artifact can be dumped with `w2c --dump-after <pass>`); the
//! names here are the single source of truth for the CLI, the metrics
//! in [`Metrics::per_pass`](crate::Metrics::per_pass), and the tests.

/// Descriptor of one driver pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassInfo {
    /// Pass name as accepted by `w2c --dump-after`.
    pub name: &'static str,
    /// The Figure 6-1 stage the pass implements.
    pub stage: &'static str,
    /// Kind tag of the artifact the pass produces
    /// ([`Artifact::kind`](warp_common::Artifact::kind)).
    pub artifact: &'static str,
}

/// The nine passes of the driver, in execution order. The paper's
/// "flow analysis" box covers three passes here: the
/// communication-cycle analysis of §5.1.1 (`comm`), HIR→IR lowering
/// (`lower`), and the pattern-rewrite mid-end (`rewrite`) that
/// canonicalizes and optimizes the DAGs to fixpoint.
pub const PIPELINE: [PassInfo; 9] = [
    PassInfo {
        name: "frontend",
        stage: "front end",
        artifact: "hir",
    },
    PassInfo {
        name: "comm",
        stage: "flow analysis: communication (§5.1.1)",
        artifact: "comm-report",
    },
    PassInfo {
        name: "lower",
        stage: "flow analysis: lowering & local optimization",
        artifact: "cell-ir",
    },
    PassInfo {
        name: "rewrite",
        stage: "flow analysis: pattern rewriting (§6.1)",
        artifact: "rewrite-stats",
    },
    PassInfo {
        name: "decompose",
        stage: "computation decomposition",
        artifact: "decomposition",
    },
    PassInfo {
        name: "cell-codegen",
        stage: "cell code generation",
        artifact: "cell-ucode",
    },
    PassInfo {
        name: "skew",
        stage: "skew & queue analysis (§6.2)",
        artifact: "skew-report",
    },
    PassInfo {
        name: "iu-codegen",
        stage: "IU code generation (§6.3)",
        artifact: "iu-ucode",
    },
    PassInfo {
        name: "host-codegen",
        stage: "host code generation",
        artifact: "host-program",
    },
];

/// Looks up a pass descriptor by name.
pub fn find_pass(name: &str) -> Option<&'static PassInfo> {
    PIPELINE.iter().find(|p| p.name == name)
}

/// The pass names in execution order.
pub fn pass_names() -> impl Iterator<Item = &'static str> {
    PIPELINE.iter().map(|p| p.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_names_are_unique_and_ordered() {
        let names: Vec<_> = pass_names().collect();
        assert_eq!(names.len(), 9);
        for (i, n) in names.iter().enumerate() {
            assert_eq!(names.iter().position(|m| m == n), Some(i), "duplicate {n}");
        }
        assert_eq!(names.first(), Some(&"frontend"));
        assert_eq!(names.last(), Some(&"host-codegen"));
    }

    #[test]
    fn find_pass_resolves_known_and_rejects_unknown() {
        assert_eq!(find_pass("lower").map(|p| p.artifact), Some("cell-ir"));
        assert!(find_pass("linker").is_none());
    }
}
