//! A content-addressed, in-memory compile cache.
//!
//! Processor-array compilers serve the same compiled artifact to many
//! requests: one benchmark kernel is compiled once and re-run across
//! parameter sweeps, classes of clients, and soak iterations. The
//! always-on daemon therefore fronts its worker pool with this cache.
//!
//! * **Keying.** [`cache_key`] hashes the source bytes together with
//!   every configuration field that affects compiler output: the full
//!   [`CompileOptions`] (via its stable-in-process `Debug` rendering)
//!   and the output-affecting [`SessionCtrl`] fields
//!   (`skew_max_events`, `max_cell_cycles`, `max_source_bytes`,
//!   `pipeline`, `rewrite_fuel`). The cancellation token is deliberately
//!   excluded — it never changes what a *completed* compile produces.
//!   Keys are 128-bit [`ContentKey`]s from `warp-common`'s stable
//!   FNV-1a, so they do not depend on `RandomState` seeding.
//! * **Single-flight.** N concurrent requests for one key compile once:
//!   the first becomes the leader, the rest block on a condvar and
//!   receive the leader's result. The in-flight marker is cleared by a
//!   drop guard, so a panicking compile (contained by the pool's
//!   `catch_unwind` above us) still wakes the followers — one of them
//!   simply becomes the next leader.
//! * **Negative caching.** Deterministic failures — diagnostics,
//!   `TooLarge`, `TimingOverflow` — are cached with a TTL so a crasher
//!   or always-rejected program cannot stampede the pool with repeated
//!   doomed compiles. `Interrupted` (cancellation/deadline) is *not*
//!   cached: it reflects load, not the program.
//! * **Eviction.** Positive entries are evicted least-recently-used
//!   once the estimated resident bytes exceed the configured budget.
//!   Negative entries expire by TTL and are also dropped first under
//!   pressure (they are cheap to recreate).
//!
//! All counters needed by the `stats`/`cache` daemon verbs and the
//! soak harness's hit-rate assertion are kept in [`CacheStats`].

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use warp_common::{Clock, ContentKey, StableHasher};

use crate::{CompileFailure, CompileOptions, CompiledModule, SessionCtrl};

/// Knobs of the [`CompileCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Budget on the estimated resident bytes of positive entries
    /// (`0` = unbounded). Exceeding it evicts least-recently-used
    /// entries after each insert.
    pub byte_budget: u64,
    /// Lifetime of a negative (failure) entry in clock ticks
    /// (`0` = negative caching disabled).
    pub negative_ttl_ticks: u64,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            byte_budget: 64 << 20,
            // 60 s at the µs tick rate of `SystemClock`.
            negative_ttl_ticks: 60_000_000,
        }
    }
}

/// Monotonic cache counters, snapshotted by [`CompileCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups served from a positive entry.
    pub hits: u64,
    /// Lookups served from a live negative entry.
    pub negative_hits: u64,
    /// Lookups that found nothing (including expired negatives).
    pub misses: u64,
    /// Positive entries inserted.
    pub inserts: u64,
    /// Negative entries inserted.
    pub negative_inserts: u64,
    /// Positive entries evicted by the byte budget.
    pub evictions: u64,
    /// Negative entries dropped because their TTL had passed.
    pub expired: u64,
    /// Requests that waited for another request's in-flight compile
    /// instead of compiling themselves.
    pub coalesced: u64,
    /// Current estimated resident bytes of positive entries.
    pub resident_bytes: u64,
    /// Current number of entries (positive + live negative).
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (positive or
    /// negative), in `[0, 1]`. Zero before any lookup.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.hits + self.negative_hits) as f64 / self.lookups as f64
        }
    }
}

/// The content-addressed key for one compile request: source bytes
/// plus every option field that affects the output. Two requests with
/// the same key are guaranteed (in-process) to produce the same
/// module or the same deterministic failure.
pub fn cache_key(source: &str, opts: &CompileOptions, ctrl: &SessionCtrl) -> ContentKey {
    let mut h = StableHasher::new();
    let mut h2 = StableHasher::with_seed(0x7761_7270_6363_6368); // "warpccch"
    for h in [&mut h, &mut h2] {
        h.write_str(source);
        // `Debug` of CompileOptions covers machine/iu/lower/skew_method
        // exhaustively and keeps working when fields are added.
        h.write_str(&format!("{opts:?}"));
        h.write_u64(ctrl.skew_max_events);
        h.write_u64(ctrl.max_cell_cycles);
        h.write_u64(ctrl.max_source_bytes);
        h.write_u64(u64::from(ctrl.pipeline));
        match ctrl.rewrite_fuel {
            None => h.write_u64(u64::MAX),
            Some(fuel) => {
                h.write_u64(1);
                h.write_u64(fuel);
            }
        }
        // The backend does not change the compiled artifact, but it is
        // part of the request identity: cached entries carry serving
        // metadata (and future backends may specialize), so sim and
        // native requests must not alias.
        h.write_u64(match ctrl.backend {
            crate::ExecBackend::Sim => 0,
            crate::ExecBackend::Native => 1,
        });
    }
    ContentKey {
        lo: h.finish(),
        hi: h2.finish(),
    }
}

/// Rough resident size of a module: the µcode stores dominate, plus a
/// fixed overhead for the IR tables. Only relative accuracy matters —
/// the budget trades off "how many modules stay warm".
pub fn estimate_module_bytes(module: &CompiledModule) -> u64 {
    4096 + u64::from(module.metrics.cell_ucode) * 64
        + module.metrics.iu_ucode * 64
        + module.name.len() as u64
}

/// `true` for failures that are a deterministic property of the
/// (source, options) pair and therefore safe to cache negatively.
/// `Interrupted` reflects load (deadline/cancel), not the program.
fn is_deterministic_failure(failure: &CompileFailure) -> bool {
    match failure {
        CompileFailure::Diagnostics(_)
        | CompileFailure::TooLarge { .. }
        | CompileFailure::TimingOverflow { .. } => true,
        CompileFailure::Interrupted { .. } => false,
    }
}

enum Entry {
    Positive {
        module: Arc<CompiledModule>,
        bytes: u64,
        last_used: u64,
    },
    Negative {
        failure: CompileFailure,
        expires_at: u64,
    },
}

struct Inner {
    entries: BTreeMap<ContentKey, Entry>,
    /// Keys with a compile in flight (single-flight leaders).
    in_flight: std::collections::BTreeSet<ContentKey>,
    stats: CacheStats,
    /// Recency clock for LRU.
    tick: u64,
}

/// The outcome of one [`CompileCache::get_or_compile`] call, with the
/// provenance the daemon reports per job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a positive entry.
    Hit,
    /// Served from a live negative entry.
    NegativeHit,
    /// This request compiled (it was the single-flight leader, or the
    /// leader it waited for failed non-deterministically).
    Compiled,
    /// This request waited for a concurrent identical request and
    /// received its result.
    Coalesced,
}

impl CacheOutcome {
    /// `true` when the result came from the cache or a coalesced
    /// in-flight compile rather than a fresh compile.
    pub fn served_without_compile(&self) -> bool {
        !matches!(self, CacheOutcome::Compiled)
    }
}

/// A concurrency-safe content-addressed compile cache. See the module
/// docs for the keying, single-flight, negative-caching, and eviction
/// contracts.
pub struct CompileCache {
    config: CacheConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
    /// Followers of an in-flight compile wait here.
    flight: Condvar,
}

/// Clears the in-flight marker even if the leader's compile panics.
struct FlightGuard<'a> {
    cache: &'a CompileCache,
    key: ContentKey,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.cache.lock();
        inner.in_flight.remove(&self.key);
        self.cache.flight.notify_all();
    }
}

impl CompileCache {
    /// An empty cache over the given clock (the clock drives negative
    /// TTLs; recency is a logical counter).
    pub fn new(config: CacheConfig, clock: Arc<dyn Clock>) -> CompileCache {
        CompileCache {
            config,
            clock,
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                in_flight: std::collections::BTreeSet::new(),
                stats: CacheStats::default(),
                tick: 0,
            }),
            flight: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// A snapshot of the counters (with `resident_bytes`/`entries`
    /// recomputed to the current state).
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        inner.stats
    }

    /// Looks `key` up; on a miss, runs `compile` (single-flight: if an
    /// identical request is already compiling, waits for it instead)
    /// and populates the cache. Returns the result plus where it came
    /// from.
    pub fn get_or_compile(
        &self,
        key: ContentKey,
        compile: impl FnOnce() -> Result<CompiledModule, CompileFailure>,
    ) -> (Result<Arc<CompiledModule>, CompileFailure>, CacheOutcome) {
        let mut inner = self.lock();
        inner.stats.lookups += 1;
        let mut waited = false;
        loop {
            // Serve from an existing entry.
            let now = self.clock.now_ticks();
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.get_mut(&key) {
                Some(Entry::Positive {
                    module, last_used, ..
                }) => {
                    *last_used = tick;
                    let module = module.clone();
                    inner.stats.hits += 1;
                    let outcome = if waited {
                        CacheOutcome::Coalesced
                    } else {
                        CacheOutcome::Hit
                    };
                    return (Ok(module), outcome);
                }
                Some(Entry::Negative {
                    failure,
                    expires_at,
                }) => {
                    if now < *expires_at {
                        let failure = failure.clone();
                        inner.stats.negative_hits += 1;
                        inner.stats.entries = inner.entries.len() as u64;
                        let outcome = if waited {
                            CacheOutcome::Coalesced
                        } else {
                            CacheOutcome::NegativeHit
                        };
                        return (Err(failure), outcome);
                    }
                    inner.entries.remove(&key);
                    inner.stats.expired += 1;
                }
                None => {}
            }
            // Miss: either wait for the in-flight leader or become it.
            if inner.in_flight.contains(&key) {
                waited = true;
                inner.stats.coalesced += 1;
                inner = self
                    .flight
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            inner.stats.misses += 1;
            inner.in_flight.insert(key);
            drop(inner);

            let guard = FlightGuard { cache: self, key };
            let result = compile();
            let out = match result {
                Ok(module) => {
                    let module = Arc::new(module);
                    let bytes = estimate_module_bytes(&module);
                    let mut inner = self.lock();
                    inner.tick += 1;
                    let tick = inner.tick;
                    inner.entries.insert(
                        key,
                        Entry::Positive {
                            module: module.clone(),
                            bytes,
                            last_used: tick,
                        },
                    );
                    inner.stats.inserts += 1;
                    self.evict_over_budget(&mut inner);
                    self.refresh_gauges(&mut inner);
                    Ok(module)
                }
                Err(failure) => {
                    if self.config.negative_ttl_ticks != 0 && is_deterministic_failure(&failure) {
                        let expires_at = self
                            .clock
                            .now_ticks()
                            .saturating_add(self.config.negative_ttl_ticks);
                        let mut inner = self.lock();
                        inner.entries.insert(
                            key,
                            Entry::Negative {
                                failure: failure.clone(),
                                expires_at,
                            },
                        );
                        inner.stats.negative_inserts += 1;
                        self.refresh_gauges(&mut inner);
                    }
                    Err(failure)
                }
            };
            drop(guard);
            return (out, CacheOutcome::Compiled);
        }
    }

    /// Drops every entry (operator `cache clear`). Counters are kept;
    /// gauges reset.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        self.refresh_gauges(&mut inner);
    }

    /// `true` when `key` is resident (positive, or unexpired negative).
    /// A pure probe: touches neither the counters nor the LRU order.
    pub fn contains(&self, key: ContentKey) -> bool {
        let inner = self.lock();
        match inner.entries.get(&key) {
            Some(Entry::Positive { .. }) => true,
            Some(Entry::Negative { expires_at, .. }) => self.clock.now_ticks() < *expires_at,
            None => false,
        }
    }

    /// Number of entries currently resident (positive + negative).
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn positive_bytes(inner: &Inner) -> u64 {
        inner
            .entries
            .values()
            .map(|e| match e {
                Entry::Positive { bytes, .. } => *bytes,
                Entry::Negative { .. } => 0,
            })
            .sum()
    }

    fn evict_over_budget(&self, inner: &mut Inner) {
        if self.config.byte_budget == 0 {
            return;
        }
        while Self::positive_bytes(inner) > self.config.byte_budget {
            // Expired negatives go first (free), then the LRU positive.
            let now = self.clock.now_ticks();
            let dead: Vec<ContentKey> = inner
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Negative { expires_at, .. } if now >= *expires_at => Some(*k),
                    _ => None,
                })
                .collect();
            for k in &dead {
                inner.entries.remove(k);
                inner.stats.expired += 1;
            }
            let victim = inner
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Positive { last_used, .. } => Some((*last_used, *k)),
                    Entry::Negative { .. } => None,
                })
                .min();
            match victim {
                Some((_, k)) => {
                    inner.entries.remove(&k);
                    inner.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    fn refresh_gauges(&self, inner: &mut Inner) {
        inner.stats.resident_bytes = Self::positive_bytes(inner);
        inner.stats.entries = inner.entries.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use std::sync::atomic::{AtomicU32, Ordering};
    use warp_common::ManualClock;

    fn compile_ok() -> Result<CompiledModule, CompileFailure> {
        crate::Session::new(CompileOptions::default()).try_compile(corpus::POLYNOMIAL)
    }

    fn cache(budget: u64, ttl: u64) -> CompileCache {
        CompileCache::new(
            CacheConfig {
                byte_budget: budget,
                negative_ttl_ticks: ttl,
            },
            Arc::new(ManualClock::new(0)),
        )
    }

    #[test]
    fn key_is_stable_and_sensitive_to_source_and_options() {
        let opts = CompileOptions::default();
        let ctrl = SessionCtrl::default();
        let k1 = cache_key("module a", &opts, &ctrl);
        assert_eq!(k1, cache_key("module a", &opts, &ctrl));
        assert_ne!(k1, cache_key("module b", &opts, &ctrl));
        let ctrl2 = SessionCtrl {
            pipeline: false,
            ..SessionCtrl::default()
        };
        assert_ne!(k1, cache_key("module a", &opts, &ctrl2));
        let ctrl3 = SessionCtrl {
            rewrite_fuel: Some(3),
            ..SessionCtrl::default()
        };
        assert_ne!(k1, cache_key("module a", &opts, &ctrl3));
        // Requests for different execution backends must not alias.
        let ctrl_native = SessionCtrl {
            backend: crate::ExecBackend::Native,
            ..SessionCtrl::default()
        };
        assert_ne!(k1, cache_key("module a", &opts, &ctrl_native));
        // The cancel token does NOT key the cache.
        let ctrl4 = SessionCtrl {
            cancel: warp_common::CancelToken::new(Arc::new(ManualClock::new(9))),
            ..SessionCtrl::default()
        };
        assert_eq!(k1, cache_key("module a", &opts, &ctrl4));
    }

    #[test]
    fn second_lookup_hits_without_recompiling() {
        let c = cache(0, 0);
        let key = cache_key(
            corpus::POLYNOMIAL,
            &CompileOptions::default(),
            &SessionCtrl::default(),
        );
        let compiles = AtomicU32::new(0);
        let (r1, o1) = c.get_or_compile(key, || {
            compiles.fetch_add(1, Ordering::SeqCst);
            compile_ok()
        });
        assert!(r1.is_ok());
        assert_eq!(o1, CacheOutcome::Compiled);
        let (r2, o2) = c.get_or_compile(key, || {
            compiles.fetch_add(1, Ordering::SeqCst);
            compile_ok()
        });
        assert!(r2.is_ok());
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_requests() {
        let c = Arc::new(cache(0, 0));
        let key = cache_key(
            corpus::POLYNOMIAL,
            &CompileOptions::default(),
            &SessionCtrl::default(),
        );
        let compiles = Arc::new(AtomicU32::new(0));
        let started = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let (c, compiles, started, release) = (
                c.clone(),
                compiles.clone(),
                started.clone(),
                release.clone(),
            );
            std::thread::spawn(move || {
                c.get_or_compile(key, move || {
                    started.wait(); // follower may now submit
                    release.wait(); // ...and has had a chance to block
                    compiles.fetch_add(1, Ordering::SeqCst);
                    compile_ok()
                })
            })
        };
        started.wait();
        let follower = {
            let (c, compiles) = (c.clone(), compiles.clone());
            std::thread::spawn(move || {
                c.get_or_compile(key, move || {
                    compiles.fetch_add(1, Ordering::SeqCst);
                    compile_ok()
                })
            })
        };
        // Give the follower a moment to reach the wait, then release
        // the leader. (If the follower hasn't blocked yet it will see
        // the fresh entry as a plain hit — also a pass.)
        std::thread::sleep(std::time::Duration::from_millis(20));
        release.wait();
        let (r1, o1) = leader.join().expect("leader");
        let (r2, _o2) = follower.join().expect("follower");
        assert!(r1.is_ok() && r2.is_ok());
        assert_eq!(o1, CacheOutcome::Compiled);
        assert_eq!(compiles.load(Ordering::SeqCst), 1, "exactly one compile");
    }

    #[test]
    fn deterministic_failures_cache_negatively_with_ttl() {
        let clock = Arc::new(ManualClock::new(0));
        let c = CompileCache::new(
            CacheConfig {
                byte_budget: 0,
                negative_ttl_ticks: 100,
            },
            clock.clone(),
        );
        let key = cache_key(
            "module broken",
            &CompileOptions::default(),
            &SessionCtrl::default(),
        );
        let compiles = AtomicU32::new(0);
        let doomed = || crate::Session::new(CompileOptions::default()).try_compile("module broken");
        let (r1, o1) = c.get_or_compile(key, || {
            compiles.fetch_add(1, Ordering::SeqCst);
            doomed()
        });
        assert!(r1.is_err());
        assert_eq!(o1, CacheOutcome::Compiled);
        // Within TTL: served negatively, no recompile.
        let (r2, o2) = c.get_or_compile(key, || {
            compiles.fetch_add(1, Ordering::SeqCst);
            doomed()
        });
        assert!(r2.is_err());
        assert_eq!(o2, CacheOutcome::NegativeHit);
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        // Past TTL: the entry expires and the compile reruns.
        clock.advance(101);
        let (_r3, o3) = c.get_or_compile(key, || {
            compiles.fetch_add(1, Ordering::SeqCst);
            doomed()
        });
        assert_eq!(o3, CacheOutcome::Compiled);
        assert_eq!(compiles.load(Ordering::SeqCst), 2);
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn interrupted_failures_are_not_cached() {
        let c = cache(0, 1_000_000);
        let key = cache_key(
            "module x",
            &CompileOptions::default(),
            &SessionCtrl::default(),
        );
        let compiles = AtomicU32::new(0);
        let interrupted = || {
            Err(CompileFailure::Interrupted {
                pass: "frontend",
                reason: warp_common::CancelReason::Cancelled,
            })
        };
        for _ in 0..2 {
            let (r, o) = c.get_or_compile(key, || {
                compiles.fetch_add(1, Ordering::SeqCst);
                interrupted()
            });
            assert!(r.is_err());
            assert_eq!(o, CacheOutcome::Compiled, "interrupted is never served");
        }
        assert_eq!(compiles.load(Ordering::SeqCst), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_respects_byte_budget_and_recency() {
        // Budget fits roughly one module: inserting a second evicts the
        // least recently used.
        let module = compile_ok().expect("compiles");
        let one = estimate_module_bytes(&module);
        let c = cache(one + one / 2, 0);
        let opts = CompileOptions::default();
        let ctrl = SessionCtrl::default();
        let key_a = cache_key("a", &opts, &ctrl);
        let key_b = cache_key("b", &opts, &ctrl);
        let (_, _) = c.get_or_compile(key_a, compile_ok);
        // Touch A so it is the most recent, then insert B.
        let (_, o) = c.get_or_compile(key_a, compile_ok);
        assert_eq!(o, CacheOutcome::Hit);
        let (_, _) = c.get_or_compile(key_b, compile_ok);
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= c.config().byte_budget);
        // B's insert postdates A's touch, so A is the LRU victim.
        assert!(c.contains(key_b), "B stayed resident");
        assert!(!c.contains(key_a), "A (the LRU) was evicted");
    }

    #[test]
    fn clear_empties_the_cache() {
        let c = cache(0, 0);
        let key = cache_key(
            corpus::POLYNOMIAL,
            &CompileOptions::default(),
            &SessionCtrl::default(),
        );
        let (_, _) = c.get_or_compile(key, compile_ok);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().resident_bytes, 0);
        let (_, o) = c.get_or_compile(key, compile_ok);
        assert_eq!(o, CacheOutcome::Compiled);
    }
}
