//! Honest health taxonomy for the compile daemon.
//!
//! A service that can only say "healthy" is lying whenever anything is
//! wrong. This module folds the daemon's live signals into a
//! three-level verdict with the *reasons* attached, so `w2cd health`,
//! the ready banner, and the CI smoke greps all see the same story:
//!
//! - **healthy** — full capacity, all serving paths live, nothing
//!   quarantined.
//! - **degraded** — still serving, but something real is reduced: the
//!   artifact store failed to open (memory-only), the circuit breaker
//!   has quarantined programs, the native backend is falling back to
//!   sim (or its breaker is open), or jobs have wedged workers (which
//!   were replaced).
//! - **critical** — capacity or admission is actually impaired: a
//!   wedged worker was never replaced, or the queue is saturated.
//!
//! The assessment is a pure read of daemon counters — cheap enough to
//! run on every `health`/`status` line.

use crate::daemon::CompileDaemon;

/// The three-level verdict, ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthLevel {
    /// Everything at full capacity.
    Healthy,
    /// Serving, with named reductions.
    Degraded,
    /// Capacity or admission impaired.
    Critical,
}

impl std::fmt::Display for HealthLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthLevel::Healthy => "healthy",
            HealthLevel::Degraded => "degraded",
            HealthLevel::Critical => "critical",
        })
    }
}

/// One assessment: the worst level any live signal reached, plus every
/// contributing reason (empty exactly when healthy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthReport {
    /// The verdict.
    pub level: HealthLevel,
    /// Human-readable reasons, worst first.
    pub reasons: Vec<String>,
}

impl HealthReport {
    /// The reasons joined for a one-line surface (banner, status).
    pub fn reasons_joined(&self) -> String {
        self.reasons.join("; ")
    }
}

/// Assesses the daemon's current health from live signals. See the
/// module docs for the taxonomy.
pub fn assess(daemon: &CompileDaemon) -> HealthReport {
    let mut findings: Vec<(HealthLevel, String)> = Vec::new();
    let pool = daemon.pool_stats();

    let lost = pool.wedged.saturating_sub(pool.respawned);
    if lost > 0 {
        findings.push((
            HealthLevel::Critical,
            format!("{lost} wedged worker(s) never replaced; capacity reduced"),
        ));
    }
    let capacity = daemon.config().service.exec.queue_capacity;
    let queued = daemon.queue_len();
    if capacity != 0 && queued >= capacity {
        findings.push((
            HealthLevel::Critical,
            format!("queue saturated ({queued}/{capacity}); admissions are being shed"),
        ));
    }
    if let Some(e) = daemon.store_error() {
        findings.push((
            HealthLevel::Degraded,
            format!("artifact store unavailable ({e}); running memory-only"),
        ));
    }
    let quarantined = daemon.quarantined_names().len();
    if quarantined > 0 {
        findings.push((
            HealthLevel::Degraded,
            format!("{quarantined} program(s) quarantined by the circuit breaker"),
        ));
    }
    if daemon.native_breaker_open() {
        findings.push((
            HealthLevel::Degraded,
            "native backend breaker open; serving sim only".to_owned(),
        ));
    }
    let native = daemon.native_stats();
    if native.fallbacks > 0 {
        findings.push((
            HealthLevel::Degraded,
            format!("{} native-to-sim fallback(s) served", native.fallbacks),
        ));
    }
    if pool.wedged > 0 {
        findings.push((
            HealthLevel::Degraded,
            format!(
                "{} job(s) wedged workers (all replaced: {} respawn(s))",
                pool.wedged, pool.respawned
            ),
        ));
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.0));
    let level = findings
        .first()
        .map_or(HealthLevel::Healthy, |(level, _)| *level);
    HealthReport {
        level,
        reasons: findings.into_iter().map(|(_, r)| r).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::daemon::DaemonConfig;
    use crate::service::ServiceConfig;
    use crate::store::StoreConfig;
    use crate::{corpus, CompileOptions};
    use std::sync::Arc;
    use warp_common::ManualClock;
    use warp_service::{ExecutorConfig, ShutdownMode};

    fn daemon_with(exec: ExecutorConfig, store: Option<StoreConfig>) -> CompileDaemon {
        CompileDaemon::new(
            CompileOptions::default(),
            DaemonConfig {
                service: ServiceConfig {
                    exec,
                    workers: 2,
                    ..ServiceConfig::default()
                },
                cache: CacheConfig::default(),
                store,
            },
            Arc::new(ManualClock::new(0)),
        )
    }

    #[test]
    fn quiet_daemon_is_healthy_with_no_reasons() {
        let d = daemon_with(ExecutorConfig::default(), None);
        let h = assess(&d);
        assert_eq!(h.level, HealthLevel::Healthy);
        assert!(h.reasons.is_empty(), "{:?}", h.reasons);
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn failed_store_open_degrades_health() {
        // A store dir that is a *file* cannot be opened; the daemon
        // starts memory-only and must say so.
        let mut path = std::env::temp_dir();
        path.push(format!("warp-health-not-a-dir-{}", std::process::id()));
        std::fs::write(&path, b"occupied").expect("write blocker file");
        let d = daemon_with(
            ExecutorConfig::default(),
            Some(StoreConfig {
                dir: path.clone(),
                byte_budget: 0,
            }),
        );
        assert!(d.store_error().is_some(), "store open must fail");
        let h = assess(&d);
        assert_eq!(h.level, HealthLevel::Degraded);
        assert!(
            h.reasons.iter().any(|r| r.contains("memory-only")),
            "{:?}",
            h.reasons
        );
        d.shutdown(ShutdownMode::Drain);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn open_breaker_degrades_health() {
        let d = daemon_with(
            ExecutorConfig {
                breaker_threshold: 1,
                ..ExecutorConfig::default()
            },
            None,
        );
        let id = d.submit("broken", "module broken").id().expect("accepted");
        assert!(!d.wait(&[id])[0].outcome.is_success());
        assert!(d.is_quarantined("broken"));
        let h = assess(&d);
        assert_eq!(h.level, HealthLevel::Degraded);
        assert!(
            h.reasons.iter().any(|r| r.contains("quarantined")),
            "{:?}",
            h.reasons
        );
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn saturated_queue_is_critical() {
        let d = daemon_with(
            ExecutorConfig {
                queue_capacity: 1,
                ..ExecutorConfig::default()
            },
            None,
        );
        d.pause();
        assert!(d.submit("q0", corpus::POLYNOMIAL).is_accepted());
        let h = assess(&d);
        assert_eq!(h.level, HealthLevel::Critical);
        assert!(
            h.reasons.iter().any(|r| r.contains("queue saturated")),
            "{:?}",
            h.reasons
        );
        d.resume();
        d.shutdown(ShutdownMode::Drain);
    }
}
