//! One compilation as an explicit, observable pass pipeline.
//!
//! [`Session`] owns the [`CompileOptions`], accumulates diagnostics in
//! a shared [`DiagnosticBag`], and drives the eight passes of
//! [`PIPELINE`](crate::passes::PIPELINE) in order, timing each one and
//! reporting its output artifact to an attached
//! [`PassObserver`](warp_common::PassObserver). The plain
//! [`compile`](crate::compile) function is a thin wrapper over a
//! session with no observer; [`compile_many`] batch-compiles several
//! sources on scoped threads.

use crate::{CompileOptions, CompiledModule, Metrics};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use w2_lang::parse_and_check;
use warp_cell::{codegen_with as cell_codegen, CellCodegenOptions};
use warp_common::observe::{Artifact, PassObserver, PassTiming};
use warp_common::{Diagnostic, DiagnosticBag};
use warp_host::host_codegen;
use warp_ir::{comm, decompose, lower};
use warp_skew::{analyze, SkewOptions};

/// A single compilation: options, shared diagnostics, and an optional
/// pass observer.
///
/// # Examples
///
/// ```
/// use warp_compiler::{corpus, CompileOptions, Session};
/// use warp_common::CollectDumps;
///
/// let mut dumps = CollectDumps::for_passes(["lower"]);
/// let session = Session::with_observer(CompileOptions::default(), &mut dumps);
/// let module = session.compile(corpus::POLYNOMIAL)?;
/// assert_eq!(module.metrics.per_pass.len(), 8);
/// assert_eq!(dumps.dumps().len(), 1);
/// assert_eq!(dumps.dumps()[0].kind, "cell-ir");
/// # Ok::<(), warp_common::DiagnosticBag>(())
/// ```
pub struct Session<'obs> {
    opts: CompileOptions,
    diags: DiagnosticBag,
    observer: Option<&'obs mut dyn PassObserver>,
    timings: Vec<PassTiming>,
}

impl Session<'static> {
    /// Creates a session with no observer.
    pub fn new(opts: CompileOptions) -> Session<'static> {
        Session {
            opts,
            diags: DiagnosticBag::new(),
            observer: None,
            timings: Vec::new(),
        }
    }
}

impl<'obs> Session<'obs> {
    /// Creates a session whose pass events are reported to `observer`.
    pub fn with_observer(
        opts: CompileOptions,
        observer: &'obs mut dyn PassObserver,
    ) -> Session<'obs> {
        Session {
            opts,
            diags: DiagnosticBag::new(),
            observer: Some(observer),
            timings: Vec::new(),
        }
    }

    /// The session's compile options.
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// Runs one pass: notifies the observer, times the body, records
    /// the [`PassTiming`], and hands the artifact to the observer. A
    /// failing pass merges its diagnostics into the session bag.
    fn run_pass<T: Artifact>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&CompileOptions) -> Result<T, DiagnosticBag>,
    ) -> Result<T, DiagnosticBag> {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.enter_pass(name);
        }
        let start = Instant::now();
        match f(&self.opts) {
            Ok(artifact) => {
                let elapsed = start.elapsed();
                self.timings.push(PassTiming {
                    name,
                    duration: elapsed,
                });
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.exit_pass(name, elapsed, &artifact);
                }
                Ok(artifact)
            }
            Err(diags) => {
                self.diags.extend(diags);
                Err(std::mem::replace(&mut self.diags, DiagnosticBag::new()))
            }
        }
    }

    /// Compiles a W2 module by running the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns the session's accumulated diagnostics from whichever
    /// pass rejected the program.
    pub fn compile(mut self, source: &str) -> Result<CompiledModule, DiagnosticBag> {
        let start = Instant::now();

        let hir = self.run_pass("frontend", |_| parse_and_check(source))?;

        let comm_report = self.run_pass("comm", |_| {
            let report = comm::analyze(&hir);
            if !report.is_mappable() {
                let mut diags = DiagnosticBag::new();
                diags.push(Diagnostic::error_global(
                    "program has both right and left communication cycles and cannot be mapped \
                     onto the skewed computation model (paper §5.1.1)",
                ));
                return Err(diags);
            }
            if !report.is_unidirectional() {
                let mut diags = DiagnosticBag::new();
                diags.push(Diagnostic::error_global(
                    "program is bidirectional; like the paper's compiler, only unidirectional \
                     data flow is supported (paper §5.1.1)",
                ));
                return Err(diags);
            }
            Ok(report)
        })?;

        let mut ir = self.run_pass("lower", |opts| lower(&hir, &opts.lower))?;
        let dec = self.run_pass("decompose", |_| Ok(decompose::decompose(&mut ir)))?;
        let cell_code = self.run_pass("cell-codegen", |opts| {
            cell_codegen(
                &ir,
                &opts.machine,
                &CellCodegenOptions {
                    software_pipeline: opts.software_pipeline,
                },
            )
        })?;
        let skew = self.run_pass("skew", |opts| {
            analyze(
                &cell_code,
                &ir.loops,
                &SkewOptions {
                    method: opts.skew_method,
                    queue_capacity: u64::from(opts.machine.queue_capacity),
                    n_cells: ir.n_cells,
                },
            )
        })?;
        let iu = self.run_pass("iu-codegen", |opts| {
            warp_iu::iu_codegen(&ir, &dec, &cell_code, &opts.iu)
        })?;
        let host = self.run_pass("host-codegen", |_| host_codegen(&ir, &cell_code, skew.flow))?;

        let metrics = Metrics {
            w2_lines: source.lines().filter(|l| !l.trim().is_empty()).count() as u32,
            cell_ucode: cell_code.static_len(),
            iu_ucode: iu.static_len(),
            compile_time: start.elapsed(),
            per_pass: self.timings,
        };

        Ok(CompiledModule {
            name: ir.name.clone(),
            n_cells: ir.n_cells,
            ir,
            cell_code,
            iu,
            host,
            skew,
            comm: comm_report,
            machine: self.opts.machine.clone(),
            metrics,
        })
    }
}

/// Compiles one source, converting a compiler panic into an
/// "internal compiler error" diagnostic so batch callers degrade to a
/// per-program failure record instead of losing the whole batch (a
/// panicking worker would otherwise abort the scope).
fn compile_guarded(source: &str, opts: &CompileOptions) -> Result<CompiledModule, DiagnosticBag> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::compile(source, opts)
    })) {
        Ok(result) => result,
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            let mut diags = DiagnosticBag::new();
            diags.push(Diagnostic::error_global(format!(
                "internal compiler error: {what}"
            )));
            Err(diags)
        }
    }
}

/// Compiles several W2 modules in parallel on scoped threads.
///
/// Results are returned in input order regardless of which thread
/// finished first, and each element equals what a sequential
/// [`compile`](crate::compile) of the same source would produce
/// (timing metrics aside). The worker count is capped by
/// [`std::thread::available_parallelism`].
///
/// The batch always completes: a program that fails — or even crashes —
/// the compiler yields an `Err` in its slot while every other program
/// compiles normally.
///
/// ```
/// use warp_compiler::{compile_many, corpus, CompileOptions};
///
/// let sources = [corpus::POLYNOMIAL, corpus::ONED_CONV];
/// let modules = compile_many(&sources, &CompileOptions::default());
/// assert_eq!(modules.len(), 2);
/// assert_eq!(modules[0].as_ref().unwrap().name, "polynomial");
/// assert_eq!(modules[1].as_ref().unwrap().name, "conv1d");
/// ```
pub fn compile_many<S: AsRef<str> + Sync>(
    sources: &[S],
    opts: &CompileOptions,
) -> Vec<Result<CompiledModule, DiagnosticBag>> {
    let n = sources.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return sources
            .iter()
            .map(|s| compile_guarded(s.as_ref(), opts))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<CompiledModule, DiagnosticBag>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = compile_guarded(sources[i].as_ref(), opts);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every index was claimed by a worker")
        })
        .collect()
}
