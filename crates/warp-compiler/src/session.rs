//! One compilation as an explicit, observable pass pipeline.
//!
//! [`Session`] owns the [`CompileOptions`], accumulates diagnostics in
//! a shared [`DiagnosticBag`], and drives the nine passes of
//! [`PIPELINE`](crate::passes::PIPELINE) in order, timing each one and
//! reporting its output artifact to an attached
//! [`PassObserver`](warp_common::PassObserver). The plain
//! [`compile`](crate::compile) function is a thin wrapper over a
//! session with no observer; [`compile_many`] batch-compiles several
//! sources on scoped threads.

use crate::{CompileFailure, CompileOptions, CompiledModule, Metrics, SessionCtrl};
use std::time::Instant;
use w2_lang::parse_and_check;
use warp_cell::{codegen_with as cell_codegen, CellCodegenOptions};
use warp_common::observe::{Artifact, PassObserver, PassTiming};
use warp_common::{Diagnostic, DiagnosticBag};
use warp_host::host_codegen;
use warp_ir::rewrite::{rewrite_module, RewriteOptions, RewriteStats};
use warp_ir::{comm, decompose, lower};
use warp_skew::{analyze, SkewOptions};

/// Artifact of the `rewrite` pass: the per-pattern application counts,
/// rendered as a stable name-sorted table for `--dump-after rewrite`.
struct RewriteArtifact(RewriteStats);

impl Artifact for RewriteArtifact {
    fn kind(&self) -> &'static str {
        "rewrite-stats"
    }

    fn dump(&self) -> String {
        let mut out = String::from("; rewrite pattern applications\n");
        for (name, n) in self.0.hits() {
            out.push_str(&format!("{name}: {n}\n"));
        }
        if self.0.fuel_exhausted {
            out.push_str("; fuel exhausted\n");
        }
        out
    }
}

/// A single compilation: options, shared diagnostics, and an optional
/// pass observer.
///
/// # Examples
///
/// ```
/// use warp_compiler::{corpus, CompileOptions, Session};
/// use warp_common::CollectDumps;
///
/// let mut dumps = CollectDumps::for_passes(["lower"]);
/// let session = Session::with_observer(CompileOptions::default(), &mut dumps);
/// let module = session.compile(corpus::POLYNOMIAL)?;
/// assert_eq!(module.metrics.per_pass.len(), 9);
/// assert_eq!(dumps.dumps().len(), 1);
/// assert_eq!(dumps.dumps()[0].kind, "cell-ir");
/// # Ok::<(), warp_common::DiagnosticBag>(())
/// ```
pub struct Session<'obs> {
    opts: CompileOptions,
    ctrl: SessionCtrl,
    diags: DiagnosticBag,
    observer: Option<&'obs mut dyn PassObserver>,
    timings: Vec<PassTiming>,
}

impl Session<'static> {
    /// Creates a session with no observer.
    pub fn new(opts: CompileOptions) -> Session<'static> {
        Session {
            opts,
            ctrl: SessionCtrl::default(),
            diags: DiagnosticBag::new(),
            observer: None,
            timings: Vec::new(),
        }
    }
}

impl<'obs> Session<'obs> {
    /// Creates a session whose pass events are reported to `observer`.
    pub fn with_observer(
        opts: CompileOptions,
        observer: &'obs mut dyn PassObserver,
    ) -> Session<'obs> {
        Session {
            opts,
            ctrl: SessionCtrl::default(),
            diags: DiagnosticBag::new(),
            observer: Some(observer),
            timings: Vec::new(),
        }
    }

    /// Attaches resource-control knobs (cancellation, budgets) to the
    /// session (builder style). The default [`SessionCtrl`] is inert.
    #[must_use]
    pub fn with_ctrl(mut self, ctrl: SessionCtrl) -> Session<'obs> {
        self.ctrl = ctrl;
        self
    }

    /// The session's compile options.
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// Runs one pass: notifies the observer, times the body, records
    /// the [`PassTiming`], and hands the artifact to the observer. A
    /// failing pass merges its diagnostics into the session bag.
    fn run_pass<T: Artifact>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&CompileOptions) -> Result<T, DiagnosticBag>,
    ) -> Result<T, DiagnosticBag> {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.enter_pass(name);
        }
        let start = Instant::now();
        match f(&self.opts) {
            Ok(artifact) => {
                let elapsed = start.elapsed();
                self.timings.push(PassTiming {
                    name,
                    duration: elapsed,
                });
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.exit_pass(name, elapsed, &artifact);
                }
                Ok(artifact)
            }
            Err(diags) => {
                self.diags.extend(diags);
                Err(std::mem::replace(&mut self.diags, DiagnosticBag::new()))
            }
        }
    }

    /// Checks the cancel token at a pass boundary.
    fn checkpoint(&self, pass: &'static str) -> Result<(), CompileFailure> {
        self.ctrl
            .cancel
            .check()
            .map_err(|reason| CompileFailure::Interrupted { pass, reason })
    }

    /// Classifies a failing pass: a pass that fails while the session's
    /// cancel token is tripped was interrupted (e.g. the skew
    /// enumeration observing the token mid-pass), not rejected.
    fn classify(&self, pass: &'static str, diags: DiagnosticBag) -> CompileFailure {
        match self.ctrl.cancel.check() {
            Err(reason) => CompileFailure::Interrupted { pass, reason },
            Ok(()) => CompileFailure::Diagnostics(diags),
        }
    }

    /// Compiles a W2 module by running the full pipeline, flattening
    /// any structured failure into diagnostics.
    ///
    /// # Errors
    ///
    /// Returns the session's accumulated diagnostics from whichever
    /// pass rejected the program.
    pub fn compile(self, source: &str) -> Result<CompiledModule, DiagnosticBag> {
        self.try_compile(source)
            .map_err(CompileFailure::into_diagnostics)
    }

    /// Compiles a W2 module by running the full pipeline, keeping
    /// budget-enforcement failures structurally distinct from ordinary
    /// diagnostics.
    ///
    /// The cancel token is checked before every pass; the skew pass
    /// additionally polls it inside its enumeration loop and degrades
    /// to closed-form bounds when its event budget runs out; the cell
    /// program's dynamic length is checked against
    /// [`SessionCtrl::max_cell_cycles`] right after cell code
    /// generation.
    ///
    /// # Errors
    ///
    /// [`CompileFailure::Diagnostics`] when a pass rejects the program,
    /// [`CompileFailure::Interrupted`] on cancellation or deadline
    /// expiry, [`CompileFailure::TooLarge`] when a size ceiling
    /// (source bytes or cell cycles) trips, and
    /// [`CompileFailure::TimingOverflow`] when the skew pass's exact
    /// rational arithmetic cannot represent the schedule.
    pub fn try_compile(mut self, source: &str) -> Result<CompiledModule, CompileFailure> {
        let start = Instant::now();

        // The input-size guard: reject oversized sources before the
        // frontend allocates token and AST storage proportional to
        // them.
        if self.ctrl.max_source_bytes > 0 {
            let bytes = source.len() as u64;
            if bytes > self.ctrl.max_source_bytes {
                return Err(CompileFailure::TooLarge {
                    pass: "frontend",
                    what: "source bytes",
                    size: bytes,
                    limit: self.ctrl.max_source_bytes,
                });
            }
        }

        self.checkpoint("frontend")?;
        let hir = self
            .run_pass("frontend", |_| parse_and_check(source))
            .map_err(|d| self.classify("frontend", d))?;

        self.checkpoint("comm")?;
        let comm_report = self.run_pass("comm", |_| {
            let report = comm::analyze(&hir);
            if !report.is_mappable() {
                let mut diags = DiagnosticBag::new();
                diags.push(Diagnostic::error_global(
                    "program has both right and left communication cycles and cannot be mapped \
                     onto the skewed computation model (paper §5.1.1)",
                ));
                return Err(diags);
            }
            if !report.is_unidirectional() {
                let mut diags = DiagnosticBag::new();
                diags.push(Diagnostic::error_global(
                    "program is bidirectional; like the paper's compiler, only unidirectional \
                     data flow is supported (paper §5.1.1)",
                ));
                return Err(diags);
            }
            Ok(report)
        });
        let comm_report = comm_report.map_err(|d| self.classify("comm", d))?;

        self.checkpoint("lower")?;
        let mut ir = self
            .run_pass("lower", |opts| lower(&hir, &opts.lower))
            .map_err(|d| self.classify("lower", d))?;

        self.checkpoint("rewrite")?;
        let rewrite_fuel = self.ctrl.rewrite_fuel;
        let rewrite_stats = self
            .run_pass("rewrite", |opts| {
                let stats = if opts.lower.optimize {
                    rewrite_module(
                        &mut ir,
                        &RewriteOptions {
                            reassociate: opts.lower.reassociate,
                            fuel: rewrite_fuel,
                            latency: opts.machine.latency_model(),
                        },
                    )
                } else {
                    RewriteStats::default()
                };
                Ok(RewriteArtifact(stats))
            })
            .map_err(|d| self.classify("rewrite", d))?;

        self.checkpoint("decompose")?;
        let dec = self
            .run_pass("decompose", |_| Ok(decompose::decompose(&mut ir)))
            .map_err(|d| self.classify("decompose", d))?;

        self.checkpoint("cell-codegen")?;
        let pipeline = self.ctrl.pipeline;
        let cell_code = self
            .run_pass("cell-codegen", |opts| {
                cell_codegen(
                    &ir,
                    &opts.machine,
                    &CellCodegenOptions {
                        software_pipeline: pipeline,
                    },
                )
            })
            .map_err(|d| self.classify("cell-codegen", d))?;

        // The IR-size/memory ceiling: the dynamic cell-program length
        // bounds both the simulation cost and the timeline-enumeration
        // cost downstream, so an oversized loop nest is rejected here —
        // before the expensive analyses — with a structured failure.
        if self.ctrl.max_cell_cycles > 0 {
            let cycles = cell_code.dynamic_len();
            if cycles > self.ctrl.max_cell_cycles {
                return Err(CompileFailure::TooLarge {
                    pass: "cell-codegen",
                    what: "cell cycles",
                    size: cycles,
                    limit: self.ctrl.max_cell_cycles,
                });
            }
        }

        self.checkpoint("skew")?;
        let ctrl = self.ctrl.clone();
        // Timing-arithmetic overflow is reported as its own failure
        // class, not folded into ordinary diagnostics: the program may
        // be well-formed, but its schedule cannot be represented.
        let mut overflow: Option<warp_skew::TimingOverflow> = None;
        let skew = self
            .run_pass("skew", |opts| {
                analyze(
                    &cell_code,
                    &ir.loops,
                    &SkewOptions {
                        method: opts.skew_method,
                        queue_capacity: u64::from(opts.machine.queue_capacity),
                        n_cells: ir.n_cells,
                        cancel: ctrl.cancel.clone(),
                        max_events: ctrl.skew_max_events,
                    },
                )
                .map_err(|e| match e {
                    warp_skew::SkewError::Diagnostics(d) => d,
                    warp_skew::SkewError::Overflow(o) => {
                        let mut diags = DiagnosticBag::new();
                        diags.push(Diagnostic::error_global(o.to_string()));
                        overflow = Some(o);
                        diags
                    }
                })
            })
            .map_err(|d| match overflow.take() {
                Some(o) => CompileFailure::TimingOverflow {
                    pass: "skew",
                    detail: o.to_string(),
                },
                None => self.classify("skew", d),
            })?;

        self.checkpoint("iu-codegen")?;
        let iu = self
            .run_pass("iu-codegen", |opts| {
                warp_iu::iu_codegen(&ir, &dec, &cell_code, &opts.iu)
            })
            .map_err(|d| self.classify("iu-codegen", d))?;

        self.checkpoint("host-codegen")?;
        let host = self
            .run_pass("host-codegen", |_| host_codegen(&ir, &cell_code, skew.flow))
            .map_err(|d| self.classify("host-codegen", d))?;

        let metrics = Metrics {
            w2_lines: source.lines().filter(|l| !l.trim().is_empty()).count() as u32,
            cell_ucode: cell_code.static_len(),
            iu_ucode: iu.static_len(),
            compile_time: start.elapsed(),
            per_pass: self.timings,
            rewrite_hits: rewrite_stats
                .0
                .hits()
                .map(|(name, n)| (name.to_owned(), n))
                .collect(),
        };

        Ok(CompiledModule {
            name: ir.name.clone(),
            n_cells: ir.n_cells,
            ir,
            cell_code,
            iu,
            host,
            skew,
            comm: comm_report,
            machine: self.opts.machine.clone(),
            metrics,
            warnings: hir.warnings,
        })
    }
}

/// Compiles several W2 modules in parallel on scoped threads.
///
/// A thin client of the resilient executor (see [`crate::service`]):
/// each source becomes a job in an inert
/// [`CompileService`](crate::service::CompileService) — no
/// deadlines, no retry, no breaker — drained by a scoped worker pool
/// capped at [`std::thread::available_parallelism`].
///
/// Results are returned in input order regardless of which thread
/// finished first, and each element equals what a sequential
/// [`compile`](crate::compile) of the same source would produce
/// (timing metrics aside).
///
/// The batch always completes: a program that fails — or even crashes —
/// the compiler yields an `Err` in its slot while every other program
/// compiles normally.
///
/// ```
/// use warp_compiler::{compile_many, corpus, CompileOptions};
///
/// let sources = [corpus::POLYNOMIAL, corpus::ONED_CONV];
/// let modules = compile_many(&sources, &CompileOptions::default());
/// assert_eq!(modules.len(), 2);
/// assert_eq!(modules[0].as_ref().unwrap().name, "polynomial");
/// assert_eq!(modules[1].as_ref().unwrap().name, "conv1d");
/// ```
pub fn compile_many<S: AsRef<str> + Sync>(
    sources: &[S],
    opts: &CompileOptions,
) -> Vec<Result<CompiledModule, DiagnosticBag>> {
    if sources.is_empty() {
        return Vec::new();
    }
    crate::service::compile_batch(sources, opts).into_results()
}
