//! The W2 program corpus: the paper's five benchmark programs (Table
//! 7-1) and parameterized generators for tests and benchmarks.
//!
//! The paper prints only the polynomial program (Figure 4-1, reproduced
//! verbatim in [`POLYNOMIAL`]); the other four are reconstructed from
//! their one-line descriptions in Table 7-1:
//!
//! * **1d-Conv** — kernel size 9, one kernel element per cell: a
//!   classic systolic FIR where each cell delays the `x` stream by one
//!   element, so cell `k` contributes `w[k]·x[j−k]`.
//! * **Binop** — a binary operator over two 512×512 images streamed on
//!   the X and Y channels.
//! * **ColorSeg** — threshold-based color separation of a 512×512
//!   image (predicated conditionals).
//! * **Mandelbrot** — 32×32 image, 4 iterations, on one cell: the
//!   escape test is predicated, so every point runs all iterations and
//!   the escape count accumulates through selects.
//!
//! A matrix-multiplication generator ([`matmul_source`]) reconstructs
//! the paper's flagship example from §2.2 ("each cell computes some
//! columns of the result") using the same count-conserving idiom as
//! Figure 4-1.

/// The five Table 7-1 benchmark programs by name, at paper sizes (the
/// table the `w2c --corpus` flag resolves against).
pub const TABLE_7_1: [(&str, &str); 5] = [
    ("polynomial", POLYNOMIAL),
    ("conv1d", ONED_CONV),
    ("binop", BINOP),
    ("colorseg", COLORSEG),
    ("mandelbrot", MANDELBROT),
];

/// Size-scaled variants of the corpus for the guarantee audit
/// ([`crate::audit::audit_corpus`]), plus the matmul generator for
/// Y-channel coverage.
///
/// The audit simulates each program about a dozen times (nominal,
/// tightness, and one run per injected fault class), so the paper's
/// 512×512 image sizes are scaled down to keep the whole suite in CI
/// time. W2 control flow is static and conditionals are predicated, so
/// cell timing — the thing the audited claims are about — has the same
/// structure at any size.
pub fn audit_corpus() -> Vec<(&'static str, String)> {
    vec![
        ("polynomial", polynomial_source(4, 12)),
        ("conv1d", conv1d_source(3, 16)),
        ("binop", binop_source(6, 6)),
        ("colorseg", colorseg_source(4, 4)),
        ("mandelbrot", mandelbrot_source(4, 2)),
        ("matmul", matmul_source(2, 3, 4, 2)),
    ]
}

/// Figure 4-1 of the paper: polynomial evaluation with Horner's rule,
/// one coefficient per cell, 10 coefficients, 100 points, 10 cells.
pub const POLYNOMIAL: &str = r#"
/*          Polynomial evaluation                 */
/* A polynomial with 10 coefficients is           */
/* evaluated for 100 data points on 10 cells      */
module polynomial (z in, c in, results out)
float z[100], c[10];
float results[100];

cellprogram (cid : 0 : 9)
begin
  function poly
  begin
    float coeff,   /* local copy of c[cid] */
          temp,
          xin, yin, ans;   /* temporaries */
    int i;

    /* Every cell saves the first coefficient that reaches it,
       consumes the data and passes the remaining coefficients.
       Every cell generates an additional item at the end to
       conserve the number of receives and sends. */
    receive (L, X, coeff, c[0]);
    for i := 1 to 9 do begin
      receive (L, X, temp, c[i]);
      send (R, X, temp);
    end;
    send (R, X, 0.0);

    /* Implementing Horner's rule, each cell multiplies the
       accumulated result yin with incoming data xin and adds
       the next coefficient. */
    for i := 0 to 99 do begin
      receive (L, X, xin, z[i]);
      receive (L, Y, yin, 0.0);
      send (R, X, xin);
      ans := coeff + yin*xin;
      send (R, Y, ans, results[i]);
    end;
  end

  call poly;
end
"#;

/// Generates the polynomial program for `n_cells` coefficients and
/// `points` data points.
pub fn polynomial_source(n_cells: u32, points: u32) -> String {
    format!(
        r#"
module polynomial (z in, c in, results out)
float z[{points}], c[{n}];
float results[{points}];
cellprogram (cid : 0 : {last})
begin
  function poly
  begin
    float coeff, temp, xin, yin, ans;
    int i;
    receive (L, X, coeff, c[0]);
    for i := 1 to {last} do begin
      receive (L, X, temp, c[i]);
      send (R, X, temp);
    end;
    send (R, X, 0.0);
    for i := 0 to {plast} do begin
      receive (L, X, xin, z[i]);
      receive (L, Y, yin, 0.0);
      send (R, X, xin);
      ans := coeff + yin*xin;
      send (R, Y, ans, results[i]);
    end;
  end
  call poly;
end
"#,
        n = n_cells,
        last = n_cells - 1,
        plast = points - 1,
    )
}

/// Table 7-1 "1d-Conv": kernel size 9 over a 128-sample signal, one
/// kernel element per cell (9 cells).
pub const ONED_CONV: &str = r#"
/* Simple 1-dimensional convolution for kernel size 9,       */
/* one kernel element per cell; y[j] = sum w[k] * x[j+8-k].  */
module conv1d (w in, x in, y out)
float w[9];
float x[128];
float y[120];

cellprogram (cid : 0 : 8)
begin
  function conv
  begin
    float coeff, temp, xin, yin, xprev;
    int i;

    /* Distribute the kernel: keep the first element, pass the rest. */
    receive (L, X, coeff, w[0]);
    for i := 1 to 8 do begin
      receive (L, X, temp, w[i]);
      send (R, X, temp);
    end;
    send (R, X, 0.0);

    /* Each cell delays x by one element, so cell k multiplies
       x[j-k]; the partial sums accumulate on the Y channel. */
    xprev := 0.0;
    for i := 0 to 7 do begin
      receive (L, X, xin, x[i]);
      receive (L, Y, yin, 0.0);
      send (R, X, xprev);
      send (R, Y, yin + coeff * xin);
      xprev := xin;
    end;
    for i := 8 to 127 do begin
      receive (L, X, xin, x[i]);
      receive (L, Y, yin, 0.0);
      send (R, X, xprev);
      send (R, Y, yin + coeff * xin, y[i - 8]);
      xprev := xin;
    end;
  end
  call conv;
end
"#;

/// Generates the 1-D convolution for a kernel of `taps` cells over `n`
/// samples.
pub fn conv1d_source(taps: u32, n: u32) -> String {
    assert!(n > taps, "need more samples than taps");
    format!(
        r#"
module conv1d (w in, x in, y out)
float w[{taps}];
float x[{n}];
float y[{outn}];
cellprogram (cid : 0 : {tlast})
begin
  function conv
  begin
    float coeff, temp, xin, yin, xprev;
    int i;
    receive (L, X, coeff, w[0]);
    for i := 1 to {tlast} do begin
      receive (L, X, temp, w[i]);
      send (R, X, temp);
    end;
    send (R, X, 0.0);
    xprev := 0.0;
    for i := 0 to {warm} do begin
      receive (L, X, xin, x[i]);
      receive (L, Y, yin, 0.0);
      send (R, X, xprev);
      send (R, Y, yin + coeff * xin);
      xprev := xin;
    end;
    for i := {taps_m1} to {nlast} do begin
      receive (L, X, xin, x[i]);
      receive (L, Y, yin, 0.0);
      send (R, X, xprev);
      send (R, Y, yin + coeff * xin, y[i - {warm_p1}]);
      xprev := xin;
    end;
  end
  call conv;
end
"#,
        outn = n - taps + 1,
        tlast = taps - 1,
        warm = taps - 2,
        taps_m1 = taps - 1,
        nlast = n - 1,
        warm_p1 = taps - 1,
    )
}

/// Table 7-1 "Binop": a binary operator (elementwise multiply) over two
/// 512×512 images streamed on the X and Y channels.
pub const BINOP: &str = r#"
/* Binary operator on an image with 512x512 elements. */
module binop (a in, b in, c out)
float a[512, 512];
float b[512, 512];
float c[512, 512];

cellprogram (cid : 0 : 0)
begin
  function binop
  begin
    float av, bv;
    int i, j;
    for i := 0 to 511 do
      for j := 0 to 511 do begin
        receive (L, X, av, a[i, j]);
        receive (L, Y, bv, b[i, j]);
        send (R, X, av * bv, c[i, j]);
      end;
  end
  call binop;
end
"#;

/// Generates a `rows`×`cols` binop program.
pub fn binop_source(rows: u32, cols: u32) -> String {
    format!(
        r#"
module binop (a in, b in, c out)
float a[{rows}, {cols}];
float b[{rows}, {cols}];
float c[{rows}, {cols}];
cellprogram (cid : 0 : 0)
begin
  function binop
  begin
    float av, bv;
    int i, j;
    for i := 0 to {rlast} do
      for j := 0 to {clast} do begin
        receive (L, X, av, a[i, j]);
        receive (L, Y, bv, b[i, j]);
        send (R, X, av * bv, c[i, j]);
      end;
  end
  call binop;
end
"#,
        rlast = rows - 1,
        clast = cols - 1,
    )
}

/// Table 7-1 "ColorSeg": color separation of a 512×512 RGB image into
/// four classes (dark, red-, green-, blue-dominant). The three color
/// planes stream interleaved on X; classification is a predicated
/// decision tree over the color values.
pub const COLORSEG: &str = r#"
/* Color separation in a 512x512 image based on color values. */
module colorseg (img in, seg out)
float img[512, 1536];
float seg[512, 512];

cellprogram (cid : 0 : 0)
begin
  function colorseg
  begin
    float r, g, b, s;
    int i, j;
    for i := 0 to 511 do
      for j := 0 to 511 do begin
        receive (L, X, r, img[i, 3*j]);
        receive (L, X, g, img[i, 3*j + 1]);
        receive (L, X, b, img[i, 3*j + 2]);
        if r >= g and r >= b then
          s := 1.0;
        else begin
          if g >= b then
            s := 2.0;
          else
            s := 3.0;
        end
        if r + g + b < 96.0 then
          s := 0.0;
        send (R, X, s, seg[i, j]);
      end;
  end
  call colorseg;
end
"#;

/// Generates a `rows`×`cols` RGB color-separation program (the image
/// parameter holds `r,g,b` interleaved per pixel, so it is
/// `rows × 3·cols` words).
pub fn colorseg_source(rows: u32, cols: u32) -> String {
    format!(
        r#"
module colorseg (img in, seg out)
float img[{rows}, {c3}];
float seg[{rows}, {cols}];
cellprogram (cid : 0 : 0)
begin
  function colorseg
  begin
    float r, g, b, s;
    int i, j;
    for i := 0 to {rlast} do
      for j := 0 to {clast} do begin
        receive (L, X, r, img[i, 3*j]);
        receive (L, X, g, img[i, 3*j + 1]);
        receive (L, X, b, img[i, 3*j + 2]);
        if r >= g and r >= b then
          s := 1.0;
        else begin
          if g >= b then
            s := 2.0;
          else
            s := 3.0;
        end
        if r + g + b < 96.0 then
          s := 0.0;
        send (R, X, s, seg[i, j]);
      end;
  end
  call colorseg;
end
"#,
        c3 = cols * 3,
        rlast = rows - 1,
        clast = cols - 1,
    )
}

/// A single-plane thresholding variant of ColorSeg (grayscale), used by
/// the image-pipeline example.
pub fn grayseg_source(rows: u32, cols: u32) -> String {
    format!(
        r#"
module grayseg (img in, seg out)
float img[{rows}, {cols}];
float seg[{rows}, {cols}];
cellprogram (cid : 0 : 0)
begin
  function grayseg
  begin
    float v, s;
    int i, j;
    for i := 0 to {rlast} do
      for j := 0 to {clast} do begin
        receive (L, X, v, img[i, j]);
        if v < 85.0 then
          s := 0.0;
        else begin
          if v < 170.0 then
            s := 1.0;
          else
            s := 2.0;
        end
        send (R, X, s, seg[i, j]);
      end;
  end
  call grayseg;
end
"#,
        rlast = rows - 1,
        clast = cols - 1,
    )
}

/// Table 7-1 "Mandelbrot": 32×32 image, 4 iterations, one cell. The
/// escape test is predicated, so the count accumulates through selects.
pub const MANDELBROT: &str = r#"
/* Mandelbrot for a 32x32 image and 4 iterations on one cell. */
module mandelbrot (cre in, cim in, count out)
float cre[32, 32];
float cim[32, 32];
float count[32, 32];

cellprogram (cid : 0 : 0)
begin
  function mandel
  begin
    float zr, zi, cr, ci, cnt, zr2, mag;
    int i, j, k;
    for i := 0 to 31 do
      for j := 0 to 31 do begin
        receive (L, X, cr, cre[i, j]);
        receive (L, Y, ci, cim[i, j]);
        zr := 0.0;
        zi := 0.0;
        cnt := 0.0;
        for k := 0 to 3 do begin
          zr2 := zr*zr - zi*zi + cr;
          zi := 2.0*zr*zi + ci;
          zr := zr2;
          mag := zr*zr + zi*zi;
          if mag < 4.0 then cnt := cnt + 1.0;
        end;
        send (R, X, cnt, count[i, j]);
      end;
  end
  call mandel;
end
"#;

/// Generates a `size`×`size`, `iters`-iteration Mandelbrot program.
pub fn mandelbrot_source(size: u32, iters: u32) -> String {
    format!(
        r#"
module mandelbrot (cre in, cim in, count out)
float cre[{size}, {size}];
float cim[{size}, {size}];
float count[{size}, {size}];
cellprogram (cid : 0 : 0)
begin
  function mandel
  begin
    float zr, zi, cr, ci, cnt, zr2, mag;
    int i, j, k;
    for i := 0 to {slast} do
      for j := 0 to {slast} do begin
        receive (L, X, cr, cre[i, j]);
        receive (L, Y, ci, cim[i, j]);
        zr := 0.0;
        zi := 0.0;
        cnt := 0.0;
        for k := 0 to {klast} do begin
          zr2 := zr*zr - zi*zi + cr;
          zi := 2.0*zr*zi + ci;
          zr := zr2;
          mag := zr*zr + zi*zi;
          if mag < 4.0 then cnt := cnt + 1.0;
        end;
        send (R, X, cnt, count[i, j]);
      end;
  end
  call mandel;
end
"#,
        slast = size - 1,
        klast = iters - 1,
    )
}

/// Generates matrix multiplication `C = A·B` on `cells` cells, with `A`
/// of shape `m×p`, `B` of shape `p×(cells·w)`, and `w` result columns
/// per cell (paper §2.2: "each cell computes some columns of the
/// result").
///
/// Column distribution uses the Figure 4-1 idiom: every cell keeps the
/// first `w` columns it sees, forwards the rest, and appends `w` dummy
/// columns so send/receive counts stay homogeneous. Result rows travel
/// on the Y channel, rotated per cell, so the last cell emits column
/// blocks in reverse cell order — the external bindings account for
/// this.
///
/// # Panics
///
/// Panics for degenerate shapes (`cells == 0`, `w == 0`, `p == 0`,
/// `m == 0`).
pub fn matmul_source(cells: u32, m: u32, p: u32, w: u32) -> String {
    assert!(cells >= 1 && m >= 1 && p >= 1 && w >= 1);
    let q = cells * w;
    let pass_cols = q - w; // columns forwarded during loading
    let mut out = format!(
        r#"
module matmul (a in, b in, c out)
float a[{m}, {p}];
float b[{p}, {q}];
float c[{m}, {q}];
cellprogram (cid : 0 : {clast})
begin
  function mm
  begin
    float v, av, yv, acc;
    float bloc[{p}, {w}];
    float arow[{p}];
    float res[{w}];
    float ybuf[{q}];
    int r, cc, k, blk;

    /* Load phase: keep the first {w} columns, forward the rest,
       append {w} dummy columns to conserve counts. */
    for cc := 0 to {wlast} do
      for k := 0 to {plast} do begin
        receive (L, X, v, b[k, cc]);
        bloc[k, cc] := v;
      end;
"#,
        clast = cells - 1,
        wlast = w - 1,
        plast = p - 1,
    );
    if pass_cols > 0 {
        out.push_str(&format!(
            r#"    for cc := 0 to {pc_last} do
      for k := 0 to {plast} do begin
        receive (L, X, v, b[k, cc + {w}]);
        send (R, X, v);
      end;
"#,
            pc_last = pass_cols - 1,
            plast = p - 1,
        ));
    }
    out.push_str(&format!(
        r#"    for cc := 0 to {wlast} do
      for k := 0 to {plast} do
        send (R, X, 0.0);

    /* Compute phase: stream each row of A through, form {w} dot
       products, and rotate the Y result stream. */
    for r := 0 to {mlast} do begin
      for k := 0 to {plast} do begin
        receive (L, X, av, a[r, k]);
        arow[k] := av;
        send (R, X, av);
      end;
      for cc := 0 to {wlast} do begin
        acc := 0.0;
        for k := 0 to {plast} do
          acc := acc + arow[k] * bloc[k, cc];
        res[cc] := acc;
      end;
      for cc := 0 to {qlast} do begin
        receive (L, Y, yv, 0.0);
        ybuf[cc] := yv;
      end;
      for cc := 0 to {wlast} do
        send (R, Y, res[cc], c[r, cc + {own_base}]);
"#,
        wlast = w - 1,
        plast = p - 1,
        mlast = m - 1,
        qlast = q - 1,
        own_base = (cells - 1) * w,
    ));
    if cells > 1 {
        out.push_str(&format!(
            r#"      for blk := 0 to {blk_last} do
        for cc := 0 to {wlast} do
          send (R, Y, ybuf[blk * {w} + cc], c[r, {rev_base} - blk * {w} + cc]);
"#,
            blk_last = cells - 2,
            wlast = w - 1,
            rev_base = (cells - 2) * w,
        ));
    }
    out.push_str(
        r#"    end;
  end
  call mm;
end
"#,
    );
    out
}

/// Generates an `n`-point complex FFT on `log2 n` cells — the paper's
/// headline application ("a 10-cell Warp can process 1024-point complex
/// FFTs at a rate of one FFT every 600 microseconds", §2).
///
/// The constant-geometry (Pease) radix-2 formulation is the one where
/// **every stage performs identical data movement**, which is exactly
/// what the homogeneous-program restriction (§5.1) requires: cell `s`
/// executes stage `s`. Per-stage twiddle factors stream through the
/// array with the Figure 4-1 keep-and-forward idiom; real parts travel
/// on X, imaginary parts on Y. The result leaves the last cell in
/// bit-reversed order (the host unscrambles, as real Warp hosts did);
/// [`crate::reference::fft_pease`] reproduces the stream bit-for-bit.
///
/// # Panics
///
/// Panics unless `n` is a power of two with `4 ≤ n ≤ 1024` (a 4K-word
/// cell memory holds the 3·n-word input/twiddle working set up to
/// n = 1024).
pub fn fft_source(n: u32) -> String {
    assert!(n.is_power_of_two() && (4..=1024).contains(&n));
    let m = n.trailing_zeros();
    let half = n / 2;
    format!(
        r#"
module fft (twr in, twi in, xre in, xim in, outre out, outim out)
float twr[{m}, {half}], twi[{m}, {half}];
float xre[{n}], xim[{n}];
float outre[{n}], outim[{n}];
cellprogram (cid : 0 : {mlast})
begin
  function stage
  begin
    float v, ar, ai, br, bi, dr, di, wr, wi;
    float myr[{half}], myi[{half}];
    float bre[{n}], bim[{n}];
    int s, i;

    /* Twiddle distribution: keep the first stage set, forward the
       rest, and pad to conserve counts. */
    for i := 0 to {hlast} do begin
      receive (L, X, v, twr[0, i]);
      myr[i] := v;
      receive (L, Y, v, twi[0, i]);
      myi[i] := v;
    end;
    for s := 1 to {mlast} do
      for i := 0 to {hlast} do begin
        receive (L, X, v, twr[s, i]);
        send (R, X, v);
        receive (L, Y, v, twi[s, i]);
        send (R, Y, v);
      end;
    for i := 0 to {hlast} do begin
      send (R, X, 0.0);
      send (R, Y, 0.0);
    end;

    /* Buffer the whole input vector (butterflies need x[i] and
       x[i + n/2] together). */
    for i := 0 to {nlast} do begin
      receive (L, X, v, xre[i]);
      bre[i] := v;
      receive (L, Y, v, xim[i]);
      bim[i] := v;
    end;

    /* One constant-geometry butterfly stage. The outputs emerge in
       stream order (2i, 2i+1), so they are sent directly — no output
       buffer, and the downstream cell consumes at the production
       rate, keeping queue occupancy low. */
    for i := 0 to {hlast} do begin
      ar := bre[i];
      ai := bim[i];
      br := bre[i + {half}];
      bi := bim[i + {half}];
      send (R, X, ar + br, outre[2*i]);
      send (R, Y, ai + bi, outim[2*i]);
      dr := ar - br;
      di := ai - bi;
      wr := myr[i];
      wi := myi[i];
      send (R, X, dr*wr - di*wi, outre[2*i + 1]);
      send (R, Y, dr*wi + di*wr, outim[2*i + 1]);
    end;
  end
  call stage;
end
"#,
        mlast = m - 1,
        hlast = half - 1,
        nlast = n - 1,
    )
}

/// The flat `[stage, butterfly]` twiddle arrays the FFT module's host
/// parameters expect (`twr`/`twi`).
pub fn fft_twiddle_arrays(n: u32) -> (Vec<f32>, Vec<f32>) {
    let m = n.trailing_zeros();
    let mut twr = Vec::new();
    let mut twi = Vec::new();
    for s in 0..m {
        let (re, im) = crate::reference::pease_twiddles(n as usize, s);
        twr.extend(re);
        twi.extend(im);
    }
    (twr, twi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};

    #[test]
    fn all_paper_programs_compile() {
        for (name, src) in [
            ("polynomial", POLYNOMIAL),
            ("conv1d", ONED_CONV),
            ("binop", BINOP),
            ("colorseg", COLORSEG),
            ("mandelbrot", MANDELBROT),
        ] {
            let m = compile(src, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{name} failed to compile:\n{e}"));
            assert!(m.metrics.cell_ucode > 0, "{name}");
        }
    }

    #[test]
    fn generators_match_consts() {
        // The generators at paper sizes should produce equivalent
        // metrics to the fixed sources.
        let opts = CompileOptions::default();
        let a = compile(POLYNOMIAL, &opts).unwrap();
        let b = compile(&polynomial_source(10, 100), &opts).unwrap();
        assert_eq!(a.metrics.cell_ucode, b.metrics.cell_ucode);
        assert_eq!(a.skew.min_skew, b.skew.min_skew);

        let a = compile(ONED_CONV, &opts).unwrap();
        let b = compile(&conv1d_source(9, 128), &opts).unwrap();
        assert_eq!(a.metrics.cell_ucode, b.metrics.cell_ucode);
    }

    #[test]
    fn matmul_compiles() {
        let src = matmul_source(2, 3, 4, 2);
        let m = compile(&src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("matmul failed:\n{e}\nsource:\n{src}"));
        assert_eq!(m.n_cells, 2);
    }
}
