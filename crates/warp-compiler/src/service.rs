//! The compile service: Warp compilations as resilient jobs.
//!
//! This module binds the generic executor of [`warp_service`] to the
//! [`Session`] pipeline (DESIGN.md §10). Each submitted source becomes
//! a named job whose [`SessionCtrl`] carries the executor's
//! cancellation token and budget knobs, so a deadline or cancellation
//! reaches every cooperative poll point in the pipeline — pass
//! boundaries, the skew enumeration, the simulator cycle loop — and
//! comes back as a structured [`CompileFailure`] instead of a hang.
//!
//! Failure classification:
//!
//! - [`CompileFailure::Interrupted`] → [`FailureKind::Timeout`] — the
//!   job's own budget stopped it.
//! - [`CompileFailure::Diagnostics`], [`CompileFailure::TooLarge`], and
//!   [`CompileFailure::TimingOverflow`] → [`FailureKind::Permanent`] —
//!   deterministic for a given source, so retrying is pointless and the
//!   circuit breaker should count them.
//!
//! The compiler itself never produces transient failures; the
//! [`FailureKind::Transient`] path exists for service embeddings whose
//! job closures do I/O around the compile.

use crate::{CompileFailure, CompileOptions, CompiledModule, Session, SessionCtrl};
use std::fmt::Write as _;
use std::sync::Arc;
use warp_common::{Clock, Diagnostic, DiagnosticBag, SystemClock};
use warp_service::{
    Admission, Executor, ExecutorConfig, FailureKind, JobFailure, JobOutcome, JobReport, JobSuccess,
};

/// How the retry/breaker machinery should treat a [`CompileFailure`]:
/// budget interruptions are timeouts, everything else is permanent.
pub fn classify_failure(failure: &CompileFailure) -> FailureKind {
    match failure {
        CompileFailure::Interrupted { .. } => FailureKind::Timeout,
        CompileFailure::Diagnostics(_)
        | CompileFailure::TooLarge { .. }
        | CompileFailure::TimingOverflow { .. } => FailureKind::Permanent,
    }
}

/// Configuration of a [`CompileService`]: the generic executor knobs
/// plus the per-job pipeline budgets threaded into [`SessionCtrl`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Queue, deadline, retry, and breaker parameters.
    pub exec: ExecutorConfig,
    /// Event budget for the exact skew enumeration (`0` = unlimited);
    /// see [`SessionCtrl::skew_max_events`].
    pub skew_max_events: u64,
    /// Cell-program size ceiling in cycles (`0` = unlimited); see
    /// [`SessionCtrl::max_cell_cycles`].
    pub max_cell_cycles: u64,
    /// Source-size ceiling in bytes (`0` = unlimited); see
    /// [`SessionCtrl::max_source_bytes`].
    pub max_source_bytes: u64,
    /// Worker threads for [`CompileService::run_parallel`]
    /// (`0` = one per available core).
    pub workers: usize,
    /// Heartbeat staleness (clock ticks) past which the daemon's
    /// supervisor declares a running job wedged and replaces its
    /// worker (`0` = supervision off). Only the always-on
    /// [`CompileDaemon`](crate::daemon::CompileDaemon) supervises; the
    /// batch service ignores this.
    pub supervise_grace_ticks: u64,
    /// Real-time milliseconds between background supervisor scans
    /// (`0` = a small default).
    pub supervise_interval_ms: u64,
}

/// One compile job's report.
pub type CompileReport = JobReport<CompiledModule, CompileFailure>;

/// A resilient compile service: submit named W2 sources, then drain
/// them under the executor's admission control, budgets, retry, and
/// circuit-breaker policies.
///
/// # Examples
///
/// ```
/// use warp_compiler::{corpus, service::{CompileService, ServiceConfig}, CompileOptions};
///
/// let mut svc = CompileService::with_system_clock(
///     CompileOptions::default(),
///     ServiceConfig::default(),
/// );
/// assert!(svc.submit("polynomial", corpus::POLYNOMIAL).is_accepted());
/// let batch = svc.run();
/// assert_eq!(batch.succeeded(), 1);
/// assert!(batch.is_healthy());
/// ```
pub struct CompileService {
    opts: CompileOptions,
    config: ServiceConfig,
    executor: Executor<CompiledModule, CompileFailure>,
}

impl CompileService {
    /// A service over an injectable clock (tests use a
    /// [`warp_common::ManualClock`] to exercise deadlines and backoff
    /// without real sleeps).
    pub fn new(
        opts: CompileOptions,
        config: ServiceConfig,
        clock: Arc<dyn Clock>,
    ) -> CompileService {
        let executor = Executor::new(config.exec.clone(), clock);
        CompileService {
            opts,
            config,
            executor,
        }
    }

    /// A service over the real clock (ticks are microseconds).
    pub fn with_system_clock(opts: CompileOptions, config: ServiceConfig) -> CompileService {
        CompileService::new(opts, config, Arc::new(SystemClock::new()))
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Jobs currently queued.
    pub fn queue_len(&self) -> usize {
        self.executor.queue_len()
    }

    /// Admission control: queues a compile job unless the queue is at
    /// capacity (load shed with a retry hint). The returned token in
    /// [`Admission::Accepted`] cancels just this job.
    pub fn submit(&mut self, name: impl Into<String>, source: impl Into<String>) -> Admission {
        let source = source.into();
        let opts = self.opts.clone();
        let skew_max_events = self.config.skew_max_events;
        let max_cell_cycles = self.config.max_cell_cycles;
        let max_source_bytes = self.config.max_source_bytes;
        self.executor.submit(name, move |ctx| {
            let ctrl = SessionCtrl {
                cancel: ctx.cancel.clone(),
                skew_max_events,
                max_cell_cycles,
                max_source_bytes,
                ..SessionCtrl::default()
            };
            match Session::new(opts.clone())
                .with_ctrl(ctrl)
                .try_compile(&source)
            {
                Ok(module) => {
                    let degraded = module.skew.degraded;
                    Ok(JobSuccess {
                        value: module,
                        degraded,
                    })
                }
                Err(failure) => Err(JobFailure {
                    kind: classify_failure(&failure),
                    error: failure,
                }),
            }
        })
    }

    /// `true` once the circuit breaker has quarantined `name`.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.executor.is_quarantined(name)
    }

    /// Names currently quarantined by the circuit breaker.
    pub fn quarantined_names(&self) -> Vec<String> {
        self.executor.quarantined_names()
    }

    /// Clears breaker history for `name` (operator override).
    pub fn reset_breaker(&mut self, name: &str) {
        self.executor.reset_breaker(name);
    }

    /// Drains the queue sequentially.
    pub fn run(&mut self) -> BatchReport {
        let jobs = self.executor.run_all();
        BatchReport::new(jobs, self.executor.quarantined_names())
    }

    /// Drains the queue on a scoped worker pool
    /// ([`ServiceConfig::workers`] threads, or one per core when 0).
    /// Reports come back in submission order.
    pub fn run_parallel(&mut self) -> BatchReport {
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        let jobs = self.executor.run_parallel(workers);
        BatchReport::new(jobs, self.executor.quarantined_names())
    }
}

/// The outcome of draining one batch: per-job reports in submission
/// order plus the breaker's quarantine list as of the end of the
/// batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job reports, in submission order.
    pub jobs: Vec<CompileReport>,
    /// Names quarantined by the circuit breaker after this batch.
    pub quarantined: Vec<String>,
}

impl BatchReport {
    fn new(jobs: Vec<CompileReport>, quarantined: Vec<String>) -> BatchReport {
        BatchReport { jobs, quarantined }
    }

    /// Jobs that produced a module (including degraded ones).
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_success()).count()
    }

    /// Successful jobs that degraded to conservative skew bounds.
    pub fn degraded(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_degraded()).count()
    }

    /// Jobs rejected with diagnostics or a size ceiling (plus panics).
    pub fn failed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| {
                matches!(
                    j.outcome,
                    JobOutcome::Failed { .. } | JobOutcome::Panicked { .. }
                )
            })
            .count()
    }

    /// Jobs stopped by their budget or external cancellation.
    pub fn timed_out(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::TimedOut { .. }))
            .count()
    }

    /// Jobs refused by the circuit breaker.
    pub fn quarantined_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Quarantined { .. }))
            .count()
    }

    /// Jobs the supervisor declared wedged (worker presumed lost).
    pub fn wedged(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Wedged { .. }))
            .count()
    }

    /// The job with the largest wall time, if any ran.
    pub fn slowest(&self) -> Option<&CompileReport> {
        self.jobs.iter().max_by_key(|j| j.wall_ticks)
    }

    /// `true` when nothing timed out, panicked, or was quarantined —
    /// ordinary diagnostic failures are still "healthy" (the service
    /// did its job; the input was just wrong).
    pub fn is_healthy(&self) -> bool {
        self.timed_out() == 0
            && self.quarantined.is_empty()
            && self.quarantined_jobs() == 0
            && self.wedged() == 0
            && !self
                .jobs
                .iter()
                .any(|j| matches!(j.outcome, JobOutcome::Panicked { .. }))
    }

    /// A human-readable per-job table with a totals line: name,
    /// outcome, wall time in clock ticks (microseconds under the
    /// system clock), with the slowest job flagged.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} ok ({} degraded), {} failed, {} timed out, {} quarantined, {} wedged",
            self.succeeded(),
            self.degraded(),
            self.failed(),
            self.timed_out(),
            self.quarantined_jobs(),
            self.wedged(),
        );
        let slowest = self.slowest().map(|j| j.id);
        let width = self
            .jobs
            .iter()
            .map(|j| j.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for job in &self.jobs {
            let mark = if slowest == Some(job.id) && self.jobs.len() > 1 {
                "  <- slowest"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<width$}  {:<11} {:>12} ticks{}",
                job.name,
                job.outcome.label(),
                job.wall_ticks,
                mark,
                width = width,
            );
        }
        if !self.quarantined.is_empty() {
            let _ = writeln!(out, "  quarantined names: {}", self.quarantined.join(", "));
        }
        out
    }

    /// Flattens the batch into per-program compile results in
    /// submission order — the [`crate::compile_many`] contract. Budget
    /// stops, panics, and quarantines become diagnostic-bearing
    /// failures.
    pub fn into_results(self) -> Vec<Result<CompiledModule, DiagnosticBag>> {
        self.jobs
            .into_iter()
            .map(|job| match job.outcome {
                JobOutcome::Success(s) => Ok(s.value),
                JobOutcome::Failed { error, .. } => Err(error.into_diagnostics()),
                JobOutcome::TimedOut { reason, .. } => {
                    let mut diags = DiagnosticBag::new();
                    diags.push(Diagnostic::error_global(format!(
                        "compilation interrupted: {reason}"
                    )));
                    Err(diags)
                }
                JobOutcome::Panicked { what, .. } => {
                    let mut diags = DiagnosticBag::new();
                    diags.push(Diagnostic::error_global(format!(
                        "internal compiler error: {what}"
                    )));
                    Err(diags)
                }
                JobOutcome::Quarantined {
                    consecutive_failures,
                } => {
                    let mut diags = DiagnosticBag::new();
                    diags.push(Diagnostic::error_global(format!(
                        "program quarantined by the circuit breaker after \
                         {consecutive_failures} consecutive failures"
                    )));
                    Err(diags)
                }
                JobOutcome::Wedged { stalled_for_ticks } => {
                    let mut diags = DiagnosticBag::new();
                    diags.push(Diagnostic::error_global(format!(
                        "compile job wedged: worker unresponsive for \
                         {stalled_for_ticks} ticks; presumed lost and replaced"
                    )));
                    Err(diags)
                }
            })
            .collect()
    }
}

/// Batch-compiles `sources` through an inert service (no deadlines, no
/// retry, no breaker, unbounded queue) on the system clock — the
/// engine behind [`crate::compile_many`], also used by `w2c` for its
/// batch summary.
pub fn compile_batch<S: AsRef<str>>(sources: &[S], opts: &CompileOptions) -> BatchReport {
    compile_batch_named(
        sources
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("input[{i}]"), s.as_ref().to_owned()))
            .collect(),
        opts,
        &ServiceConfig {
            exec: ExecutorConfig {
                queue_capacity: 0,
                ..ExecutorConfig::default()
            },
            ..ServiceConfig::default()
        },
    )
}

/// Batch-compiles named sources under an explicit [`ServiceConfig`] on
/// the system clock.
pub fn compile_batch_named(
    named_sources: Vec<(String, String)>,
    opts: &CompileOptions,
    config: &ServiceConfig,
) -> BatchReport {
    let mut svc = CompileService::with_system_clock(opts.clone(), config.clone());
    let mut shed: Vec<(usize, String)> = Vec::new();
    for (i, (name, source)) in named_sources.into_iter().enumerate() {
        if !svc.submit(name.clone(), source).is_accepted() {
            shed.push((i, name));
        }
    }
    let mut batch = svc.run_parallel();
    // Load-shed jobs still occupy their submission slot in the report
    // (a transient failure with zero attempts), so callers keep
    // positional alignment with their inputs.
    for (i, name) in shed {
        let mut diags = DiagnosticBag::new();
        diags.push(Diagnostic::error_global(
            "compile service queue full (load shed); retry later",
        ));
        batch.jobs.insert(
            i,
            JobReport {
                id: usize::MAX,
                name,
                outcome: JobOutcome::Failed {
                    kind: FailureKind::Transient,
                    error: CompileFailure::Diagnostics(diags),
                    attempts: 0,
                },
                wall_ticks: 0,
            },
        );
    }
    batch
}
