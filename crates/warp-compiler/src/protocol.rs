//! The w2cd line protocol: one client session over any byte stream.
//!
//! This module is the daemon's *front door*, shared by `w2cd`'s stdin
//! mode and every socket client. It was hoisted out of the binary so
//! the parser can be unit- and fuzz-tested like any other library
//! surface — a service that panics or wedges on a malformed line is a
//! denial-of-service bug, not a CLI nit.
//!
//! Hardening rules, in order of application per line:
//!
//! 1. **Length cap.** Lines are read through [`read_line_capped`],
//!    which never buffers more than [`MAX_LINE_BYTES`] per line. An
//!    oversized line is *drained* (to stay line-synchronised) and
//!    answered with a one-line `error: line too long ...`; the session
//!    continues.
//! 2. **UTF-8.** A line that is not valid UTF-8 is answered with
//!    `error: command line is not valid UTF-8 ...` and dropped; the
//!    session continues. (The old implementation used
//!    `BufRead::lines`, which turns one bad byte into a session-fatal
//!    I/O error — any queued jobs then drained as if the client hung
//!    up.)
//! 3. **Echo discipline.** Unknown commands are echoed back
//!    escaped (`char::escape_debug`) and truncated, so control bytes
//!    and NULs in a hostile line can never corrupt the reply stream or
//!    the terminal reading it.
//!
//! Partial and interleaved writes are the transport's problem, not the
//! parser's: the reader works on whatever chunks `fill_buf` yields, so
//! a command split across ten TCP-ish fragments parses identically to
//! one arriving whole. The fuzz test drives exactly that with a
//! tiny-capacity `BufReader`.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use crate::daemon::{batch_report, CompileDaemon};
use crate::{corpus, health, ExecBackend};
use warp_service::Admission;

/// Hard cap on one protocol line. Far beyond any legitimate command
/// (names and paths, not program text) but small enough that a
/// client streaming garbage cannot balloon the daemon's memory.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Longest unknown-command echo, in characters, before truncation.
const MAX_ECHO_CHARS: usize = 48;

/// Outcome of one capped line read.
enum LineRead {
    /// Stream ended with no pending bytes.
    Eof,
    /// A complete line (without the terminator) is in the buffer.
    Line,
    /// The line exceeded [`MAX_LINE_BYTES`]; it was drained through its
    /// newline (or EOF) and `dropped` counts the bytes discarded.
    TooLong { dropped: usize },
}

/// Reads one `\n`-terminated line into `buf`, never holding more than
/// [`MAX_LINE_BYTES`] in memory. A final unterminated line is returned
/// as a normal line (so `printf 'quit'` without a newline still
/// works).
fn read_line_capped(input: &mut impl BufRead, buf: &mut Vec<u8>) -> std::io::Result<LineRead> {
    buf.clear();
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > MAX_LINE_BYTES {
                let dropped = buf.len() + pos;
                buf.clear();
                input.consume(pos + 1);
                return Ok(LineRead::TooLong { dropped });
            }
            buf.extend_from_slice(&chunk[..pos]);
            input.consume(pos + 1);
            return Ok(LineRead::Line);
        }
        let n = chunk.len();
        if buf.len() + n > MAX_LINE_BYTES {
            let seen = buf.len() + n;
            buf.clear();
            input.consume(n);
            let rest = drain_to_newline(input)?;
            return Ok(LineRead::TooLong {
                dropped: seen + rest,
            });
        }
        buf.extend_from_slice(chunk);
        input.consume(n);
    }
}

/// Discards bytes through the next newline (or EOF), returning how
/// many were dropped before it.
fn drain_to_newline(input: &mut impl BufRead) -> std::io::Result<usize> {
    let mut dropped = 0usize;
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(dropped);
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                input.consume(pos + 1);
                return Ok(dropped + pos);
            }
            None => {
                let n = chunk.len();
                dropped += n;
                input.consume(n);
            }
        }
    }
}

/// Escapes and truncates an untrusted token for echoing back to the
/// client: control bytes render as `\u{..}` escapes, and anything past
/// [`MAX_ECHO_CHARS`] characters is elided.
fn echo_token(token: &str) -> String {
    let mut shown: String = token
        .chars()
        .take(MAX_ECHO_CHARS)
        .flat_map(char::escape_debug)
        .collect();
    if token.chars().nth(MAX_ECHO_CHARS).is_some() {
        shown.push_str("...");
    }
    shown
}

/// One client's session state: its outstanding jobs and exit
/// accounting. Stdin and each socket client get one each; the daemon
/// behind them is shared.
pub struct ClientSession<'d> {
    daemon: &'d CompileDaemon,
    /// Outstanding (submitted, not yet collected) jobs: id → name, in
    /// submission order.
    outstanding: BTreeMap<usize, String>,
    all_clean: bool,
    saw_quit: bool,
    /// Set when this client asked the whole daemon to stop.
    want_shutdown: bool,
}

impl<'d> ClientSession<'d> {
    pub fn new(daemon: &'d CompileDaemon) -> ClientSession<'d> {
        ClientSession {
            daemon,
            outstanding: BTreeMap::new(),
            all_clean: true,
            saw_quit: false,
            want_shutdown: false,
        }
    }

    /// True while every batch this client collected was clean (no
    /// failures, timeouts, panics, or quarantines).
    pub fn all_clean(&self) -> bool {
        self.all_clean
    }

    /// True once this client issued `shutdown`.
    pub fn want_shutdown(&self) -> bool {
        self.want_shutdown
    }

    fn has_name(&self, name: &str) -> bool {
        self.outstanding.values().any(|n| n == name)
    }

    fn submit(
        &mut self,
        out: &mut impl Write,
        name: &str,
        source: String,
        backend: ExecBackend,
    ) -> std::io::Result<()> {
        if self.has_name(name) {
            return writeln!(
                out,
                "error: duplicate name `{name}` already outstanding; \
                 collect it with `run` or pick a distinct name"
            );
        }
        match self.daemon.submit_with_backend(name, source, backend) {
            Admission::Accepted { id, .. } => {
                self.outstanding.insert(id, name.to_owned());
                writeln!(out, "accepted {name} id={id}")
            }
            Admission::Rejected { retry_after_ticks } => {
                writeln!(out, "rejected {name} retry-after-ticks={retry_after_ticks}")
            }
        }
    }

    pub fn queue_corpus(&mut self, out: &mut impl Write, which: &str) -> std::io::Result<()> {
        let programs: Vec<(&str, &str)> = if which == "all" {
            corpus::TABLE_7_1.to_vec()
        } else {
            match corpus::TABLE_7_1.iter().find(|(n, _)| *n == which) {
                Some(p) => vec![*p],
                None => {
                    return writeln!(out, "error: unknown corpus program `{}`", echo_token(which))
                }
            }
        };
        for (name, src) in programs {
            self.submit(out, name, src.to_owned(), ExecBackend::default())?;
        }
        Ok(())
    }

    /// `run`: wait for this client's jobs and print the batch summary.
    pub fn run(&mut self, out: &mut impl Write) -> std::io::Result<()> {
        let ids: Vec<usize> = self.outstanding.keys().copied().collect();
        self.outstanding.clear();
        let reports = self.daemon.wait(&ids);
        let batch = batch_report(reports, self.daemon.quarantined_names());
        write!(out, "{}", batch.summary())?;
        let healthy = batch.is_healthy();
        if !healthy {
            writeln!(
                out,
                "batch unhealthy: timeouts, panics, wedges, or quarantined programs present"
            )?;
        }
        self.all_clean &= healthy && batch.failed() == 0;
        Ok(())
    }

    fn status(&self, out: &mut impl Write) -> std::io::Result<()> {
        let in_flight = self.daemon.jobs_in_flight();
        let queued = in_flight
            .iter()
            .filter(|(_, _, s)| *s == warp_service::JobState::Queued)
            .count();
        let running = in_flight
            .iter()
            .filter(|(_, _, s)| *s == warp_service::JobState::Running)
            .count();
        let done = in_flight.len() - queued - running;
        let health = health::assess(self.daemon);
        writeln!(
            out,
            "in-flight={} queued={queued} running={running} done={done} health={} \
             quarantined=[{}]",
            in_flight.len(),
            health.level,
            self.daemon.quarantined_names().join(", "),
        )?;
        for (id, name, state) in &in_flight {
            writeln!(out, "  id={id} {name} {state}")?;
        }
        let history = self.daemon.breaker_history();
        if !history.is_empty() {
            let threshold = self.daemon.config().service.exec.breaker_threshold;
            let rendered: Vec<String> = history
                .iter()
                .map(|(n, k)| format!("{n}={k}/{threshold}"))
                .collect();
            writeln!(out, "  breakers: {}", rendered.join(", "))?;
        }
        Ok(())
    }

    /// `health`: the honest taxonomy verdict, leading the line, plus
    /// the live limits and every contributing reason.
    fn health(&self, out: &mut impl Write) -> std::io::Result<()> {
        let report = health::assess(self.daemon);
        let c = self.daemon.config().service.clone();
        let stats = self.daemon.pool_stats();
        let native = self.daemon.native_stats();
        write!(
            out,
            "{} workers={} queued={} running={} queue-capacity={} deadline-ms={} \
             max-attempts={} breaker-threshold={} skew-max-events={} max-cell-cycles={} \
             max-source-bytes={} quarantined={} wedged={} respawned={} native-fallbacks={}",
            report.level,
            self.daemon.workers(),
            self.daemon.queue_len(),
            self.daemon.running_len(),
            c.exec.queue_capacity,
            c.exec.deadline_ticks / 1_000,
            c.exec.max_attempts,
            c.exec.breaker_threshold,
            c.skew_max_events,
            c.max_cell_cycles,
            c.max_source_bytes,
            self.daemon.quarantined_names().len(),
            stats.wedged,
            stats.respawned,
            native.fallbacks,
        )?;
        if report.reasons.is_empty() {
            writeln!(out)
        } else {
            writeln!(out, " reasons=[{}]", report.reasons_joined())
        }
    }

    fn cache(&self, out: &mut impl Write, clear: bool) -> std::io::Result<()> {
        if clear {
            let r = self.daemon.clear_cache();
            return writeln!(
                out,
                "cache cleared: memory {} entries / {} bytes, disk {} artifacts / {} bytes",
                r.memory_entries, r.memory_bytes, r.disk_entries, r.disk_bytes,
            );
        }
        let s = self.daemon.cache_stats();
        writeln!(
            out,
            "cache: entries={} bytes={} lookups={} hits={} negative-hits={} misses={} \
             coalesced={} inserts={} evictions={} expired={} hit-rate={:.2}",
            s.entries,
            s.resident_bytes,
            s.lookups,
            s.hits,
            s.negative_hits,
            s.misses,
            s.coalesced,
            s.inserts + s.negative_inserts,
            s.evictions,
            s.expired,
            s.hit_rate(),
        )?;
        if let Some(d) = self.daemon.store_stats() {
            writeln!(
                out,
                "  disk: artifacts={} bytes={} hits={} misses={} puts={} put-failures={} \
                 evictions={} recovered={} quarantined={}",
                d.entries,
                d.resident_bytes,
                d.hits,
                d.misses,
                d.puts,
                d.put_failures,
                d.evictions,
                d.recovered,
                d.quarantined,
            )?;
        }
        Ok(())
    }

    fn store(&self, out: &mut impl Write) -> std::io::Result<()> {
        let Some(d) = self.daemon.store_stats() else {
            return match self.daemon.store_error() {
                Some(e) => writeln!(out, "store: unavailable ({e}); running memory-only"),
                None => writeln!(out, "store: not configured (start with --store-dir)"),
            };
        };
        let dir = self
            .daemon
            .config()
            .store
            .as_ref()
            .map(|s| s.dir.display().to_string())
            .unwrap_or_default();
        writeln!(
            out,
            "store: dir={dir} artifacts={} bytes={} recovered={} quarantined={} \
             tmp-cleaned={} hits={} misses={} puts={} put-failures={} evictions={}",
            d.entries,
            d.resident_bytes,
            d.recovered,
            d.quarantined,
            d.tmp_cleaned,
            d.hits,
            d.misses,
            d.puts,
            d.put_failures,
            d.evictions,
        )
    }

    fn stats(&self, out: &mut impl Write) -> std::io::Result<()> {
        let s = self.daemon.pool_stats();
        let native = self.daemon.native_stats();
        writeln!(
            out,
            "pool: workers={} submitted={} accepted={} shed={} completed={} panicked={} \
             quarantined={} wedged={} respawned={} max-queue-depth={} \
             native: attempts={} failures={} fallbacks={} breaker-skips={}",
            self.daemon.workers(),
            s.submitted,
            s.accepted,
            s.shed,
            s.completed,
            s.panicked,
            s.quarantined,
            s.wedged,
            s.respawned,
            s.max_queue_depth,
            native.attempts,
            native.failures,
            native.fallbacks,
            native.breaker_skips,
        )
    }

    /// Dispatches one protocol line. Returns `false` when the session
    /// should end.
    pub fn handle_line(&mut self, out: &mut impl Write, line: &str) -> std::io::Result<bool> {
        let mut words = line.split_whitespace();
        match words.next() {
            None => {}
            Some("quit") => {
                self.saw_quit = true;
                return Ok(false);
            }
            Some("shutdown") if words.next().is_none() => {
                self.saw_quit = true;
                self.want_shutdown = true;
                writeln!(out, "shutting down")?;
                return Ok(false);
            }
            Some("corpus") => {
                let which = words.next().unwrap_or("all");
                if words.next().is_some() {
                    writeln!(out, "error: usage: corpus [NAME|all]")?;
                } else {
                    self.queue_corpus(out, which)?;
                }
            }
            Some("submit") => match (words.next(), words.next(), words.next(), words.next()) {
                (Some(name), Some(path), backend, None) => {
                    match backend.map_or(Ok(ExecBackend::default()), str::parse) {
                        Ok(backend) => match std::fs::read_to_string(path) {
                            Ok(source) => self.submit(out, name, source, backend)?,
                            Err(e) => {
                                writeln!(out, "error: cannot read `{}`: {e}", echo_token(path))?
                            }
                        },
                        Err(e) => writeln!(out, "error: {e}")?,
                    }
                }
                _ => writeln!(out, "error: usage: submit NAME FILE.w2 [sim|native]")?,
            },
            Some("run") if words.next().is_none() => self.run(out)?,
            Some("status") if words.next().is_none() => self.status(out)?,
            Some("health") if words.next().is_none() => self.health(out)?,
            Some("stats") if words.next().is_none() => self.stats(out)?,
            Some("cache") => match words.next() {
                None => self.cache(out, false)?,
                Some("clear") if words.next().is_none() => self.cache(out, true)?,
                _ => writeln!(out, "error: usage: cache [clear]")?,
            },
            Some("store") if words.next().is_none() => self.store(out)?,
            Some("reset") => match (words.next(), words.next()) {
                (Some(name), None) => {
                    let breaker = self.daemon.reset_breaker(name);
                    let native = self.daemon.reset_native_breaker();
                    if breaker {
                        writeln!(out, "breaker reset for {name}")?;
                    } else if !native {
                        writeln!(out, "no breaker history for {}", echo_token(name))?;
                    }
                    if native {
                        writeln!(out, "native breaker reset")?;
                    }
                }
                _ => writeln!(out, "error: usage: reset NAME")?,
            },
            Some(cmd @ ("run" | "status" | "health" | "stats" | "store" | "shutdown")) => {
                writeln!(out, "error: `{cmd}` takes no operands")?;
            }
            Some(other) => writeln!(out, "error: unknown command `{}`", echo_token(other))?,
        }
        Ok(true)
    }

    /// Runs the line protocol until quit/EOF, then settles: an EOF
    /// with jobs still outstanding waits for them (one final batch
    /// summary) so piped sessions never silently drop work.
    ///
    /// Oversized and non-UTF-8 lines are answered with one-line errors
    /// and the session continues — only transport-level I/O errors end
    /// it early (and even those fall through to the EOF drain).
    pub fn serve(&mut self, mut input: impl BufRead, out: &mut impl Write) {
        let mut buf = Vec::new();
        loop {
            match read_line_capped(&mut input, &mut buf) {
                Ok(LineRead::Eof) => break,
                Ok(LineRead::TooLong { dropped }) => {
                    let _ = writeln!(
                        out,
                        "error: line too long ({dropped} bytes > {MAX_LINE_BYTES} byte cap); \
                         line dropped"
                    );
                }
                Ok(LineRead::Line) => {
                    let text = match std::str::from_utf8(&buf) {
                        Ok(t) => t.trim_end_matches('\r'),
                        Err(e) => {
                            let _ = writeln!(
                                out,
                                "error: command line is not valid UTF-8 ({e}); line dropped"
                            );
                            let _ = out.flush();
                            continue;
                        }
                    };
                    match self.handle_line(out, text) {
                        Ok(true) => {}
                        Ok(false) => break,
                        // The client went away; stop reading, the drain
                        // below still collects its jobs.
                        Err(_) => break,
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "error: input: {e}");
                    break;
                }
            }
            let _ = out.flush();
        }
        if !self.saw_quit && !self.outstanding.is_empty() {
            let _ = writeln!(
                out,
                "draining {} outstanding job(s) at EOF",
                self.outstanding.len()
            );
            let _ = self.run(out);
        }
        let _ = out.flush();
    }
}

/// The startup banner: limits, warm-start recovery, and the current
/// health verdict, so a fresh daemon announces degradation (e.g. a
/// store that failed to open) instead of burying it.
pub fn banner(daemon: &CompileDaemon) -> String {
    let c = &daemon.config().service.exec;
    let mut line = format!(
        "w2cd ready (queue {}, deadline {} ms, breaker threshold {}, workers {})",
        c.queue_capacity,
        c.deadline_ticks / 1_000,
        c.breaker_threshold,
        daemon.workers(),
    );
    if let Some(w) = daemon.warm_start() {
        line.push_str(&format!(
            "\nstore: {} artifact(s) recovered, {} corrupt quarantined, \
             {} tmp cleaned, {} bytes resident",
            w.recovered, w.quarantined, w.tmp_cleaned, w.resident_bytes,
        ));
    } else if let Some(e) = daemon.store_error() {
        line.push_str(&format!("\nstore: unavailable ({e}); running memory-only"));
    }
    let health = health::assess(daemon);
    if health.reasons.is_empty() {
        line.push_str(&format!("\nhealth: {}", health.level));
    } else {
        line.push_str(&format!(
            "\nhealth: {} ({})",
            health.level,
            health.reasons_joined()
        ));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::daemon::DaemonConfig;
    use crate::service::ServiceConfig;
    use crate::CompileOptions;
    use std::io::{BufReader, Cursor};
    use std::sync::Arc;
    use warp_common::ctrl::SplitMix64;
    use warp_common::ManualClock;
    use warp_oracle::fuzz::Mutator;
    use warp_service::{ExecutorConfig, ShutdownMode};

    fn test_daemon() -> CompileDaemon {
        CompileDaemon::new(
            CompileOptions::default(),
            DaemonConfig {
                service: ServiceConfig {
                    exec: ExecutorConfig {
                        queue_capacity: 256,
                        ..ExecutorConfig::default()
                    },
                    workers: 2,
                    ..ServiceConfig::default()
                },
                cache: CacheConfig::default(),
                store: None,
            },
            Arc::new(ManualClock::new(0)),
        )
    }

    /// Serves `input` through a deliberately tiny `BufReader` so every
    /// line arrives in partial fragments, and returns the reply text.
    fn serve_bytes(daemon: &CompileDaemon, input: &[u8]) -> String {
        let mut session = ClientSession::new(daemon);
        let mut out = Vec::new();
        session.serve(
            BufReader::with_capacity(7, Cursor::new(input.to_vec())),
            &mut out,
        );
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn oversized_line_is_rejected_and_session_continues() {
        let daemon = test_daemon();
        let mut input = vec![b'a'; MAX_LINE_BYTES + 10];
        input.push(b'\n');
        input.extend_from_slice(b"health\nquit\n");
        let reply = serve_bytes(&daemon, &input);
        assert!(reply.contains("error: line too long"), "{reply}");
        assert!(reply.contains("healthy workers="), "{reply}");
        daemon.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn oversized_unterminated_line_is_rejected() {
        let daemon = test_daemon();
        let input = vec![b'z'; MAX_LINE_BYTES * 2];
        let reply = serve_bytes(&daemon, &input);
        assert!(reply.contains("error: line too long"), "{reply}");
        daemon.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn invalid_utf8_line_is_dropped_and_session_continues() {
        let daemon = test_daemon();
        let mut input = b"corpus polynomial\n".to_vec();
        input.extend_from_slice(b"\xff\xfe\xfa\n");
        input.extend_from_slice(b"run\nquit\n");
        let reply = serve_bytes(&daemon, &input);
        assert!(reply.contains("accepted polynomial"), "{reply}");
        assert!(reply.contains("not valid UTF-8"), "{reply}");
        assert!(reply.contains("batch: 1 ok"), "{reply}");
        daemon.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn nul_bytes_in_commands_are_echoed_escaped() {
        let daemon = test_daemon();
        let reply = serve_bytes(&daemon, b"he\x00alth\nquit\n");
        assert!(reply.contains("error: unknown command"), "{reply}");
        // The raw NUL must not appear in the reply stream.
        assert!(!reply.as_bytes().contains(&0u8), "{reply:?}");
        daemon.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn long_unknown_command_is_truncated_in_echo() {
        let daemon = test_daemon();
        let mut input = vec![b'x'; 4000];
        input.extend_from_slice(b"\nquit\n");
        let reply = serve_bytes(&daemon, &input);
        assert!(reply.contains("error: unknown command"), "{reply}");
        let echo_line = reply
            .lines()
            .find(|l| l.contains("unknown command"))
            .expect("echo line");
        assert!(echo_line.len() < 120, "echo not truncated: {echo_line}");
        daemon.shutdown(ShutdownMode::Drain);
    }

    /// The satellite fuzz pass: mutate a corpus of valid protocol
    /// lines (byte flips, splices, NUL/invalid-UTF-8 injection,
    /// truncation — the `warp_oracle::fuzz` mutator menu) and feed
    /// each case through a fragmenting reader into a shared daemon.
    /// The invariant is total: no panic, no wedge, and the daemon
    /// still serves a clean corpus batch afterwards.
    #[test]
    fn fuzzed_command_streams_never_break_the_daemon() {
        let daemon = test_daemon();
        let mutator = Mutator::new(&[
            "corpus polynomial",
            "corpus all",
            "submit p1 /no/such/file.w2 sim",
            "submit p2 /no/such/file.w2 native",
            "status",
            "health",
            "stats",
            "cache",
            "cache clear",
            "store",
            "reset polynomial",
            "run",
            "quit",
            "shutdown",
        ]);
        let mut rng = SplitMix64::new(0x5e1f_0ea1 ^ 0xbeef);
        for _ in 0..256 {
            let case = mutator.case(&mut rng);
            let mut session = ClientSession::new(&daemon);
            let mut out = Vec::new();
            session.serve(BufReader::with_capacity(5, Cursor::new(case)), &mut out);
        }
        // The daemon survived; prove it still serves real work.
        let reply = serve_bytes(&daemon, b"corpus polynomial\nrun\nquit\n");
        assert!(reply.contains("batch: 1 ok"), "{reply}");
        daemon.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn banner_reports_health_line() {
        let daemon = test_daemon();
        let b = banner(&daemon);
        assert!(b.starts_with("w2cd ready ("), "{b}");
        assert!(b.contains("\nhealth: healthy"), "{b}");
        daemon.shutdown(ShutdownMode::Drain);
    }
}
