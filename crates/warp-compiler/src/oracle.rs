//! The reference W2 interpreter, re-exported from `warp-oracle`.
//!
//! The interpreter itself lives in the `warp-oracle` crate (together
//! with the seeded program generator and the shrinker) so it can never
//! depend on — or be contaminated by — the compiler it checks. This
//! module keeps the old `warp_compiler::oracle` path alive for
//! `w2c --check` and the bench differential tests, and holds the
//! corpus conformance tests, which need the compiler-side `corpus`
//! and `reference` modules.

pub use warp_oracle::interp::{interpret, interpret_run, OracleRun};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{corpus, reference};
    use w2_lang::parse_and_check;
    use warp_host::HostMemory;

    fn run_oracle(src: &str, inputs: &[(&str, &[f32])]) -> HostMemory {
        let hir = parse_and_check(src).expect("valid");
        let mut host = {
            // Build via the same HIR variable table the compiler uses.
            let ir = warp_ir::lower(&hir, &warp_ir::LowerOptions::default()).expect("lowers");
            HostMemory::new(&ir.vars)
        };
        for (name, data) in inputs {
            host.set(name, data).expect("test input binds");
        }
        interpret(&hir, &host).expect("oracle runs")
    }

    #[test]
    fn oracle_matches_polynomial_reference() {
        let c: Vec<f32> = vec![1.0, -0.5, 2.0];
        let z: Vec<f32> = (0..16).map(|i| i as f32 * 0.1 - 0.8).collect();
        let host = run_oracle(&corpus::polynomial_source(3, 16), &[("c", &c), ("z", &z)]);
        assert_eq!(
            host.get("results").unwrap(),
            &reference::polynomial(&c, &z)[..]
        );
    }

    #[test]
    fn oracle_matches_conv_reference() {
        let w = vec![0.5f32, -0.25, 1.0];
        let x: Vec<f32> = (0..20).map(|i| ((i * 7) % 9) as f32).collect();
        let host = run_oracle(&corpus::conv1d_source(3, 20), &[("w", &w), ("x", &x)]);
        assert_eq!(host.get("y").unwrap(), &reference::conv1d(&w, &x)[..]);
    }

    #[test]
    fn oracle_matches_mandelbrot_reference() {
        let n = 6usize;
        let cre: Vec<f32> = (0..n * n).map(|i| -2.0 + (i % n) as f32 * 0.5).collect();
        let cim: Vec<f32> = (0..n * n).map(|i| -1.0 + (i / n) as f32 * 0.4).collect();
        let host = run_oracle(
            &corpus::mandelbrot_source(n as u32, 4),
            &[("cre", &cre), ("cim", &cim)],
        );
        assert_eq!(
            host.get("count").unwrap(),
            &reference::mandelbrot(&cre, &cim, 4)[..]
        );
    }

    #[test]
    fn oracle_matches_matmul_reference() {
        let a: Vec<f32> = (0..12).map(|i| i as f32 - 5.0).collect();
        let b: Vec<f32> = (0..16).map(|i| ((i * 5) % 7) as f32).collect();
        let host = run_oracle(&corpus::matmul_source(2, 3, 4, 2), &[("a", &a), ("b", &b)]);
        assert_eq!(
            host.get("c").unwrap(),
            &reference::matmul(&a, &b, 3, 4, 4)[..]
        );
    }

    #[test]
    fn oracle_detects_count_mismatch() {
        // Receives more than upstream sends.
        let src = "module bad (xs in) float xs[4]; \
            cellprogram (cid : 0 : 1) begin function f begin float v; \
            receive (L, X, v, xs[0]); receive (L, X, v, xs[1]); send (R, X, v); \
            end call f; end";
        let hir = parse_and_check(src).expect("front end accepts");
        let ir = warp_ir::lower(&hir, &warp_ir::LowerOptions::default()).expect("lowers");
        let host = HostMemory::new(&ir.vars);
        let err = interpret(&hir, &host).expect_err("cell 1 starves");
        assert!(err.contains("empty upstream"), "{err}");
    }
}
