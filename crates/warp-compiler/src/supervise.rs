//! The seeded wedge-storm soak: proof that the supervision layer
//! detects stalled jobs, replaces their workers, escalates retries
//! into hard isolation, and keeps serving — deterministically.
//!
//! [`run_wedge_soak`] drives a live [`CompileDaemon`] whose chaos
//! hooks inject three poison classes among a healthy Zipfian mix
//! (reusing the [`crate::soak`] program universe):
//!
//! * **once-wedges** (`!wedge-once` names): the job spins without
//!   polling its cancel token on its *first* run only — an
//!   environmental hang. The supervisor wedges it, and the escalated
//!   resubmission (subprocess probe, then in-process reproduce)
//!   succeeds.
//! * **hard-wedges** (`!wedge-hard` names): the job spins on *every*
//!   run. The supervisor wedges it; the escalated retry's sacrificial
//!   child spins too and is `SIGKILL`ed at the isolation timeout, the
//!   retry fails permanently, and the breaker quarantines the name —
//!   the full three-rung ladder.
//! * **native faults** (`!nfault` names, native backend): native
//!   serving validation fails and the job is transparently re-served
//!   by the sim fallback (`degraded`), exercising the backend
//!   fallback and its counters.
//!
//! The storm runs in lockstep waves (pause → seeded burst → resume),
//! with at most `workers - 1` spinners per wave so healthy work keeps
//! flowing around the stalled workers. Once a wave's healthy jobs
//! complete and its spinners are running, the clock is advanced past
//! the grace and [`CompileDaemon::supervise_now`] must wedge exactly
//! the spinners — each delivering exactly one `wedged` report, each
//! wedged worker replaced before the next wave.
//!
//! Invariants are *recorded* (not panicked) in
//! [`WedgeSoakReport::violations`]:
//!
//! 1. Exactly one terminal report per accepted job; a second wait
//!    yields nothing.
//! 2. Every injected spinner ends `wedged`; healthy jobs end
//!    `ok`/`degraded`; native-fault jobs end `degraded`.
//! 3. After every wave the pool is back to full strength
//!    (`live_workers == workers`), and at the end
//!    `respawned == wedged` (zero workers permanently lost).
//! 4. With native faults injected, at least one native→sim fallback
//!    was served.
//! 5. With escalation enabled, once-wedges recover (`ok`) and
//!    hard-wedges fail then land in quarantine — and nothing else is
//!    quarantined.
//!
//! The sorted `(name, outcome-label)` multiset is the determinism
//! identity: two runs of the same seed must agree exactly.
//! [`WedgeSoakReport::to_json`] renders `BENCH_supervise.json`.
//!
//! **Escalation needs a real binary.** The subprocess rung re-execs
//! [`WedgeSoakConfig::isolate_exe`]; when it is `None` the escalation
//! phase is skipped entirely (wedged names are simply never
//! resubmitted) so library tests can run without spawning processes —
//! and without re-exec'ing a test harness that does not speak the
//! child protocol.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use warp_common::{Clock, SplitMix64};
use warp_service::{ExecutorConfig, JobOutcome, ShutdownMode, SUPERVISE_MANUAL};

use crate::cache::CacheConfig;
use crate::corpus;
use crate::daemon::{CompileDaemon, DaemonConfig};
use crate::service::ServiceConfig;
use crate::soak::{program_universe, zipf};
use crate::{CompileOptions, ExecBackend};

/// Marker for the first-run-only spin (environmental wedge).
pub const WEDGE_ONCE_MARKER: &str = "!wedge-once";
/// Marker for the every-run spin (reproducible hard wedge).
pub const WEDGE_HARD_MARKER: &str = "!wedge-hard";
/// Marker for injected native-validation faults.
pub const NATIVE_FAULT_MARKER: &str = "!nfault";

/// Knobs of one wedge-storm run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WedgeSoakConfig {
    /// Seed for the whole storm (poison placement, program mix,
    /// arrival jitter).
    pub seed: u64,
    /// Worker threads (spinners per wave are capped at `workers - 1`).
    pub workers: usize,
    /// Jobs submitted in the storm phase.
    pub jobs: usize,
    /// Wedge draws per thousand submissions (split evenly between
    /// once- and hard-wedges, capped per wave).
    pub wedge_per_mille: u32,
    /// Native-fault draws per thousand submissions.
    pub native_per_mille: u32,
    /// Queue capacity (wave size).
    pub queue_capacity: usize,
    /// Heartbeat grace in clock ticks before a job counts as wedged.
    pub grace_ticks: u64,
    /// Circuit-breaker threshold (shared by the per-program and
    /// native-backend breakers).
    pub breaker_threshold: u32,
    /// Maximum seeded arrival jitter between submissions, in ticks.
    pub arrival_jitter_max_ticks: u64,
    /// Binary to re-exec for the hard-isolation rung. `None` skips
    /// the escalation phase (see the module docs).
    pub isolate_exe: Option<PathBuf>,
    /// Real-time budget per isolated child before `SIGKILL`.
    pub isolate_timeout_ms: u64,
    /// `true` when the clock only moves when this harness advances it
    /// (ManualClock): enables the strict per-wave detection checks.
    /// Set `false` on a system clock, where the background supervisor
    /// races this driver benignly.
    pub lockstep: bool,
}

impl Default for WedgeSoakConfig {
    fn default() -> WedgeSoakConfig {
        WedgeSoakConfig {
            seed: 0x5EED_0CA1,
            workers: 4,
            jobs: 200,
            wedge_per_mille: 150,
            native_per_mille: 100,
            queue_capacity: 32,
            grace_ticks: 1_000,
            breaker_threshold: 2,
            arrival_jitter_max_ticks: 25,
            isolate_exe: None,
            isolate_timeout_ms: 250,
            lockstep: true,
        }
    }
}

/// Everything one wedge-storm run observed.
#[derive(Clone, Debug)]
pub struct WedgeSoakReport {
    /// The configuration that produced this report.
    pub config: WedgeSoakConfig,
    /// Sorted `(job name, outcome label)` pairs — the determinism
    /// identity.
    pub outcomes: Vec<(String, String)>,
    /// Admission attempts across all phases.
    pub submitted: u64,
    /// Jobs admitted.
    pub accepted: u64,
    /// Jobs shed at admission.
    pub shed: u64,
    /// Spinner jobs injected (once + hard).
    pub wedge_injected: u64,
    /// Native-fault jobs injected.
    pub native_injected: u64,
    /// Jobs the supervisor declared wedged.
    pub wedges_detected: u64,
    /// Replacement workers spawned.
    pub respawned: u64,
    /// Live workers at the end (must equal `config.workers`).
    pub live_workers_end: usize,
    /// Native→sim fallbacks served (includes breaker skips).
    pub native_fallbacks: u64,
    /// Previously-wedged names resubmitted through the isolation
    /// ladder.
    pub escalations_probed: u64,
    /// Escalated once-wedges that came back `ok`.
    pub escalations_recovered: u64,
    /// Names quarantined by the breaker at the end.
    pub quarantined: Vec<String>,
    /// Median ticks-past-heartbeat at wedge detection.
    pub wedge_detect_p50_ticks: u64,
    /// 99th-percentile ticks-past-heartbeat at wedge detection.
    pub wedge_detect_p99_ticks: u64,
    /// Median healthy-job latency in ticks, measured *during* the
    /// wedge storm.
    pub healthy_p50_ticks: u64,
    /// 99th-percentile healthy-job latency under the storm.
    pub healthy_p99_ticks: u64,
    /// Elapsed clock ticks across the whole run.
    pub elapsed_ticks: u64,
    /// Invariant violations observed (empty = the run proved out).
    pub violations: Vec<String>,
}

impl WedgeSoakReport {
    /// `true` when every supervision invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The determinism identity: compare across two runs of one seed.
    pub fn identity(&self) -> &[(String, String)] {
        &self.outcomes
    }

    /// Renders `BENCH_supervise.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"warp-supervise-bench-v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"workers\": {},\n", self.config.workers));
        out.push_str(&format!("  \"jobs\": {},\n", self.config.jobs));
        out.push_str(&format!(
            "  \"wedge_per_mille\": {},\n",
            self.config.wedge_per_mille
        ));
        out.push_str(&format!(
            "  \"native_per_mille\": {},\n",
            self.config.native_per_mille
        ));
        out.push_str(&format!(
            "  \"grace_ticks\": {},\n",
            self.config.grace_ticks
        ));
        out.push_str(&format!(
            "  \"escalation\": {},\n",
            self.config.isolate_exe.is_some()
        ));
        out.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        out.push_str(&format!("  \"accepted\": {},\n", self.accepted));
        out.push_str(&format!("  \"shed\": {},\n", self.shed));
        out.push_str(&format!("  \"wedge_injected\": {},\n", self.wedge_injected));
        out.push_str(&format!(
            "  \"native_injected\": {},\n",
            self.native_injected
        ));
        out.push_str(&format!(
            "  \"wedges_detected\": {},\n",
            self.wedges_detected
        ));
        out.push_str(&format!("  \"respawned\": {},\n", self.respawned));
        out.push_str(&format!(
            "  \"workers_lost\": {},\n",
            self.wedges_detected.saturating_sub(self.respawned)
        ));
        out.push_str(&format!(
            "  \"live_workers_end\": {},\n",
            self.live_workers_end
        ));
        out.push_str(&format!(
            "  \"native_fallbacks\": {},\n",
            self.native_fallbacks
        ));
        out.push_str(&format!(
            "  \"escalations_probed\": {},\n",
            self.escalations_probed
        ));
        out.push_str(&format!(
            "  \"escalations_recovered\": {},\n",
            self.escalations_recovered
        ));
        out.push_str(&format!(
            "  \"wedge_detect_p50_ticks\": {},\n",
            self.wedge_detect_p50_ticks
        ));
        out.push_str(&format!(
            "  \"wedge_detect_p99_ticks\": {},\n",
            self.wedge_detect_p99_ticks
        ));
        out.push_str(&format!(
            "  \"healthy_p50_ticks\": {},\n",
            self.healthy_p50_ticks
        ));
        out.push_str(&format!(
            "  \"healthy_p99_ticks\": {},\n",
            self.healthy_p99_ticks
        ));
        out.push_str(&format!("  \"elapsed_ticks\": {},\n", self.elapsed_ticks));
        out.push_str("  \"quarantined\": [");
        for (i, name) in self.quarantined.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(name));
        }
        out.push_str("],\n");
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(v));
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What one submitted job is expected to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobKind {
    Clean,
    NativeFault,
    SpinOnce,
    SpinHard,
}

/// Spins (real time) until `cond` holds, recording a violation on a
/// 30 s timeout. Dispatch progress does not need the soak clock to
/// advance, so this is safe under a `ManualClock`.
fn wait_until(what: &str, violations: &mut Vec<String>, mut cond: impl FnMut() -> bool) -> bool {
    let start = std::time::Instant::now();
    while !cond() {
        if start.elapsed() > Duration::from_secs(30) {
            violations.push(format!("timed out waiting for {what}"));
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

/// Runs the full wedge storm against a fresh daemon on the given
/// clock. See the module docs for phases and invariants.
pub fn run_wedge_soak(config: &WedgeSoakConfig, clock: Arc<dyn Clock>) -> WedgeSoakReport {
    let release = Arc::new(AtomicBool::new(false));
    let mut daemon = CompileDaemon::new(
        CompileOptions::default(),
        DaemonConfig {
            service: ServiceConfig {
                exec: ExecutorConfig {
                    queue_capacity: config.queue_capacity,
                    deadline_ticks: 0,
                    breaker_threshold: config.breaker_threshold,
                    ..ExecutorConfig::default()
                },
                workers: config.workers,
                skew_max_events: 50_000_000,
                max_cell_cycles: 100_000_000,
                max_source_bytes: 4 * 1024 * 1024,
                supervise_grace_ticks: config.grace_ticks,
                // Lockstep runs own every scan via `supervise_now`;
                // a background scanner would race the strict
                // found-count check.
                supervise_interval_ms: if config.lockstep { SUPERVISE_MANUAL } else { 0 },
            },
            cache: CacheConfig {
                byte_budget: 64 << 20,
                negative_ttl_ticks: u64::MAX / 2,
            },
            store: None,
        },
        clock.clone(),
    )
    .with_chaos_spin_once_marker(WEDGE_ONCE_MARKER, release.clone())
    .with_chaos_spin_marker(WEDGE_HARD_MARKER, release.clone())
    .with_chaos_native_marker(NATIVE_FAULT_MARKER)
    .with_isolate_timeout(Duration::from_millis(config.isolate_timeout_ms));
    if let Some(exe) = &config.isolate_exe {
        daemon = daemon.with_isolate_exe(exe.clone());
    }

    let started = clock.now_ticks();
    let mut rng = SplitMix64::new(config.seed);
    let programs = program_universe();
    let mut violations: Vec<String> = Vec::new();
    let mut outcomes: Vec<(String, String)> = Vec::new();
    let mut healthy_latencies: Vec<u64> = Vec::new();
    let mut wedge_latencies: Vec<u64> = Vec::new();
    let (mut submitted, mut accepted, mut shed) = (0u64, 0u64, 0u64);
    let (mut wedge_injected, mut native_injected) = (0u64, 0u64);
    // Sources of injected spinners, for the escalation phase.
    let mut spin_sources: Vec<(String, JobKind, String)> = Vec::new();
    let mut serial = 0usize;

    // ---- Storm phase: lockstep waves of poisoned bursts. ----
    let mut remaining = config.jobs;
    while remaining > 0 {
        let size = remaining.min(config.queue_capacity.max(1));
        remaining -= size;
        let mut spin_budget = config.workers.saturating_sub(1);
        let mut wave: Vec<(usize, String, JobKind)> = Vec::new();
        daemon.pause();
        for _ in 0..size {
            serial += 1;
            if config.arrival_jitter_max_ticks != 0 {
                let jitter = rng.below(config.arrival_jitter_max_ticks + 1);
                if jitter != 0 {
                    clock.sleep_ticks(jitter);
                }
            }
            let wedge_draw = spin_budget > 0 && rng.chance(config.wedge_per_mille.into(), 1_000);
            let (name, source, kind, backend) = if wedge_draw {
                spin_budget -= 1;
                let hard = rng.chance(1, 2);
                let (marker, kind) = if hard {
                    (WEDGE_HARD_MARKER, JobKind::SpinHard)
                } else {
                    (WEDGE_ONCE_MARKER, JobKind::SpinOnce)
                };
                (
                    format!("wedge{marker}#{serial}"),
                    corpus::POLYNOMIAL.to_owned(),
                    kind,
                    ExecBackend::Sim,
                )
            } else if rng.chance(config.native_per_mille.into(), 1_000) {
                (
                    format!("nat{NATIVE_FAULT_MARKER}#{serial}"),
                    corpus::POLYNOMIAL.to_owned(),
                    JobKind::NativeFault,
                    ExecBackend::Native,
                )
            } else {
                let k = zipf(&mut rng, programs.len());
                let (prog, src) = &programs[k];
                (
                    format!("{prog}#{serial}"),
                    src.clone(),
                    JobKind::Clean,
                    ExecBackend::Sim,
                )
            };
            submitted += 1;
            match daemon
                .submit_with_backend(&name, source.clone(), backend)
                .id()
            {
                Some(id) => {
                    accepted += 1;
                    match kind {
                        JobKind::SpinOnce | JobKind::SpinHard => {
                            wedge_injected += 1;
                            spin_sources.push((name.clone(), kind, source));
                        }
                        JobKind::NativeFault => native_injected += 1,
                        JobKind::Clean => {}
                    }
                    wave.push((id, name, kind));
                }
                None => shed += 1,
            }
        }
        daemon.resume();

        let spin_ids: Vec<usize> = wave
            .iter()
            .filter(|(_, _, k)| matches!(k, JobKind::SpinOnce | JobKind::SpinHard))
            .map(|(id, _, _)| *id)
            .collect();
        let other_ids: Vec<usize> = wave
            .iter()
            .filter(|(_, _, k)| matches!(k, JobKind::Clean | JobKind::NativeFault))
            .map(|(id, _, _)| *id)
            .collect();

        // Healthy work must complete *around* the stalled workers.
        let reports = daemon.wait(&other_ids);
        if reports.len() != other_ids.len() {
            violations.push(format!(
                "lost responses: waited for {} healthy jobs, got {}",
                other_ids.len(),
                reports.len()
            ));
        }
        let kind_of = |name: &str| {
            wave.iter()
                .find(|(_, n, _)| n == name)
                .map(|(_, _, k)| *k)
                .unwrap_or(JobKind::Clean)
        };
        for r in &reports {
            let label = r.outcome.label();
            match kind_of(&r.name) {
                JobKind::NativeFault if label != "degraded" => violations.push(format!(
                    "native-fault job `{}` ended `{label}`, expected degraded",
                    r.name
                )),
                JobKind::Clean if label != "ok" && label != "degraded" => {
                    violations.push(format!("healthy job `{}` ended `{label}`", r.name))
                }
                _ => {}
            }
            outcomes.push((r.name.clone(), label.to_owned()));
            healthy_latencies.push(r.wall_ticks);
        }

        if !spin_ids.is_empty() {
            // All spinners must reach a worker before the grace can
            // mean anything.
            wait_until("spinners to be dispatched", &mut violations, || {
                daemon.queue_len() == 0 && daemon.running_len() == spin_ids.len()
            });
            clock.sleep_ticks(config.grace_ticks + 1);
            let found = daemon.supervise_now();
            if config.lockstep && found != spin_ids.len() {
                violations.push(format!(
                    "supervisor wedged {found} of {} stalled jobs in one scan",
                    spin_ids.len()
                ));
            }
            let wedged = daemon.wait(&spin_ids);
            if wedged.len() != spin_ids.len() {
                violations.push(format!(
                    "lost wedge reports: {} stalled, {} reported",
                    spin_ids.len(),
                    wedged.len()
                ));
            }
            for r in &wedged {
                match r.outcome {
                    JobOutcome::Wedged { stalled_for_ticks } => {
                        wedge_latencies.push(stalled_for_ticks)
                    }
                    _ => violations.push(format!(
                        "spinner `{}` ended `{}`, expected wedged",
                        r.name,
                        r.outcome.label()
                    )),
                }
                outcomes.push((r.name.clone(), r.outcome.label().to_owned()));
            }
            // Exactly-once: a second wait must deliver nothing.
            if !daemon.wait(&spin_ids).is_empty() {
                violations.push("second wait on wedged jobs returned reports".to_owned());
            }
            // The pool must be back at full strength for the next wave.
            wait_until("respawned workers", &mut violations, || {
                daemon.live_workers() == config.workers
            });
        }
    }

    // ---- Escalation phase: resubmit every wedged name through the
    // isolation ladder (needs a real child binary). ----
    let mut escalations_probed = 0u64;
    let mut escalations_recovered = 0u64;
    if config.isolate_exe.is_some() {
        let mut wedged_names = daemon.wedged_names();
        wedged_names.sort();
        for name in wedged_names {
            let Some((_, kind, source)) = spin_sources.iter().find(|(n, _, _)| *n == name) else {
                violations.push(format!("unknown wedged name `{name}`"));
                continue;
            };
            escalations_probed += 1;
            let expected: &[&str] = match kind {
                // Probe succeeds, in-process reproduce compiles clean.
                JobKind::SpinOnce => &["ok"],
                // Child killed → permanent failure → breaker (already
                // fed once by the wedge) quarantines the name.
                JobKind::SpinHard => &["failed", "quarantined"],
                _ => &[],
            };
            for want in expected {
                submitted += 1;
                let Some(id) = daemon.submit(&name, source.clone()).id() else {
                    shed += 1;
                    violations.push(format!("escalated resubmit of `{name}` was shed"));
                    continue;
                };
                accepted += 1;
                let reports = daemon.wait(&[id]);
                let label = reports.first().map_or("lost", |r| r.outcome.label());
                if label != *want {
                    violations.push(format!(
                        "escalated `{name}` ended `{label}`, expected `{want}`"
                    ));
                }
                if *kind == JobKind::SpinOnce && label == "ok" {
                    escalations_recovered += 1;
                }
                outcomes.push((name.clone(), label.to_owned()));
            }
        }
        // Quarantine must hit exactly the hard-wedge names.
        for name in daemon.quarantined_names() {
            if !name.contains(WEDGE_HARD_MARKER) {
                violations.push(format!("collateral quarantine of `{name}`"));
            }
        }
    }

    // ---- Wind-down and the global invariant sweep. ----
    release.store(true, Ordering::SeqCst);
    let pool = daemon.pool_stats();
    if pool.wedged != wedge_injected {
        violations.push(format!(
            "injected {wedge_injected} spinners but supervisor wedged {}",
            pool.wedged
        ));
    }
    if pool.respawned != pool.wedged {
        violations.push(format!(
            "{} wedges but only {} respawns: workers permanently lost",
            pool.wedged, pool.respawned
        ));
    }
    let live_workers_end = daemon.live_workers();
    if live_workers_end != config.workers {
        violations.push(format!(
            "pool ended with {live_workers_end} live workers, expected {}",
            config.workers
        ));
    }
    let native = daemon.native_stats();
    if native_injected > 0 && native.fallbacks == 0 {
        violations.push(format!(
            "{native_injected} native faults injected but zero sim fallbacks served"
        ));
    }
    let quarantined = daemon.quarantined_names();
    daemon.shutdown(ShutdownMode::Drain);

    outcomes.sort();
    healthy_latencies.sort_unstable();
    wedge_latencies.sort_unstable();
    let percentile = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            0
        } else {
            sorted[((sorted.len() - 1) as f64 * p).round() as usize]
        }
    };

    WedgeSoakReport {
        config: config.clone(),
        outcomes,
        submitted,
        accepted,
        shed,
        wedge_injected,
        native_injected,
        wedges_detected: pool.wedged,
        respawned: pool.respawned,
        live_workers_end,
        native_fallbacks: native.fallbacks,
        escalations_probed,
        escalations_recovered,
        quarantined,
        wedge_detect_p50_ticks: percentile(&wedge_latencies, 0.50),
        wedge_detect_p99_ticks: percentile(&wedge_latencies, 0.99),
        healthy_p50_ticks: percentile(&healthy_latencies, 0.50),
        healthy_p99_ticks: percentile(&healthy_latencies, 0.99),
        elapsed_ticks: clock.now_ticks().saturating_sub(started),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_common::ManualClock;

    fn small() -> WedgeSoakConfig {
        WedgeSoakConfig {
            workers: 2,
            jobs: 40,
            queue_capacity: 8,
            wedge_per_mille: 200,
            native_per_mille: 150,
            ..WedgeSoakConfig::default()
        }
    }

    #[test]
    fn wedge_storm_recovers_and_is_clean() {
        let report = run_wedge_soak(&small(), Arc::new(ManualClock::new(0)));
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.wedge_injected > 0, "seed injected no wedges");
        assert_eq!(report.wedges_detected, report.wedge_injected);
        assert_eq!(report.respawned, report.wedges_detected);
        assert_eq!(report.live_workers_end, 2);
        assert!(report.native_fallbacks >= 1, "{report:?}");
        assert!(report.outcomes.iter().any(|(_, label)| label == "wedged"));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"warp-supervise-bench-v1\""));
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"workers_lost\": 0"));
    }

    #[test]
    fn same_seed_same_identity() {
        let a = run_wedge_soak(&small(), Arc::new(ManualClock::new(0)));
        let b = run_wedge_soak(&small(), Arc::new(ManualClock::new(0)));
        assert_eq!(a.identity(), b.identity());
        assert_eq!(a.wedges_detected, b.wedges_detected);
        assert_eq!(a.shed, b.shed);
    }
}
