//! `wbench` — the compile-and-run benchmark harness.
//!
//! ```text
//! wbench [--corpus-dir DIR] [--out FILE] [--seed S]
//! ```
//!
//! Compiles every `*.w2` program under `--corpus-dir` (default
//! `corpus/`) twice — modulo-scheduled and `--no-pipeline` baseline —
//! simulates both builds on seeded inputs, prints the comparison
//! table, and writes the machine-readable report to `--out` (default
//! `BENCH_compile.json`).
//!
//! Exit code is non-zero if any program fails to compile or simulate,
//! if any program's simulated cycles regress under pipelining, or if
//! fewer than three programs improve — the acceptance bar the CI
//! `bench-smoke` job enforces.

use std::process::ExitCode;
use warp_compiler::{bench, CompileOptions};

fn usage() -> ! {
    eprintln!("usage: wbench [--corpus-dir DIR] [--out FILE] [--seed S]");
    std::process::exit(2)
}

/// The acceptance floor: modulo scheduling must improve at least this
/// many corpus programs (and regress none).
const MIN_IMPROVED: usize = 3;

fn main() -> ExitCode {
    let mut corpus_dir = std::path::PathBuf::from("corpus");
    let mut out_path = std::path::PathBuf::from("BENCH_compile.json");
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus-dir" => corpus_dir = args.next().unwrap_or_else(|| usage()).into(),
            "--out" => out_path = args.next().unwrap_or_else(|| usage()).into(),
            "--seed" => {
                let s = args.next().unwrap_or_else(|| usage());
                seed = s.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    let mut programs: Vec<(String, String)> = Vec::new();
    let entries = match std::fs::read_dir(&corpus_dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read corpus dir `{}`: {e}", corpus_dir.display());
            return ExitCode::FAILURE;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "w2") {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            match std::fs::read_to_string(&path) {
                Ok(src) => programs.push((name, src)),
                Err(e) => {
                    eprintln!("cannot read `{}`: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    programs.sort();
    if programs.is_empty() {
        eprintln!("no .w2 programs under `{}`", corpus_dir.display());
        return ExitCode::FAILURE;
    }

    let report = match bench::run_bench(&programs, &CompileOptions::default(), seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.table());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write `{}`: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());

    if report.regressed() > 0 {
        eprintln!(
            "FAIL: {} program(s) regressed under pipelining",
            report.regressed()
        );
        return ExitCode::FAILURE;
    }
    if report.improved() < MIN_IMPROVED {
        eprintln!(
            "FAIL: only {} program(s) improved (need {MIN_IMPROVED})",
            report.improved()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
