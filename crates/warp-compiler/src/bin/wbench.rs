//! `wbench` — the compile-and-run benchmark harness.
//!
//! ```text
//! wbench [--corpus-dir DIR] [--out FILE] [--seed S]
//! wbench --native [--corpus-dir DIR] [--out FILE] [--seed S] [--repeats N]
//! ```
//!
//! Default mode compiles every `*.w2` program under `--corpus-dir`
//! (default `corpus/`) twice — modulo-scheduled and `--no-pipeline`
//! baseline — simulates both builds on seeded inputs, prints the
//! comparison table, and writes the machine-readable report to `--out`
//! (default `BENCH_compile.json`).
//!
//! `--native` races the executors instead: best-of-N single-run wall
//! time for the simulator vs best-of-N for the native backend, after
//! one warmup run apiece (same module, same seeded inputs, bitwise
//! cross-checked before any timing is trusted), writing
//! `BENCH_native.json` by default. Best-of-N is the noise-robust
//! statistic here: sub-millisecond walls jitter tens of percent on a
//! shared machine, and the minimum is the run least disturbed by it.
//!
//! Exit code is non-zero if any program fails to compile or run; in
//! default mode also if any program's simulated cycles regress under
//! pipelining or fewer than three improve, and in `--native` mode if
//! any program's executors disagree bitwise or fewer than five reach a
//! 10× native speedup — the acceptance bars the CI `bench-smoke` and
//! `native-differential` jobs enforce.

use std::process::ExitCode;
use warp_compiler::{bench, CompileOptions};

fn usage() -> ! {
    eprintln!(
        "usage: wbench [--corpus-dir DIR] [--out FILE] [--seed S]\n\
         \x20      wbench --native [--corpus-dir DIR] [--out FILE] [--seed S] [--repeats N]"
    );
    std::process::exit(2)
}

/// The acceptance floor: modulo scheduling must improve at least this
/// many corpus programs (and regress none).
const MIN_IMPROVED: usize = 3;

/// The native-mode acceptance floor: at least this many corpus
/// programs must run ≥ 10× faster natively than one simulator run.
const MIN_NATIVE_10X: usize = 5;

fn main() -> ExitCode {
    let mut corpus_dir = std::path::PathBuf::from("corpus");
    let mut out_path: Option<std::path::PathBuf> = None;
    let mut seed = 1u64;
    let mut native = false;
    let mut repeats = 10u32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus-dir" => corpus_dir = args.next().unwrap_or_else(|| usage()).into(),
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--seed" => {
                let s = args.next().unwrap_or_else(|| usage());
                seed = s.parse().unwrap_or_else(|_| usage());
            }
            "--native" => native = true,
            "--repeats" => {
                let n = args.next().unwrap_or_else(|| usage());
                repeats = n.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        std::path::PathBuf::from(if native {
            "BENCH_native.json"
        } else {
            "BENCH_compile.json"
        })
    });

    let mut programs: Vec<(String, String)> = Vec::new();
    let entries = match std::fs::read_dir(&corpus_dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read corpus dir `{}`: {e}", corpus_dir.display());
            return ExitCode::FAILURE;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "w2") {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            match std::fs::read_to_string(&path) {
                Ok(src) => programs.push((name, src)),
                Err(e) => {
                    eprintln!("cannot read `{}`: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    programs.sort();
    if programs.is_empty() {
        eprintln!("no .w2 programs under `{}`", corpus_dir.display());
        return ExitCode::FAILURE;
    }

    if native {
        let report =
            match bench::run_native_bench(&programs, &CompileOptions::default(), seed, repeats) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("native bench failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
        print!("{}", report.table());
        if let Err(e) = std::fs::write(&out_path, report.to_json()) {
            eprintln!("cannot write `{}`: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", out_path.display());

        if !report.all_bitwise_equal() {
            eprintln!("FAIL: native and simulator disagree bitwise on some program");
            return ExitCode::FAILURE;
        }
        if report.speedup_10x() < MIN_NATIVE_10X {
            eprintln!(
                "FAIL: only {} program(s) reached a 10x native speedup (need {MIN_NATIVE_10X})",
                report.speedup_10x()
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let report = match bench::run_bench(&programs, &CompileOptions::default(), seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.table());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write `{}`: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());

    if report.regressed() > 0 {
        eprintln!(
            "FAIL: {} program(s) regressed under pipelining",
            report.regressed()
        );
        return ExitCode::FAILURE;
    }
    if report.improved() < MIN_IMPROVED {
        eprintln!(
            "FAIL: only {} program(s) improved (need {MIN_IMPROVED})",
            report.improved()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
