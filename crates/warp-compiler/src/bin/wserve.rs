//! `wserve` — the seeded chaos/soak harness for the compile service.
//!
//! ```text
//! wserve [--seed N] [--jobs N] [--workers N] [--poison-per-mille N]
//!        [--queue-capacity N] [--breaker-threshold N]
//!        [--clock manual|system] [--out FILE] [--check-determinism]
//! wserve --crash-soak [--seed N] [--lives N] [--requests-per-life N]
//!        [--store-bytes N] [--out FILE] [--check-determinism]
//! wserve --wedge-soak [--seed N] [--jobs N] [--workers N]
//!        [--wedge-per-mille N] [--native-per-mille N] [--grace-ticks N]
//!        [--queue-capacity N] [--breaker-threshold N]
//!        [--clock manual|system] [--out FILE] [--check-determinism]
//! ```
//!
//! Drives a live `CompileDaemon` with a deterministic Zipfian load mix
//! and a seeded poison fraction (syntax crashers, injected panics,
//! cancel bombs), probes shed rates at 1×/4×/16× overload, aborts a
//! final wave mid-flight, and writes the machine-readable report to
//! `--out` (default `BENCH_serve.json`).
//!
//! `--clock manual` (the default) runs on a `ManualClock` whose only
//! time source is the seeded arrival jitter, so the whole run —
//! including every latency figure — is a pure function of the seed.
//! `--clock system` measures real wall-clock latency instead.
//!
//! `--check-determinism` runs the same seeded soak twice and requires
//! the sorted per-job `(name, outcome)` sets to be identical — the
//! loom-free concurrency-determinism guard the CI `serve-soak` job
//! enforces.
//!
//! `--wedge-soak` runs the supervision soak: a seeded wedge storm
//! (jobs that spin without polling cancellation, once or on every
//! run, plus injected native-backend faults) against the heartbeat
//! supervisor. It checks that every stalled job is detected within
//! the grace, reported exactly once as `wedged`, its worker replaced;
//! that previously-wedged names escalate through the `SIGKILL`able
//! subprocess rung (hard wedges end quarantined, transient ones
//! recover); and that native faults are transparently re-served by
//! the sim fallback. The report lands in `BENCH_supervise.json` by
//! default.
//!
//! `--crash-soak` runs the durability soak instead: a persistent
//! artifact store is killed at a seeded crash-point each simulated
//! process lifetime (plus seeded torn writes, bit flips, and
//! `ENOSPC`), restarted, and checked — no corrupt artifact is ever
//! served (bitwise against fresh compiles), recovery is total, and
//! the warm hit rate plus cold-vs-warm restart latency land in the
//! report JSON.
//!
//! Exit code is non-zero on any invariant violation (lost or
//! duplicated response, rejection without a retry hint, queue
//! overflow, collateral quarantine, corrupt artifact served, lost
//! store entry) or determinism mismatch.

use std::process::ExitCode;
use std::sync::Arc;

use warp_common::{Clock, ManualClock, SystemClock};
use warp_compiler::crash::{run_crash_soak, CrashSoakConfig};
use warp_compiler::isolate;
use warp_compiler::soak::{run_soak, SoakConfig};
use warp_compiler::supervise::{run_wedge_soak, WedgeSoakConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wserve [--seed N] [--jobs N] [--workers N] [--poison-per-mille N]\n\
         \x20             [--queue-capacity N] [--breaker-threshold N]\n\
         \x20             [--clock manual|system] [--out FILE] [--check-determinism]\n\
         \x20      wserve --crash-soak [--seed N] [--lives N] [--requests-per-life N]\n\
         \x20             [--store-bytes N] [--out FILE] [--check-determinism]\n\
         \x20      wserve --wedge-soak [--seed N] [--jobs N] [--workers N]\n\
         \x20             [--wedge-per-mille N] [--native-per-mille N] [--grace-ticks N]\n\
         \x20             [--queue-capacity N] [--breaker-threshold N]\n\
         \x20             [--clock manual|system] [--out FILE] [--check-determinism]"
    );
    std::process::exit(2)
}

fn run_crash_mode(
    config: &CrashSoakConfig,
    out_path: &std::path::Path,
    check_determinism: bool,
) -> ExitCode {
    let report = run_crash_soak(config);
    let determinism_ok = !check_determinism || {
        let second = run_crash_soak(config);
        second.identity() == report.identity() && second.violations == report.violations
    };

    println!(
        "crash soak: seed={} lives={} crash-points-fired={} served={} corrupt-served={}",
        config.seed, config.lives, report.crash_points_fired, report.served, report.corrupt_served,
    );
    println!(
        "      recovered={} quarantined={} tmp-cleaned={} disk-hits={} compiles={} \
         put-failures={}",
        report.recovered_total,
        report.quarantined_total,
        report.tmp_cleaned_total,
        report.disk_hits,
        report.compiles,
        report.put_failures,
    );
    println!(
        "      faults: torn={} flips={} enospc={}; warm-hit-rate={:.2} \
         cold={}us warm={}us ttl-expired={}",
        report.faults.torn_writes,
        report.faults.bit_flips,
        report.faults.no_space,
        report.warm_hit_rate,
        report.cold_mean_us,
        report.warm_mean_us,
        report.ttl_expired,
    );

    if let Err(e) = std::fs::write(out_path, report.to_json()) {
        eprintln!("cannot write `{}`: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());

    let mut failed = false;
    for v in &report.violations {
        eprintln!("FAIL: {v}");
        failed = true;
    }
    if report.crash_points_fired == 0 && config.lives > 0 {
        eprintln!("FAIL: no crash-point ever fired — the soak proved nothing");
        failed = true;
    }
    if check_determinism {
        if determinism_ok {
            println!("determinism: two runs with seed {} agree", config.seed);
        } else {
            eprintln!(
                "FAIL: two runs with seed {} produced different crash-soak identities",
                config.seed
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_wedge_mode(
    config: &WedgeSoakConfig,
    out_path: &std::path::Path,
    check_determinism: bool,
    make_clock: impl Fn() -> Arc<dyn Clock>,
) -> ExitCode {
    let report = run_wedge_soak(config, make_clock());
    let determinism_ok = !check_determinism || {
        let second = run_wedge_soak(config, make_clock());
        second.identity() == report.identity() && second.violations == report.violations
    };

    println!(
        "wedge soak: seed={} workers={} jobs={} wedge-injected={} native-injected={} shed={}",
        config.seed,
        config.workers,
        config.jobs,
        report.wedge_injected,
        report.native_injected,
        report.shed,
    );
    println!(
        "      wedges-detected={} respawned={} workers-lost={} live-workers={} \
         native-fallbacks={}",
        report.wedges_detected,
        report.respawned,
        report.wedges_detected.saturating_sub(report.respawned),
        report.live_workers_end,
        report.native_fallbacks,
    );
    println!(
        "      escalations: probed={} recovered={} quarantined={:?}",
        report.escalations_probed, report.escalations_recovered, report.quarantined,
    );
    println!(
        "      wedge-detect p50={} p99={} ticks; healthy p50={} p99={} ticks",
        report.wedge_detect_p50_ticks,
        report.wedge_detect_p99_ticks,
        report.healthy_p50_ticks,
        report.healthy_p99_ticks,
    );

    if let Err(e) = std::fs::write(out_path, report.to_json()) {
        eprintln!("cannot write `{}`: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());

    let mut failed = false;
    for v in &report.violations {
        eprintln!("FAIL: {v}");
        failed = true;
    }
    if report.wedge_injected == 0 && config.jobs > 0 {
        eprintln!("FAIL: no wedge ever fired — the soak proved nothing");
        failed = true;
    }
    if report.wedges_detected != report.respawned {
        eprintln!(
            "FAIL: {} unrecovered wedge(s)",
            report.wedges_detected.saturating_sub(report.respawned)
        );
        failed = true;
    }
    if check_determinism {
        if determinism_ok {
            println!("determinism: two runs with seed {} agree", config.seed);
        } else {
            eprintln!(
                "FAIL: two runs with seed {} produced different wedge-soak identities",
                config.seed
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, args: &mut impl Iterator<Item = String>) -> T {
    let value = args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} expects a value");
        std::process::exit(2)
    });
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a non-negative integer, got `{value}`");
        std::process::exit(2)
    })
}

fn main() -> ExitCode {
    // When re-exec'd as a hard-isolation child (the wedge soak's
    // escalation rung re-execs this binary) this never returns.
    isolate::maybe_run_child();

    let mut config = SoakConfig::default();
    let mut crash_config = CrashSoakConfig::default();
    let mut wedge_config = WedgeSoakConfig::default();
    let mut crash_mode = false;
    let mut wedge_mode = false;
    let mut out_path: Option<std::path::PathBuf> = None;
    let mut grace_set = false;
    let mut clock_kind = "manual".to_owned();
    let mut check_determinism = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--crash-soak" => crash_mode = true,
            "--wedge-soak" => wedge_mode = true,
            "--wedge-per-mille" => {
                wedge_config.wedge_per_mille = parse_num("--wedge-per-mille", &mut args)
            }
            "--native-per-mille" => {
                wedge_config.native_per_mille = parse_num("--native-per-mille", &mut args)
            }
            "--grace-ticks" => {
                wedge_config.grace_ticks = parse_num("--grace-ticks", &mut args);
                grace_set = true;
            }
            "--lives" => crash_config.lives = parse_num("--lives", &mut args),
            "--requests-per-life" => {
                crash_config.requests_per_life = parse_num("--requests-per-life", &mut args)
            }
            "--store-bytes" => crash_config.store_bytes = parse_num("--store-bytes", &mut args),
            "--seed" => {
                config.seed = parse_num("--seed", &mut args);
                crash_config.seed = config.seed;
                wedge_config.seed = config.seed;
            }
            "--jobs" => {
                config.jobs = parse_num("--jobs", &mut args);
                wedge_config.jobs = config.jobs;
            }
            "--workers" => {
                config.workers = parse_num("--workers", &mut args);
                wedge_config.workers = config.workers;
            }
            "--poison-per-mille" => {
                config.poison_per_mille = parse_num("--poison-per-mille", &mut args);
                if config.poison_per_mille > 1000 {
                    eprintln!("error: --poison-per-mille must be at most 1000");
                    return ExitCode::from(2);
                }
            }
            "--queue-capacity" => {
                config.queue_capacity = parse_num("--queue-capacity", &mut args);
                if config.queue_capacity == 0 {
                    eprintln!("error: --queue-capacity must be at least 1");
                    return ExitCode::from(2);
                }
                wedge_config.queue_capacity = config.queue_capacity;
            }
            "--breaker-threshold" => {
                config.breaker_threshold = parse_num("--breaker-threshold", &mut args);
                wedge_config.breaker_threshold = config.breaker_threshold;
            }
            "--clock" => {
                clock_kind = args.next().unwrap_or_else(|| usage());
                match clock_kind.as_str() {
                    "manual" => config.deadline_ticks = 0,
                    // Real clock: give jobs a generous 30 s deadline.
                    "system" => config.deadline_ticks = 30_000_000,
                    other => {
                        eprintln!("error: --clock expects `manual` or `system`, got `{other}`");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--check-determinism" => check_determinism = true,
            _ => usage(),
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        std::path::PathBuf::from(if wedge_mode {
            "BENCH_supervise.json"
        } else {
            "BENCH_serve.json"
        })
    });
    if crash_mode {
        return run_crash_mode(&crash_config, &out_path, check_determinism);
    }

    let make_clock = || -> Arc<dyn Clock> {
        if clock_kind == "system" {
            Arc::new(SystemClock::new())
        } else {
            Arc::new(ManualClock::new(0))
        }
    };

    if wedge_mode {
        wedge_config.workers = warp_service::effective_workers(wedge_config.workers);
        // The escalation rung re-execs this very binary (the child
        // hook at the top of main makes that safe).
        wedge_config.isolate_exe = std::env::current_exe().ok();
        if clock_kind == "system" {
            wedge_config.lockstep = false;
            // SystemClock ticks are microseconds; the manual-clock
            // default grace is far too tight for real scheduling.
            if !grace_set {
                wedge_config.grace_ticks = 2_000_000;
            }
        }
        return run_wedge_mode(&wedge_config, &out_path, check_determinism, make_clock);
    }
    config.workers = warp_service::effective_workers(config.workers);

    // The chaos classes panic by design; keep their backtraces off the
    // console (the pool already contains them).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_soak(&config, make_clock());
    let determinism_ok = if check_determinism {
        let second = run_soak(&config, make_clock());
        second.outcomes == report.outcomes
            && second.shed == report.shed
            && second.quarantined == report.quarantined
    } else {
        true
    };
    std::panic::set_hook(default_hook);

    println!(
        "soak: seed={} clock={} workers={} submitted={} accepted={} shed={} \
         quarantined={:?}",
        config.seed,
        clock_kind,
        config.workers,
        report.submitted,
        report.accepted,
        report.shed,
        report.quarantined,
    );
    println!(
        "      jobs/sec={:.1} p50={} p99={} ticks, cache hit-rate={:.2}",
        report.jobs_per_sec,
        report.p50_ticks,
        report.p99_ticks,
        report.cache.hit_rate(),
    );
    for point in &report.overload {
        println!(
            "      overload {}x: submitted={} accepted={} shed={} ({:.0}% shed)",
            point.factor,
            point.submitted,
            point.accepted,
            point.shed,
            point.shed_rate() * 100.0,
        );
    }

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write `{}`: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());

    let mut failed = false;
    for v in &report.violations {
        eprintln!("FAIL: {v}");
        failed = true;
    }
    if check_determinism {
        if determinism_ok {
            println!("determinism: two runs with seed {} agree", config.seed);
        } else {
            eprintln!(
                "FAIL: two runs with seed {} produced different outcome sets",
                config.seed
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
