//! `w2cd` — the long-running W2 compile service.
//!
//! ```text
//! w2cd [--deadline-ms N] [--queue-capacity N] [--max-attempts N]
//!      [--breaker-threshold N] [--skew-max-events N]
//!      [--max-cell-cycles N] [--max-source-bytes N] [--workers N]
//!      [--cache-bytes N] [--negative-ttl-ms N] [--listen PATH]
//!      [--store-dir PATH] [--store-bytes N]
//! w2cd --corpus [same flags]       (one-shot: queue Table 7-1, wait, exit)
//! ```
//!
//! With `--store-dir` the cache gains a crash-safe persistent disk
//! tier: artifacts survive restarts (warm hits without recompiling),
//! and the startup banner reports what the recovery scan found —
//! entries recovered intact, corrupt/stale entries quarantined, and
//! `.tmp` crash leftovers cleaned. `--store-bytes` caps the disk
//! tier (LRU eviction; 0 = unbounded).
//!
//! The daemon is built on the always-on concurrent executor of
//! `warp-service` fronted by the content-addressed compile cache:
//! workers compile the moment a job is admitted, `submit` returns a
//! job id immediately, and `run` waits for (and collects) the calling
//! client's jobs. Admission control, per-job deadlines and pipeline
//! budgets, panic isolation, and the per-program circuit breaker all
//! apply continuously — not just during an explicit batch drain.
//!
//! Two front ends share one daemon:
//!
//! * **stdin** (default): the single-client compatibility mode, same
//!   line protocol as before.
//! * **`--listen PATH`**: a Unix-domain socket accepting any number of
//!   concurrent clients, each with its own session (job set, exit
//!   accounting). All clients share the worker pool, cache, and
//!   breaker.
//!
//! The line protocol:
//!
//! ```text
//! corpus NAME|all         queue a Table 7-1 program (or all five)
//! submit NAME FILE.w2 [sim|native]
//!                         queue a source file under NAME; the optional
//!                         backend token records which executor serves
//!                         the job's runs (default sim) and keys the
//!                         artifact cache per serving path
//! run                     wait for this client's jobs, print the batch summary
//! status                  per-job state (queued/running/done) and breaker state
//! health                  guard limits, workers, queue depth, one line
//! cache [clear]           cache counters (or drop both tiers, reporting bytes)
//! store                   disk-tier counters (recovered, quarantined, hits)
//! stats                   pool counters
//! reset NAME              reopen the circuit breaker for NAME
//! quit                    end this client session (EOF works too)
//! shutdown                stop the daemon (socket mode; = quit on stdin)
//! ```
//!
//! Duplicate job names are rejected per client: two outstanding
//! `submit`s under one NAME would share a breaker key and interleave
//! confusingly in the summary, so the second is refused until the
//! first is collected with `run`. Malformed lines are answered with a
//! one-line `error: ...` rather than killing the daemon, and an EOF
//! that arrives with jobs still outstanding waits for them (one final
//! batch summary) before exit so piped sessions never silently drop
//! work.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use warp_compiler::{
    cache::CacheConfig,
    corpus,
    daemon::{batch_report, CompileDaemon, DaemonConfig},
    service::ServiceConfig,
    store::StoreConfig,
    CompileOptions, ExecBackend,
};
use warp_service::{effective_workers, Admission, ExecutorConfig, ShutdownMode};

struct DaemonArgs {
    config: DaemonConfig,
    opts: CompileOptions,
    one_shot_corpus: bool,
    listen: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: w2cd [--deadline-ms N] [--queue-capacity N] [--max-attempts N]\n\
         \x20           [--breaker-threshold N] [--skew-max-events N]\n\
         \x20           [--max-cell-cycles N] [--max-source-bytes N] [--workers N]\n\
         \x20           [--cache-bytes N] [--negative-ttl-ms N] [--listen PATH]\n\
         \x20           [--store-dir PATH] [--store-bytes N]\n\
         \x20      w2cd --corpus [same flags]\n\
         \x20  protocol: corpus NAME|all, submit NAME FILE.w2 [sim|native], run, status,\n\
         \x20            health, cache [clear], store, stats, reset NAME, quit, shutdown"
    );
    std::process::exit(2)
}

/// Parses the operand of a numeric flag, naming the flag in the error
/// so `--workers banana` fails with a diagnosis, not a usage dump.
fn parse_u64(flag: &str, args: &mut impl Iterator<Item = String>) -> u64 {
    let Some(value) = args.next() else {
        eprintln!("error: {flag} expects a value");
        std::process::exit(2)
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: {flag} expects a non-negative integer, got `{value}`");
            std::process::exit(2)
        }
    }
}

fn parse_args() -> DaemonArgs {
    let mut parsed = DaemonArgs {
        config: DaemonConfig {
            service: ServiceConfig {
                exec: ExecutorConfig {
                    queue_capacity: 64,
                    // SystemClock ticks are microseconds; default to a
                    // 30-second budget per job, spanning retries.
                    deadline_ticks: 30_000_000,
                    max_attempts: 1,
                    breaker_threshold: 3,
                    ..ExecutorConfig::default()
                },
                // Generous defaults that the Table 7-1 corpus clears
                // easily but a pathological loop nest will not.
                skew_max_events: 50_000_000,
                max_cell_cycles: 100_000_000,
                // 4 MiB of W2 source is far beyond any real program but
                // cheap enough that an accidental paste can't wedge a
                // worker in the lexer.
                max_source_bytes: 4 * 1024 * 1024,
                // 0 = available parallelism, resolved at startup and
                // printed in the ready banner and `health`.
                workers: 0,
            },
            cache: CacheConfig::default(),
            store: None,
        },
        opts: CompileOptions::default(),
        one_shot_corpus: false,
        listen: None,
    };
    let mut store_dir: Option<String> = None;
    let mut store_bytes = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let flag = arg.as_str();
        match flag {
            "--corpus" => parsed.one_shot_corpus = true,
            "--deadline-ms" => {
                parsed.config.service.exec.deadline_ticks =
                    parse_u64(flag, &mut args).saturating_mul(1_000);
            }
            "--queue-capacity" => {
                parsed.config.service.exec.queue_capacity = parse_u64(flag, &mut args) as usize;
            }
            "--max-attempts" => {
                parsed.config.service.exec.max_attempts =
                    parse_u64(flag, &mut args).min(u64::from(u32::MAX)) as u32;
            }
            "--breaker-threshold" => {
                parsed.config.service.exec.breaker_threshold =
                    parse_u64(flag, &mut args).min(u64::from(u32::MAX)) as u32;
            }
            "--skew-max-events" => {
                parsed.config.service.skew_max_events = parse_u64(flag, &mut args);
            }
            "--max-cell-cycles" => {
                parsed.config.service.max_cell_cycles = parse_u64(flag, &mut args);
            }
            "--max-source-bytes" => {
                parsed.config.service.max_source_bytes = parse_u64(flag, &mut args);
            }
            "--workers" => {
                parsed.config.service.workers = parse_u64(flag, &mut args) as usize;
            }
            "--cache-bytes" => {
                parsed.config.cache.byte_budget = parse_u64(flag, &mut args);
            }
            "--negative-ttl-ms" => {
                parsed.config.cache.negative_ttl_ticks =
                    parse_u64(flag, &mut args).saturating_mul(1_000);
            }
            "--listen" => {
                parsed.listen = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --listen expects a socket path");
                    std::process::exit(2)
                }));
            }
            "--store-dir" => {
                store_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --store-dir expects a directory path");
                    std::process::exit(2)
                }));
            }
            "--store-bytes" => {
                store_bytes = parse_u64(flag, &mut args);
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    match store_dir {
        Some(dir) => {
            parsed.config.store = Some(StoreConfig {
                dir: dir.into(),
                byte_budget: store_bytes,
            });
        }
        None if store_bytes != 0 => {
            eprintln!("error: --store-bytes requires --store-dir");
            std::process::exit(2)
        }
        None => {}
    }
    parsed
}

/// One client's session state: its outstanding jobs and exit
/// accounting. Stdin and each socket client get one each; the daemon
/// behind them is shared.
struct ClientSession<'d> {
    daemon: &'d CompileDaemon,
    /// Outstanding (submitted, not yet collected) jobs: id → name, in
    /// submission order.
    outstanding: BTreeMap<usize, String>,
    all_clean: bool,
    saw_quit: bool,
    /// Set when this client asked the whole daemon to stop.
    want_shutdown: bool,
}

impl<'d> ClientSession<'d> {
    fn new(daemon: &'d CompileDaemon) -> ClientSession<'d> {
        ClientSession {
            daemon,
            outstanding: BTreeMap::new(),
            all_clean: true,
            saw_quit: false,
            want_shutdown: false,
        }
    }

    fn has_name(&self, name: &str) -> bool {
        self.outstanding.values().any(|n| n == name)
    }

    fn submit(
        &mut self,
        out: &mut impl Write,
        name: &str,
        source: String,
        backend: ExecBackend,
    ) -> std::io::Result<()> {
        if self.has_name(name) {
            return writeln!(
                out,
                "error: duplicate name `{name}` already outstanding; \
                 collect it with `run` or pick a distinct name"
            );
        }
        match self.daemon.submit_with_backend(name, source, backend) {
            Admission::Accepted { id, .. } => {
                self.outstanding.insert(id, name.to_owned());
                writeln!(out, "accepted {name} id={id}")
            }
            Admission::Rejected { retry_after_ticks } => {
                writeln!(out, "rejected {name} retry-after-ticks={retry_after_ticks}")
            }
        }
    }

    fn queue_corpus(&mut self, out: &mut impl Write, which: &str) -> std::io::Result<()> {
        let programs: Vec<(&str, &str)> = if which == "all" {
            corpus::TABLE_7_1.to_vec()
        } else {
            match corpus::TABLE_7_1.iter().find(|(n, _)| *n == which) {
                Some(p) => vec![*p],
                None => return writeln!(out, "error: unknown corpus program `{which}`"),
            }
        };
        for (name, src) in programs {
            self.submit(out, name, src.to_owned(), ExecBackend::default())?;
        }
        Ok(())
    }

    /// `run`: wait for this client's jobs and print the batch summary.
    fn run(&mut self, out: &mut impl Write) -> std::io::Result<()> {
        let ids: Vec<usize> = self.outstanding.keys().copied().collect();
        self.outstanding.clear();
        let reports = self.daemon.wait(&ids);
        let batch = batch_report(reports, self.daemon.quarantined_names());
        write!(out, "{}", batch.summary())?;
        let healthy = batch.is_healthy();
        if !healthy {
            writeln!(
                out,
                "batch unhealthy: timeouts, panics, or quarantined programs present"
            )?;
        }
        self.all_clean &= healthy && batch.failed() == 0;
        Ok(())
    }

    fn status(&self, out: &mut impl Write) -> std::io::Result<()> {
        let in_flight = self.daemon.jobs_in_flight();
        let queued = in_flight
            .iter()
            .filter(|(_, _, s)| *s == warp_service::JobState::Queued)
            .count();
        let running = in_flight
            .iter()
            .filter(|(_, _, s)| *s == warp_service::JobState::Running)
            .count();
        let done = in_flight.len() - queued - running;
        writeln!(
            out,
            "in-flight={} queued={queued} running={running} done={done} quarantined=[{}]",
            in_flight.len(),
            self.daemon.quarantined_names().join(", "),
        )?;
        for (id, name, state) in &in_flight {
            writeln!(out, "  id={id} {name} {state}")?;
        }
        let history = self.daemon.breaker_history();
        if !history.is_empty() {
            let threshold = self.daemon.config().service.exec.breaker_threshold;
            let rendered: Vec<String> = history
                .iter()
                .map(|(n, k)| format!("{n}={k}/{threshold}"))
                .collect();
            writeln!(out, "  breakers: {}", rendered.join(", "))?;
        }
        Ok(())
    }

    fn health(&self, out: &mut impl Write) -> std::io::Result<()> {
        let c = self.daemon.config().service.clone();
        writeln!(
            out,
            "healthy workers={} queued={} running={} queue-capacity={} deadline-ms={} \
             max-attempts={} breaker-threshold={} skew-max-events={} max-cell-cycles={} \
             max-source-bytes={} quarantined={}",
            self.daemon.workers(),
            self.daemon.queue_len(),
            self.daemon.running_len(),
            c.exec.queue_capacity,
            c.exec.deadline_ticks / 1_000,
            c.exec.max_attempts,
            c.exec.breaker_threshold,
            c.skew_max_events,
            c.max_cell_cycles,
            c.max_source_bytes,
            self.daemon.quarantined_names().len(),
        )
    }

    fn cache(&self, out: &mut impl Write, clear: bool) -> std::io::Result<()> {
        if clear {
            let r = self.daemon.clear_cache();
            return writeln!(
                out,
                "cache cleared: memory {} entries / {} bytes, disk {} artifacts / {} bytes",
                r.memory_entries, r.memory_bytes, r.disk_entries, r.disk_bytes,
            );
        }
        let s = self.daemon.cache_stats();
        writeln!(
            out,
            "cache: entries={} bytes={} lookups={} hits={} negative-hits={} misses={} \
             coalesced={} inserts={} evictions={} expired={} hit-rate={:.2}",
            s.entries,
            s.resident_bytes,
            s.lookups,
            s.hits,
            s.negative_hits,
            s.misses,
            s.coalesced,
            s.inserts + s.negative_inserts,
            s.evictions,
            s.expired,
            s.hit_rate(),
        )?;
        if let Some(d) = self.daemon.store_stats() {
            writeln!(
                out,
                "  disk: artifacts={} bytes={} hits={} misses={} puts={} put-failures={} \
                 evictions={} recovered={} quarantined={}",
                d.entries,
                d.resident_bytes,
                d.hits,
                d.misses,
                d.puts,
                d.put_failures,
                d.evictions,
                d.recovered,
                d.quarantined,
            )?;
        }
        Ok(())
    }

    fn store(&self, out: &mut impl Write) -> std::io::Result<()> {
        let Some(d) = self.daemon.store_stats() else {
            return match self.daemon.store_error() {
                Some(e) => writeln!(out, "store: unavailable ({e}); running memory-only"),
                None => writeln!(out, "store: not configured (start with --store-dir)"),
            };
        };
        let dir = self
            .daemon
            .config()
            .store
            .as_ref()
            .map(|s| s.dir.display().to_string())
            .unwrap_or_default();
        writeln!(
            out,
            "store: dir={dir} artifacts={} bytes={} recovered={} quarantined={} \
             tmp-cleaned={} hits={} misses={} puts={} put-failures={} evictions={}",
            d.entries,
            d.resident_bytes,
            d.recovered,
            d.quarantined,
            d.tmp_cleaned,
            d.hits,
            d.misses,
            d.puts,
            d.put_failures,
            d.evictions,
        )
    }

    fn stats(&self, out: &mut impl Write) -> std::io::Result<()> {
        let s = self.daemon.pool_stats();
        writeln!(
            out,
            "pool: workers={} submitted={} accepted={} shed={} completed={} panicked={} \
             quarantined={} max-queue-depth={}",
            self.daemon.workers(),
            s.submitted,
            s.accepted,
            s.shed,
            s.completed,
            s.panicked,
            s.quarantined,
            s.max_queue_depth,
        )
    }

    /// Dispatches one protocol line. Returns `false` when the session
    /// should end.
    fn handle_line(&mut self, out: &mut impl Write, line: &str) -> std::io::Result<bool> {
        let mut words = line.split_whitespace();
        match words.next() {
            None => {}
            Some("quit") => {
                self.saw_quit = true;
                return Ok(false);
            }
            Some("shutdown") if words.next().is_none() => {
                self.saw_quit = true;
                self.want_shutdown = true;
                writeln!(out, "shutting down")?;
                return Ok(false);
            }
            Some("corpus") => {
                let which = words.next().unwrap_or("all");
                if words.next().is_some() {
                    writeln!(out, "error: usage: corpus [NAME|all]")?;
                } else {
                    self.queue_corpus(out, which)?;
                }
            }
            Some("submit") => match (words.next(), words.next(), words.next(), words.next()) {
                (Some(name), Some(path), backend, None) => {
                    match backend.map_or(Ok(ExecBackend::default()), str::parse) {
                        Ok(backend) => match std::fs::read_to_string(path) {
                            Ok(source) => self.submit(out, name, source, backend)?,
                            Err(e) => writeln!(out, "error: cannot read `{path}`: {e}")?,
                        },
                        Err(e) => writeln!(out, "error: {e}")?,
                    }
                }
                _ => writeln!(out, "error: usage: submit NAME FILE.w2 [sim|native]")?,
            },
            Some("run") if words.next().is_none() => self.run(out)?,
            Some("status") if words.next().is_none() => self.status(out)?,
            Some("health") if words.next().is_none() => self.health(out)?,
            Some("stats") if words.next().is_none() => self.stats(out)?,
            Some("cache") => match words.next() {
                None => self.cache(out, false)?,
                Some("clear") if words.next().is_none() => self.cache(out, true)?,
                _ => writeln!(out, "error: usage: cache [clear]")?,
            },
            Some("store") if words.next().is_none() => self.store(out)?,
            Some("reset") => match (words.next(), words.next()) {
                (Some(name), None) => {
                    if self.daemon.reset_breaker(name) {
                        writeln!(out, "breaker reset for {name}")?;
                    } else {
                        writeln!(out, "no breaker history for {name}")?;
                    }
                }
                _ => writeln!(out, "error: usage: reset NAME")?,
            },
            Some(cmd @ ("run" | "status" | "health" | "stats" | "store" | "shutdown")) => {
                writeln!(out, "error: `{cmd}` takes no operands")?;
            }
            Some(other) => writeln!(out, "error: unknown command `{other}`")?,
        }
        Ok(true)
    }

    /// Runs the line protocol until quit/EOF, then settles: an EOF
    /// with jobs still outstanding waits for them (one final batch
    /// summary) so piped sessions never silently drop work.
    fn serve(&mut self, input: impl BufRead, out: &mut impl Write) {
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    // Non-UTF-8 or I/O trouble: report and fall through
                    // to the EOF drain rather than dropping queued jobs.
                    let _ = writeln!(out, "error: input: {e}");
                    break;
                }
            };
            match self.handle_line(out, &line) {
                Ok(true) => {}
                Ok(false) => break,
                // The client went away; stop reading, the drain below
                // still collects its jobs.
                Err(_) => break,
            }
            let _ = out.flush();
        }
        if !self.saw_quit && !self.outstanding.is_empty() {
            let _ = writeln!(
                out,
                "draining {} outstanding job(s) at EOF",
                self.outstanding.len()
            );
            let _ = self.run(out);
        }
        let _ = out.flush();
    }
}

fn banner(daemon: &CompileDaemon) -> String {
    let c = &daemon.config().service.exec;
    let mut line = format!(
        "w2cd ready (queue {}, deadline {} ms, breaker threshold {}, workers {})",
        c.queue_capacity,
        c.deadline_ticks / 1_000,
        c.breaker_threshold,
        daemon.workers(),
    );
    if let Some(w) = daemon.warm_start() {
        line.push_str(&format!(
            "\nstore: {} artifact(s) recovered, {} corrupt quarantined, \
             {} tmp cleaned, {} bytes resident",
            w.recovered, w.quarantined, w.tmp_cleaned, w.resident_bytes,
        ));
    } else if let Some(e) = daemon.store_error() {
        line.push_str(&format!("\nstore: unavailable ({e}); running memory-only"));
    }
    line
}

fn serve_listener(daemon: Arc<CompileDaemon>, path: &str) -> ExitCode {
    let _ = std::fs::remove_file(path);
    let listener = match std::os::unix::net::UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    println!("w2cd listening on {path} (workers {})", daemon.workers());
    let _ = std::io::stdout().flush();
    let stop = Arc::new(AtomicBool::new(false));
    let all_clean = Arc::new(AtomicBool::new(true));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let daemon = daemon.clone();
        let stop = stop.clone();
        let all_clean = all_clean.clone();
        let path = path.to_owned();
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(r) => BufReader::new(r),
                Err(_) => return,
            };
            let mut out = stream;
            let mut session = ClientSession::new(&daemon);
            let _ = writeln!(out, "{}", banner(&daemon));
            session.serve(reader, &mut out);
            if !session.all_clean {
                all_clean.store(false, Ordering::SeqCst);
            }
            if session.want_shutdown {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop with a throwaway connection.
                let _ = std::os::unix::net::UnixStream::connect(&path);
            }
        });
    }
    daemon.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_file(path);
    if all_clean.load(Ordering::SeqCst) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    // Resolve `--workers 0` once so every surface (banner, health,
    // stats) reports the effective parallelism.
    let mut config = args.config.clone();
    config.service.workers = effective_workers(config.service.workers);
    let daemon = CompileDaemon::with_system_clock(args.opts.clone(), config);

    if args.one_shot_corpus {
        let mut session = ClientSession::new(&daemon);
        let mut out = std::io::stdout();
        if session.queue_corpus(&mut out, "all").is_err() || session.run(&mut out).is_err() {
            return ExitCode::FAILURE;
        }
        let _ = out.flush();
        daemon.shutdown(ShutdownMode::Drain);
        return if session.all_clean {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if let Some(path) = &args.listen {
        return serve_listener(Arc::new(daemon), path);
    }

    println!("{}", banner(&daemon));
    let mut session = ClientSession::new(&daemon);
    let mut out = std::io::stdout();
    session.serve(std::io::stdin().lock(), &mut out);
    let clean = session.all_clean;
    daemon.shutdown(ShutdownMode::Drain);
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
