//! `w2cd` — the long-running W2 compile service.
//!
//! ```text
//! w2cd [--deadline-ms N] [--queue-capacity N] [--max-attempts N]
//!      [--breaker-threshold N] [--skew-max-events N]
//!      [--max-cell-cycles N] [--max-source-bytes N] [--workers N]
//! w2cd --corpus [same flags]       (one-shot: queue Table 7-1, run, exit)
//! ```
//!
//! The daemon wraps the compiler pipeline in the resilient executor of
//! `warp-service`: a bounded job queue with load shedding, per-job
//! wall-clock deadlines and pipeline budgets, cooperative cancellation,
//! panic isolation, and a per-program circuit breaker. It reads a
//! line-oriented protocol from stdin:
//!
//! ```text
//! corpus NAME|all         queue a Table 7-1 program (or all five)
//! submit NAME FILE.w2     queue a source file under NAME
//! run                     drain the queue in parallel, print the batch summary
//! status                  queue depth and quarantined names
//! health                  guard limits and queue depth, one line
//! reset NAME              reopen the circuit breaker for NAME
//! quit                    exit (EOF works too)
//! ```
//!
//! Every response is a single line (or an indented block for `run`),
//! so the daemon is scriptable: the CI smoke test pipes a command
//! sequence in and asserts on the summary. Malformed lines — unknown
//! commands, missing or trailing operands — are answered with a
//! one-line `error: ...` rather than killing the daemon, and an EOF
//! that arrives with jobs still queued drains them (one final batch
//! run) before exit so piped sessions never silently drop work.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use warp_compiler::{
    corpus,
    service::{CompileService, ServiceConfig},
    CompileOptions,
};
use warp_service::{Admission, ExecutorConfig};

struct DaemonArgs {
    config: ServiceConfig,
    opts: CompileOptions,
    one_shot_corpus: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: w2cd [--deadline-ms N] [--queue-capacity N] [--max-attempts N]\n\
         \x20           [--breaker-threshold N] [--skew-max-events N]\n\
         \x20           [--max-cell-cycles N] [--max-source-bytes N] [--workers N]\n\
         \x20      w2cd --corpus [same flags]\n\
         \x20  stdin protocol: corpus NAME|all, submit NAME FILE.w2, run,\n\
         \x20                  status, health, reset NAME, quit"
    );
    std::process::exit(2)
}

fn parse_u64(args: &mut impl Iterator<Item = String>) -> u64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn parse_args() -> DaemonArgs {
    let mut parsed = DaemonArgs {
        config: ServiceConfig {
            exec: ExecutorConfig {
                queue_capacity: 64,
                // SystemClock ticks are microseconds; default to a
                // 30-second budget per job, spanning retries.
                deadline_ticks: 30_000_000,
                max_attempts: 1,
                breaker_threshold: 3,
                ..ExecutorConfig::default()
            },
            // Generous defaults that the Table 7-1 corpus clears
            // easily but a pathological loop nest will not.
            skew_max_events: 50_000_000,
            max_cell_cycles: 100_000_000,
            // 4 MiB of W2 source is far beyond any real program but
            // cheap enough that an accidental paste can't wedge a
            // worker in the lexer.
            max_source_bytes: 4 * 1024 * 1024,
            workers: 0,
        },
        opts: CompileOptions::default(),
        one_shot_corpus: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => parsed.one_shot_corpus = true,
            "--deadline-ms" => {
                parsed.config.exec.deadline_ticks = parse_u64(&mut args).saturating_mul(1_000);
            }
            "--queue-capacity" => {
                parsed.config.exec.queue_capacity = parse_u64(&mut args) as usize;
            }
            "--max-attempts" => {
                parsed.config.exec.max_attempts =
                    parse_u64(&mut args).min(u64::from(u32::MAX)) as u32;
            }
            "--breaker-threshold" => {
                parsed.config.exec.breaker_threshold =
                    parse_u64(&mut args).min(u64::from(u32::MAX)) as u32;
            }
            "--skew-max-events" => parsed.config.skew_max_events = parse_u64(&mut args),
            "--max-cell-cycles" => parsed.config.max_cell_cycles = parse_u64(&mut args),
            "--max-source-bytes" => parsed.config.max_source_bytes = parse_u64(&mut args),
            "--workers" => parsed.config.workers = parse_u64(&mut args) as usize,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

fn queue_corpus(svc: &mut CompileService, which: &str) -> Result<(), String> {
    let programs: Vec<(&str, &str)> = if which == "all" {
        corpus::TABLE_7_1.to_vec()
    } else {
        match corpus::TABLE_7_1.iter().find(|(n, _)| *n == which) {
            Some(p) => vec![*p],
            None => return Err(format!("unknown corpus program `{which}`")),
        }
    };
    for (name, src) in programs {
        report_admission(name, &svc.submit(name, src));
    }
    Ok(())
}

fn report_admission(name: &str, admission: &Admission) {
    match admission {
        Admission::Accepted { id, .. } => println!("accepted {name} id={id}"),
        Admission::Rejected { retry_after_ticks } => {
            println!("rejected {name} retry-after-ticks={retry_after_ticks}");
        }
    }
}

fn run_batch(svc: &mut CompileService) -> bool {
    let batch = svc.run_parallel();
    print!("{}", batch.summary());
    let healthy = batch.is_healthy();
    if !healthy {
        println!("batch unhealthy: timeouts, panics, or quarantined programs present");
    }
    healthy && batch.failed() == 0
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut svc = CompileService::with_system_clock(args.opts.clone(), args.config.clone());

    if args.one_shot_corpus {
        if let Err(e) = queue_corpus(&mut svc, "all") {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        return if run_batch(&mut svc) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    println!(
        "w2cd ready (queue {}, deadline {} ms, breaker threshold {})",
        args.config.exec.queue_capacity,
        args.config.exec.deadline_ticks / 1_000,
        args.config.exec.breaker_threshold,
    );
    let stdin = std::io::stdin();
    let mut all_clean = true;
    let mut saw_quit = false;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                // Non-UTF-8 or I/O trouble on stdin: report and fall
                // through to the EOF drain rather than dropping queued
                // jobs.
                eprintln!("stdin error: {e}");
                break;
            }
        };
        let mut words = line.split_whitespace();
        match words.next() {
            None => {}
            Some("quit") => {
                saw_quit = true;
                break;
            }
            Some("corpus") => {
                let which = words.next().unwrap_or("all");
                if words.next().is_some() {
                    println!("error: usage: corpus [NAME|all]");
                } else if let Err(e) = queue_corpus(&mut svc, which) {
                    println!("error: {e}");
                }
            }
            Some("submit") => match (words.next(), words.next(), words.next()) {
                (Some(name), Some(path), None) => match std::fs::read_to_string(path) {
                    Ok(source) => report_admission(name, &svc.submit(name, source)),
                    Err(e) => println!("error: cannot read `{path}`: {e}"),
                },
                _ => println!("error: usage: submit NAME FILE.w2"),
            },
            Some("run") if words.next().is_none() => {
                all_clean &= run_batch(&mut svc);
            }
            Some("status") if words.next().is_none() => {
                println!(
                    "queued={} quarantined=[{}]",
                    svc.queue_len(),
                    svc.quarantined_names().join(", ")
                );
            }
            Some("health") if words.next().is_none() => {
                let c = svc.config().clone();
                println!(
                    "healthy queued={} queue-capacity={} deadline-ms={} max-attempts={} \
                     breaker-threshold={} skew-max-events={} max-cell-cycles={} \
                     max-source-bytes={} quarantined={}",
                    svc.queue_len(),
                    c.exec.queue_capacity,
                    c.exec.deadline_ticks / 1_000,
                    c.exec.max_attempts,
                    c.exec.breaker_threshold,
                    c.skew_max_events,
                    c.max_cell_cycles,
                    c.max_source_bytes,
                    svc.quarantined_names().len(),
                );
            }
            Some("reset") => match (words.next(), words.next()) {
                (Some(name), None) => {
                    svc.reset_breaker(name);
                    println!("breaker reset for {name}");
                }
                _ => println!("error: usage: reset NAME"),
            },
            Some(cmd @ ("run" | "status" | "health")) => {
                println!("error: `{cmd}` takes no operands");
            }
            Some(other) => println!("error: unknown command `{other}`"),
        }
        let _ = std::io::stdout().flush();
    }

    // EOF with work still queued (a piped session that forgot a final
    // `run`): drain it so submitted jobs are never silently dropped.
    if !saw_quit && svc.queue_len() > 0 {
        println!("draining {} queued job(s) at EOF", svc.queue_len());
        all_clean &= run_batch(&mut svc);
        let _ = std::io::stdout().flush();
    }

    if all_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
