//! `w2cd` — the long-running W2 compile service.
//!
//! ```text
//! w2cd [--deadline-ms N] [--queue-capacity N] [--max-attempts N]
//!      [--breaker-threshold N] [--skew-max-events N]
//!      [--max-cell-cycles N] [--max-source-bytes N] [--workers N]
//!      [--cache-bytes N] [--negative-ttl-ms N] [--listen PATH]
//!      [--store-dir PATH] [--store-bytes N]
//!      [--supervise-grace-ms N] [--supervise-interval-ms N]
//! w2cd --corpus [same flags]       (one-shot: queue Table 7-1, wait, exit)
//! ```
//!
//! With `--store-dir` the cache gains a crash-safe persistent disk
//! tier: artifacts survive restarts (warm hits without recompiling),
//! and the startup banner reports what the recovery scan found —
//! entries recovered intact, corrupt/stale entries quarantined, and
//! `.tmp` crash leftovers cleaned. `--store-bytes` caps the disk
//! tier (LRU eviction; 0 = unbounded).
//!
//! The daemon is built on the always-on concurrent executor of
//! `warp-service` fronted by the content-addressed compile cache:
//! workers compile the moment a job is admitted, `submit` returns a
//! job id immediately, and `run` waits for (and collects) the calling
//! client's jobs. Admission control, per-job deadlines and pipeline
//! budgets, panic isolation, and the per-program circuit breaker all
//! apply continuously — not just during an explicit batch drain.
//!
//! **Supervision is on by default**: every worker heartbeats at its
//! cooperative poll points, and a job whose heartbeat goes stale for
//! `--supervise-grace-ms` (default 10 000 ms; `0` disables) is
//! declared wedged, reported exactly once, and its worker replaced. A
//! previously-wedged name is retried through a hard-isolated,
//! `SIGKILL`able subprocess before it is allowed back in-process.
//! `health` reports the honest taxonomy — `healthy`, `degraded`, or
//! `critical` with the contributing reasons — instead of a
//! hard-coded all-clear.
//!
//! Two front ends share one daemon:
//!
//! * **stdin** (default): the single-client compatibility mode, same
//!   line protocol as before.
//! * **`--listen PATH`**: a Unix-domain socket accepting any number of
//!   concurrent clients, each with its own session (job set, exit
//!   accounting). All clients share the worker pool, cache, and
//!   breaker.
//!
//! The line protocol lives in `warp_compiler::protocol` (hardened:
//! 64 KiB line cap, non-UTF-8 lines rejected without ending the
//! session, hostile bytes never echoed raw):
//!
//! ```text
//! corpus NAME|all         queue a Table 7-1 program (or all five)
//! submit NAME FILE.w2 [sim|native]
//!                         queue a source file under NAME; the optional
//!                         backend token records which executor serves
//!                         the job's runs (default sim) and keys the
//!                         artifact cache per serving path
//! run                     wait for this client's jobs, print the batch summary
//! status                  per-job state (queued/running/done) and breaker state
//! health                  taxonomy verdict + live limits, one line
//! cache [clear]           cache counters (or drop both tiers, reporting bytes)
//! store                   disk-tier counters (recovered, quarantined, hits)
//! stats                   pool + native-serving counters
//! reset NAME              reopen the circuit breakers for NAME
//! quit                    end this client session (EOF works too)
//! shutdown                stop the daemon (socket mode; = quit on stdin)
//! ```
//!
//! The undocumented `--chaos-spin-marker` / `--chaos-native-marker`
//! flags arm the fault-injection hooks used by the supervision soak
//! and the README's two-terminal wedge demo; they have no effect on
//! jobs whose names avoid the marker.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use warp_compiler::{
    cache::CacheConfig,
    daemon::{CompileDaemon, DaemonConfig},
    isolate,
    protocol::{banner, ClientSession},
    service::ServiceConfig,
    store::StoreConfig,
    CompileOptions,
};
use warp_service::{effective_workers, ExecutorConfig, ShutdownMode};

struct DaemonArgs {
    config: DaemonConfig,
    opts: CompileOptions,
    one_shot_corpus: bool,
    listen: Option<String>,
    chaos_spin_marker: Option<String>,
    chaos_native_marker: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: w2cd [--deadline-ms N] [--queue-capacity N] [--max-attempts N]\n\
         \x20           [--breaker-threshold N] [--skew-max-events N]\n\
         \x20           [--max-cell-cycles N] [--max-source-bytes N] [--workers N]\n\
         \x20           [--cache-bytes N] [--negative-ttl-ms N] [--listen PATH]\n\
         \x20           [--store-dir PATH] [--store-bytes N]\n\
         \x20           [--supervise-grace-ms N] [--supervise-interval-ms N]\n\
         \x20      w2cd --corpus [same flags]\n\
         \x20  protocol: corpus NAME|all, submit NAME FILE.w2 [sim|native], run, status,\n\
         \x20            health, cache [clear], store, stats, reset NAME, quit, shutdown"
    );
    std::process::exit(2)
}

/// Parses the operand of a numeric flag, naming the flag in the error
/// so `--workers banana` fails with a diagnosis, not a usage dump.
fn parse_u64(flag: &str, args: &mut impl Iterator<Item = String>) -> u64 {
    let Some(value) = args.next() else {
        eprintln!("error: {flag} expects a value");
        std::process::exit(2)
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: {flag} expects a non-negative integer, got `{value}`");
            std::process::exit(2)
        }
    }
}

fn parse_string(flag: &str, args: &mut impl Iterator<Item = String>) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} expects a value");
        std::process::exit(2)
    })
}

fn parse_args() -> DaemonArgs {
    let mut parsed = DaemonArgs {
        config: DaemonConfig {
            service: ServiceConfig {
                exec: ExecutorConfig {
                    queue_capacity: 64,
                    // SystemClock ticks are microseconds; default to a
                    // 30-second budget per job, spanning retries.
                    deadline_ticks: 30_000_000,
                    max_attempts: 1,
                    breaker_threshold: 3,
                    ..ExecutorConfig::default()
                },
                // Generous defaults that the Table 7-1 corpus clears
                // easily but a pathological loop nest will not.
                skew_max_events: 50_000_000,
                max_cell_cycles: 100_000_000,
                // 4 MiB of W2 source is far beyond any real program but
                // cheap enough that an accidental paste can't wedge a
                // worker in the lexer.
                max_source_bytes: 4 * 1024 * 1024,
                // 0 = available parallelism, resolved at startup and
                // printed in the ready banner and `health`.
                workers: 0,
                // 10 s of heartbeat silence before a running job is
                // declared wedged; far past any cooperative-poll gap
                // in a healthy pipeline, far under a human's patience.
                supervise_grace_ticks: 10_000_000,
                supervise_interval_ms: 0,
            },
            cache: CacheConfig::default(),
            store: None,
        },
        opts: CompileOptions::default(),
        one_shot_corpus: false,
        listen: None,
        chaos_spin_marker: None,
        chaos_native_marker: None,
    };
    let mut store_dir: Option<String> = None;
    let mut store_bytes = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let flag = arg.as_str();
        match flag {
            "--corpus" => parsed.one_shot_corpus = true,
            "--deadline-ms" => {
                parsed.config.service.exec.deadline_ticks =
                    parse_u64(flag, &mut args).saturating_mul(1_000);
            }
            "--queue-capacity" => {
                parsed.config.service.exec.queue_capacity = parse_u64(flag, &mut args) as usize;
            }
            "--max-attempts" => {
                parsed.config.service.exec.max_attempts =
                    parse_u64(flag, &mut args).min(u64::from(u32::MAX)) as u32;
            }
            "--breaker-threshold" => {
                parsed.config.service.exec.breaker_threshold =
                    parse_u64(flag, &mut args).min(u64::from(u32::MAX)) as u32;
            }
            "--skew-max-events" => {
                parsed.config.service.skew_max_events = parse_u64(flag, &mut args);
            }
            "--max-cell-cycles" => {
                parsed.config.service.max_cell_cycles = parse_u64(flag, &mut args);
            }
            "--max-source-bytes" => {
                parsed.config.service.max_source_bytes = parse_u64(flag, &mut args);
            }
            "--workers" => {
                parsed.config.service.workers = parse_u64(flag, &mut args) as usize;
            }
            "--supervise-grace-ms" => {
                parsed.config.service.supervise_grace_ticks =
                    parse_u64(flag, &mut args).saturating_mul(1_000);
            }
            "--supervise-interval-ms" => {
                parsed.config.service.supervise_interval_ms = parse_u64(flag, &mut args);
            }
            "--cache-bytes" => {
                parsed.config.cache.byte_budget = parse_u64(flag, &mut args);
            }
            "--negative-ttl-ms" => {
                parsed.config.cache.negative_ttl_ticks =
                    parse_u64(flag, &mut args).saturating_mul(1_000);
            }
            "--listen" => parsed.listen = Some(parse_string(flag, &mut args)),
            "--store-dir" => store_dir = Some(parse_string(flag, &mut args)),
            "--store-bytes" => {
                store_bytes = parse_u64(flag, &mut args);
            }
            "--chaos-spin-marker" => {
                parsed.chaos_spin_marker = Some(parse_string(flag, &mut args));
            }
            "--chaos-native-marker" => {
                parsed.chaos_native_marker = Some(parse_string(flag, &mut args));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    match store_dir {
        Some(dir) => {
            parsed.config.store = Some(StoreConfig {
                dir: dir.into(),
                byte_budget: store_bytes,
            });
        }
        None if store_bytes != 0 => {
            eprintln!("error: --store-bytes requires --store-dir");
            std::process::exit(2)
        }
        None => {}
    }
    parsed
}

fn serve_listener(daemon: Arc<CompileDaemon>, path: &str) -> ExitCode {
    use std::io::{BufReader, Write};
    use std::sync::atomic::Ordering;

    let _ = std::fs::remove_file(path);
    let listener = match std::os::unix::net::UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    println!("w2cd listening on {path} (workers {})", daemon.workers());
    let _ = std::io::stdout().flush();
    let stop = Arc::new(AtomicBool::new(false));
    let all_clean = Arc::new(AtomicBool::new(true));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let daemon = daemon.clone();
        let stop = stop.clone();
        let all_clean = all_clean.clone();
        let path = path.to_owned();
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(r) => BufReader::new(r),
                Err(_) => return,
            };
            let mut out = stream;
            let mut session = ClientSession::new(&daemon);
            let _ = writeln!(out, "{}", banner(&daemon));
            session.serve(reader, &mut out);
            if !session.all_clean() {
                all_clean.store(false, Ordering::SeqCst);
            }
            if session.want_shutdown() {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop with a throwaway connection.
                let _ = std::os::unix::net::UnixStream::connect(&path);
            }
        });
    }
    daemon.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_file(path);
    if all_clean.load(Ordering::SeqCst) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    // When re-exec'd as a hard-isolation child this never returns;
    // it must run before anything touches the daemon machinery.
    isolate::maybe_run_child();

    let args = parse_args();
    // Resolve `--workers 0` once so every surface (banner, health,
    // stats) reports the effective parallelism.
    let mut config = args.config.clone();
    config.service.workers = effective_workers(config.service.workers);
    let mut daemon = CompileDaemon::with_system_clock(args.opts.clone(), config);
    if let Some(marker) = &args.chaos_spin_marker {
        // The daemon's own lifetime is the latch: zombie spinners die
        // with the process.
        daemon = daemon.with_chaos_spin_marker(marker, Arc::new(AtomicBool::new(false)));
    }
    if let Some(marker) = &args.chaos_native_marker {
        daemon = daemon.with_chaos_native_marker(marker);
    }

    if args.one_shot_corpus {
        let mut session = ClientSession::new(&daemon);
        let mut out = std::io::stdout();
        if session.queue_corpus(&mut out, "all").is_err() || session.run(&mut out).is_err() {
            return ExitCode::FAILURE;
        }
        use std::io::Write;
        let _ = out.flush();
        let clean = session.all_clean();
        daemon.shutdown(ShutdownMode::Drain);
        return if clean {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if let Some(path) = &args.listen {
        return serve_listener(Arc::new(daemon), path);
    }

    println!("{}", banner(&daemon));
    let mut session = ClientSession::new(&daemon);
    let mut out = std::io::stdout();
    session.serve(std::io::stdin().lock(), &mut out);
    let clean = session.all_clean();
    daemon.shutdown(ShutdownMode::Drain);
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
