//! `w2cd` — the long-running W2 compile service.
//!
//! ```text
//! w2cd [--deadline-ms N] [--queue-capacity N] [--max-attempts N]
//!      [--breaker-threshold N] [--skew-max-events N]
//!      [--max-cell-cycles N] [--workers N]
//! w2cd --corpus [same flags]       (one-shot: queue Table 7-1, run, exit)
//! ```
//!
//! The daemon wraps the compiler pipeline in the resilient executor of
//! `warp-service`: a bounded job queue with load shedding, per-job
//! wall-clock deadlines and pipeline budgets, cooperative cancellation,
//! panic isolation, and a per-program circuit breaker. It reads a
//! line-oriented protocol from stdin:
//!
//! ```text
//! corpus NAME|all         queue a Table 7-1 program (or all five)
//! submit NAME FILE.w2     queue a source file under NAME
//! run                     drain the queue in parallel, print the batch summary
//! status                  queue depth and quarantined names
//! reset NAME              reopen the circuit breaker for NAME
//! quit                    exit (EOF works too)
//! ```
//!
//! Every response is a single line (or an indented block for `run`),
//! so the daemon is scriptable: the CI smoke test pipes a command
//! sequence in and asserts on the summary.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use warp_compiler::{
    corpus,
    service::{CompileService, ServiceConfig},
    CompileOptions,
};
use warp_service::{Admission, ExecutorConfig};

struct DaemonArgs {
    config: ServiceConfig,
    opts: CompileOptions,
    one_shot_corpus: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: w2cd [--deadline-ms N] [--queue-capacity N] [--max-attempts N]\n\
         \x20           [--breaker-threshold N] [--skew-max-events N]\n\
         \x20           [--max-cell-cycles N] [--workers N]\n\
         \x20      w2cd --corpus [same flags]\n\
         \x20  stdin protocol: corpus NAME|all, submit NAME FILE.w2, run,\n\
         \x20                  status, reset NAME, quit"
    );
    std::process::exit(2)
}

fn parse_u64(args: &mut impl Iterator<Item = String>) -> u64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn parse_args() -> DaemonArgs {
    let mut parsed = DaemonArgs {
        config: ServiceConfig {
            exec: ExecutorConfig {
                queue_capacity: 64,
                // SystemClock ticks are microseconds; default to a
                // 30-second budget per job, spanning retries.
                deadline_ticks: 30_000_000,
                max_attempts: 1,
                breaker_threshold: 3,
                ..ExecutorConfig::default()
            },
            // Generous defaults that the Table 7-1 corpus clears
            // easily but a pathological loop nest will not.
            skew_max_events: 50_000_000,
            max_cell_cycles: 100_000_000,
            workers: 0,
        },
        opts: CompileOptions::default(),
        one_shot_corpus: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => parsed.one_shot_corpus = true,
            "--deadline-ms" => {
                parsed.config.exec.deadline_ticks = parse_u64(&mut args).saturating_mul(1_000);
            }
            "--queue-capacity" => {
                parsed.config.exec.queue_capacity = parse_u64(&mut args) as usize;
            }
            "--max-attempts" => {
                parsed.config.exec.max_attempts =
                    parse_u64(&mut args).min(u64::from(u32::MAX)) as u32;
            }
            "--breaker-threshold" => {
                parsed.config.exec.breaker_threshold =
                    parse_u64(&mut args).min(u64::from(u32::MAX)) as u32;
            }
            "--skew-max-events" => parsed.config.skew_max_events = parse_u64(&mut args),
            "--max-cell-cycles" => parsed.config.max_cell_cycles = parse_u64(&mut args),
            "--workers" => parsed.config.workers = parse_u64(&mut args) as usize,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

fn queue_corpus(svc: &mut CompileService, which: &str) -> Result<(), String> {
    let programs: Vec<(&str, &str)> = if which == "all" {
        corpus::TABLE_7_1.to_vec()
    } else {
        match corpus::TABLE_7_1.iter().find(|(n, _)| *n == which) {
            Some(p) => vec![*p],
            None => return Err(format!("unknown corpus program `{which}`")),
        }
    };
    for (name, src) in programs {
        report_admission(name, &svc.submit(name, src));
    }
    Ok(())
}

fn report_admission(name: &str, admission: &Admission) {
    match admission {
        Admission::Accepted { id, .. } => println!("accepted {name} id={id}"),
        Admission::Rejected { retry_after_ticks } => {
            println!("rejected {name} retry-after-ticks={retry_after_ticks}");
        }
    }
}

fn run_batch(svc: &mut CompileService) -> bool {
    let batch = svc.run_parallel();
    print!("{}", batch.summary());
    let healthy = batch.is_healthy();
    if !healthy {
        println!("batch unhealthy: timeouts, panics, or quarantined programs present");
    }
    healthy && batch.failed() == 0
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut svc = CompileService::with_system_clock(args.opts.clone(), args.config.clone());

    if args.one_shot_corpus {
        if let Err(e) = queue_corpus(&mut svc, "all") {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        return if run_batch(&mut svc) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    println!(
        "w2cd ready (queue {}, deadline {} ms, breaker threshold {})",
        args.config.exec.queue_capacity,
        args.config.exec.deadline_ticks / 1_000,
        args.config.exec.breaker_threshold,
    );
    let stdin = std::io::stdin();
    let mut all_clean = true;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        };
        let mut words = line.split_whitespace();
        match words.next() {
            None => {}
            Some("quit") => break,
            Some("corpus") => {
                let which = words.next().unwrap_or("all");
                if let Err(e) = queue_corpus(&mut svc, which) {
                    println!("error: {e}");
                }
            }
            Some("submit") => match (words.next(), words.next()) {
                (Some(name), Some(path)) => match std::fs::read_to_string(path) {
                    Ok(source) => report_admission(name, &svc.submit(name, source)),
                    Err(e) => println!("error: cannot read `{path}`: {e}"),
                },
                _ => println!("error: usage: submit NAME FILE.w2"),
            },
            Some("run") => {
                all_clean &= run_batch(&mut svc);
            }
            Some("status") => {
                println!(
                    "queued={} quarantined=[{}]",
                    svc.queue_len(),
                    svc.quarantined_names().join(", ")
                );
            }
            Some("reset") => match words.next() {
                Some(name) => {
                    svc.reset_breaker(name);
                    println!("breaker reset for {name}");
                }
                None => println!("error: usage: reset NAME"),
            },
            Some(other) => println!("error: unknown command `{other}`"),
        }
        let _ = std::io::stdout().flush();
    }

    if all_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
