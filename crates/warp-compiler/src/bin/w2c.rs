//! `w2c` — the W2 compiler command line.
//!
//! ```text
//! w2c FILE.w2 [--no-opt] [--unroll K] [--pipeline] [--emit cell|iu|metrics]
//!             [--run NAME=v1,v2,... ...] [--cells N]
//! w2c --corpus NAME [same flags]        (polynomial, conv1d, binop,
//!                                        colorseg, mandelbrot)
//! ```
//!
//! Compiles a W2 module and prints metrics, optionally a microcode
//! listing, and optionally simulates it with the given inputs.

use std::process::ExitCode;
use warp_compiler::{compile, corpus, CompileOptions};
use warp_ir::LowerOptions;

struct Args {
    source: String,
    source_name: String,
    emit: Vec<String>,
    runs: Vec<(String, Vec<f32>)>,
    opts: CompileOptions,
    cells: Option<u32>,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: w2c FILE.w2 [--no-opt] [--unroll K] [--pipeline] [--emit cell|iu|metrics]\n\
         \x20           [--run NAME=v1,v2,...] [--cells N] [--check]\n\
         \x20      w2c --corpus NAME [same flags]\n\
         \x20  --check: also execute the reference interpreter and compare"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut source = None;
    let mut source_name = String::new();
    let mut emit = Vec::new();
    let mut runs = Vec::new();
    let mut opts = CompileOptions::default();
    let mut cells = None;
    let mut check = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--pipeline" => opts.software_pipeline = true,
            "--no-opt" => {
                opts.lower = LowerOptions {
                    optimize: false,
                    ..opts.lower.clone()
                }
            }
            "--unroll" => {
                let k = args.next().unwrap_or_else(|| usage());
                opts.lower.unroll = k.parse().unwrap_or_else(|_| usage());
            }
            "--emit" => emit.push(args.next().unwrap_or_else(|| usage())),
            "--cells" => {
                let n = args.next().unwrap_or_else(|| usage());
                cells = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--run" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let (name, vals) = spec.split_once('=').unwrap_or_else(|| usage());
                let data: Vec<f32> = vals
                    .split(',')
                    .map(|v| v.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                runs.push((name.to_owned(), data));
            }
            "--corpus" => {
                let name = args.next().unwrap_or_else(|| usage());
                source_name = name.clone();
                source = Some(
                    match name.as_str() {
                        "polynomial" => corpus::POLYNOMIAL,
                        "conv1d" => corpus::ONED_CONV,
                        "binop" => corpus::BINOP,
                        "colorseg" => corpus::COLORSEG,
                        "mandelbrot" => corpus::MANDELBROT,
                        _ => {
                            eprintln!("unknown corpus program `{name}`");
                            std::process::exit(2);
                        }
                    }
                    .to_owned(),
                );
            }
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') => {
                source_name = path.to_owned();
                source = Some(std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read `{path}`: {e}");
                    std::process::exit(2);
                }));
            }
            _ => usage(),
        }
    }
    let Some(source) = source else { usage() };
    Args {
        source,
        source_name,
        emit,
        runs,
        opts,
        cells,
        check,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let module = match compile(&args.source, &args.opts) {
        Ok(m) => m,
        Err(diags) => {
            for d in &diags {
                eprintln!("{}", d.render(&args.source));
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "compiled `{}` ({}) for {} cells",
        module.name, args.source_name, module.n_cells
    );
    println!("  W2 lines      : {}", module.metrics.w2_lines);
    println!("  cell ucode    : {}", module.metrics.cell_ucode);
    println!("  IU ucode      : {}", module.metrics.iu_ucode);
    println!("  IU registers  : {}", module.iu.regs_used);
    println!("  IU table words: {}", module.iu.table.len());
    println!("  min skew      : {}", module.skew.min_skew);
    println!("  queue bound   : {:?}", module.skew.queue_occupancy);
    println!("  compile time  : {:.1?}", module.metrics.compile_time);

    for what in &args.emit {
        match what.as_str() {
            "cell" => println!("\n{}", module.cell_code.listing()),
            "iu" => println!("\n{}", module.iu.listing()),
            "metrics" => {}
            other => {
                eprintln!("unknown --emit target `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if !args.runs.is_empty() {
        let inputs: Vec<(&str, &[f32])> = args
            .runs
            .iter()
            .map(|(n, d)| (n.as_str(), d.as_slice()))
            .collect();
        let n_cells = args.cells.unwrap_or(module.n_cells);
        match module.run_with(n_cells, module.skew.min_skew, &inputs) {
            Ok(report) => {
                println!(
                    "\nran on {} cells: {} cycles, {} FLOPs, {:.3} results/cycle",
                    n_cells,
                    report.cycles,
                    report.fp_ops,
                    report.throughput()
                );
                for (var, dir) in module
                    .ir
                    .vars
                    .iter()
                    .filter_map(|(id, v)| {
                        Some((id, v)).filter(|(_, v)| v.kind == w2_lang::hir::VarKind::Host)
                    })
                    .map(|(id, v)| (id, v.name.clone()))
                {
                    let _ = var;
                    let data = report.host.get(&dir);
                    let preview: Vec<String> =
                        data.iter().take(8).map(|v| format!("{v}")).collect();
                    println!(
                        "  {dir} = [{}{}]",
                        preview.join(", "),
                        if data.len() > 8 { ", ..." } else { "" }
                    );
                }
            }
            Err(e) => {
                eprintln!("simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }

        if args.check {
            let hir = match w2_lang::parse_and_check(&args.source) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("front end failed during --check: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut host = warp_host::HostMemory::new(&module.ir.vars);
            for (name, data) in &args.runs {
                host.set(name, data);
            }
            match warp_compiler::oracle::interpret(&hir, &host) {
                Ok(want) => {
                    let sim = module
                        .run_with(n_cells, module.skew.min_skew, &inputs)
                        .expect("already ran once");
                    let mut mismatches = 0usize;
                    for (id, v) in module.ir.vars.iter() {
                        if v.kind != w2_lang::hir::VarKind::Host {
                            continue;
                        }
                        let a = sim.host.get(&v.name);
                        let b = want.get(&v.name);
                        for k in 0..a.len() {
                            if a[k].to_bits() != b[k].to_bits() {
                                if mismatches < 5 {
                                    eprintln!(
                                        "  MISMATCH {}[{}]: array {} vs oracle {}",
                                        v.name, k, a[k], b[k]
                                    );
                                }
                                mismatches += 1;
                            }
                        }
                        let _ = id;
                    }
                    if mismatches == 0 {
                        println!("\ncheck: simulated array agrees with the reference interpreter");
                    } else {
                        eprintln!("\ncheck FAILED: {mismatches} word(s) differ");
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("oracle failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
