//! `w2c` — the W2 compiler command line.
//!
//! ```text
//! w2c FILE.w2 [--no-opt] [--unroll K] [--no-pipeline] [--rewrite-fuel N]
//!             [--emit KIND] [--dump-after PASS] [--time-passes]
//!             [--run NAME=v1,v2,... ...] [--cells N] [--check]
//!             [--audit-guarantees] [--inject SPEC] [--backend sim|native]
//! w2c FILE.w2 --differential-check [--seed S] [--inject SPEC]
//!             [--backend sim|native|all]
//! w2c --differential N [--seed S] [--repro-dir DIR] [--inject SPEC]
//!             [--backend sim|native|all]
//! w2c --fuzz N [--seed S] [--repro-dir DIR] [--backend sim|native]
//! w2c --corpus NAME [same flags]        (polynomial, conv1d, binop,
//!                                        colorseg, mandelbrot)
//! w2c --corpus all [--time-passes] [--audit-guarantees]
//! ```
//!
//! Compiles a W2 module and prints metrics, optionally per-pass
//! timings and artifact dumps, optionally a microcode listing, and
//! optionally simulates it with the given inputs.
//!
//! `--audit-guarantees` runs the guarantee audit (tightness of the
//! claimed skew and queue bounds, plus a fault-detection sweep) on the
//! compiled module; with `--corpus all` it audits the size-scaled
//! audit corpus and prints a per-program summary. `--inject SPEC`
//! simulates under an explicit fault plan (e.g.
//! `seed=7,skew=-1,drop=X:0`) and prints the structured fault report
//! if an invariant trips.
//!
//! `--differential N` generates N seeded programs, compiles each
//! through the full pipeline, and compares the simulation bitwise
//! against the reference oracle; disagreements are shrunk and (with
//! `--repro-dir`) written as self-describing repro files. `FILE.w2
//! --differential-check` replays one such repro: the same compile,
//! run, and comparison for a single program. Combined with `--inject`
//! both modes check a deliberately perturbed build, which must be
//! caught.
//!
//! `--fuzz N` runs N seeded byte/token mutations of the corpus through
//! the guarded pipeline and demands a structured verdict for each —
//! compiled, rejected, budget-stopped, or overflow-stopped. Any panic
//! is caught, line-shrunk, and (with `--repro-dir`) written as a
//! replayable `fuzz-<seed>.w2` file; the exit code is non-zero.
//!
//! `--backend` selects the executor(s): `sim` (default) keeps the
//! cycle-level simulator, `native` uses the `warp-native` fast path
//! (for `--run`, `--differential*`, and `--fuzz`, which then also
//! executes every compiling input natively), and `all` makes the
//! differential modes three-way — oracle, simulator, and native
//! compared pairwise, so a mismatch localizes to one executor.

use std::process::ExitCode;
use warp_common::{observe, CollectDumps};
use warp_compiler::{
    audit, corpus, differential, fuzz, passes, service, CompileOptions, CompiledModule,
    ExecBackend, ServiceConfig, Session, SessionCtrl,
};
use warp_ir::LowerOptions;
use warp_service::{ExecutorConfig, JobOutcome};
use warp_sim::{FaultPlan, SimOptions};

/// `--emit` kinds: the Table 7-1 metrics and listings, plus one kind
/// per dumpable pass artifact.
const EMIT_KINDS: [(&str, Option<&str>); 10] = [
    ("metrics", None),
    ("cell", None),
    ("iu", None),
    // Per-pass artifact dumps (equivalent to --dump-after <pass>).
    ("hir", Some("frontend")),
    ("comm", Some("comm")),
    ("ir", Some("lower")),
    ("rewrite", Some("rewrite")),
    ("decompose", Some("decompose")),
    ("skew", Some("skew")),
    ("host", Some("host-codegen")),
];

struct Args {
    source: Option<(String, String)>,
    corpus_all: bool,
    emit: Vec<String>,
    dump_after: Vec<String>,
    time_passes: bool,
    runs: Vec<(String, Vec<f32>)>,
    opts: CompileOptions,
    ctrl: SessionCtrl,
    cells: Option<u32>,
    check: bool,
    audit: bool,
    inject: Option<FaultPlan>,
    differential: Option<usize>,
    differential_check: bool,
    fuzz: Option<usize>,
    seed: Option<u64>,
    repro_dir: Option<std::path::PathBuf>,
    backend: differential::BackendSel,
}

fn usage() -> ! {
    let emit_kinds: Vec<&str> = EMIT_KINDS.iter().map(|(k, _)| *k).collect();
    let pass_names: Vec<&str> = passes::pass_names().collect();
    eprintln!(
        "usage: w2c FILE.w2 [--no-opt] [--unroll K] [--no-pipeline]\n\
         \x20           [--rewrite-fuel N] [--emit KIND]\n\
         \x20           [--dump-after PASS] [--time-passes]\n\
         \x20           [--run NAME=v1,v2,...] [--cells N] [--check]\n\
         \x20           [--audit-guarantees] [--inject SPEC]\n\
         \x20      w2c FILE.w2 --differential-check [--seed S] [--inject SPEC]\n\
         \x20                  [--backend sim|native|all]\n\
         \x20      w2c --differential N [--seed S] [--repro-dir DIR] [--inject SPEC]\n\
         \x20                  [--backend sim|native|all]\n\
         \x20      w2c --fuzz N [--seed S] [--repro-dir DIR] [--backend sim|native]\n\
         \x20      w2c --corpus NAME [same flags]\n\
         \x20      w2c --corpus all [--time-passes] [--audit-guarantees]\n\
         \x20  --emit KIND: one of {}\n\
         \x20  --dump-after PASS: one of {}\n\
         \x20  --no-pipeline: disable modulo scheduling of innermost loops\n\
         \x20      (cell loop bodies keep their list schedules)\n\
         \x20  --rewrite-fuel N: cap the mid-end at N pattern applications\n\
         \x20  --time-passes: print the per-pass timing table\n\
         \x20  --check: also execute the reference interpreter and compare\n\
         \x20  --audit-guarantees: verify the static skew/queue claims are\n\
         \x20      tight and every injectable fault class is detected\n\
         \x20  --differential N: fuzz N generated programs against the\n\
         \x20      reference oracle, shrinking any disagreement\n\
         \x20  --differential-check: compile FILE and compare simulator vs\n\
         \x20      oracle once (the repro-replay mode)\n\
         \x20  --fuzz N: run N mutated inputs through the guarded pipeline;\n\
         \x20      any panic is caught, shrunk, and reported\n\
         \x20  --backend B: which executor(s) run compiled modules —\n\
         \x20      sim (cycle-level simulator, default), native (fast\n\
         \x20      whole-array execution), or all (three-way differential:\n\
         \x20      oracle vs simulator vs native, pairwise). With --run,\n\
         \x20      native executes on the native backend; with --fuzz,\n\
         \x20      native also executes every compiling input natively\n\
         \x20  --seed S: root seed for --differential / --fuzz, input seed\n\
         \x20      for --differential-check (default 1)\n\
         \x20  --repro-dir DIR: where --differential / --fuzz write shrunk\n\
         \x20      repros\n\
         \x20  --inject SPEC: simulate under a fault plan, e.g.\n\
         \x20      seed=7,skew=-1,queue=4,budget=500,drop=X:0,corrupt=Y:3,\n\
         \x20      truncate=X:10,adr-delay=100@2,adr-drop=5,adr-corrupt=0:4096,\n\
         \x20      flip-flow",
        emit_kinds.join("|"),
        pass_names.join("|"),
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        source: None,
        corpus_all: false,
        emit: Vec::new(),
        dump_after: Vec::new(),
        time_passes: false,
        runs: Vec::new(),
        opts: CompileOptions::default(),
        ctrl: SessionCtrl::default(),
        cells: None,
        check: false,
        audit: false,
        inject: None,
        differential: None,
        differential_check: false,
        fuzz: None,
        seed: None,
        repro_dir: None,
        backend: differential::BackendSel::default(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => parsed.check = true,
            "--audit-guarantees" => parsed.audit = true,
            "--inject" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match spec.parse::<FaultPlan>() {
                    Ok(plan) => parsed.inject = Some(plan),
                    Err(e) => {
                        eprintln!("bad --inject spec: {e}\n");
                        usage();
                    }
                }
            }
            "--differential" => {
                let n = args.next().unwrap_or_else(|| usage());
                parsed.differential = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--differential-check" => parsed.differential_check = true,
            "--fuzz" => {
                let n = args.next().unwrap_or_else(|| usage());
                parsed.fuzz = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--seed" => {
                let s = args.next().unwrap_or_else(|| usage());
                parsed.seed = Some(s.parse().unwrap_or_else(|_| usage()));
            }
            "--repro-dir" => {
                let dir = args.next().unwrap_or_else(|| usage());
                parsed.repro_dir = Some(std::path::PathBuf::from(dir));
            }
            "--backend" => {
                let b = args.next().unwrap_or_else(|| usage());
                match b.parse::<differential::BackendSel>() {
                    Ok(sel) => {
                        parsed.backend = sel;
                        // The request-level backend recorded with the
                        // compile (and in the cache key).
                        parsed.ctrl.backend = match sel {
                            differential::BackendSel::Sim => ExecBackend::Sim,
                            _ => ExecBackend::Native,
                        };
                    }
                    Err(e) => {
                        eprintln!("bad --backend: {e}\n");
                        usage();
                    }
                }
            }
            "--no-pipeline" => parsed.ctrl.pipeline = false,
            "--rewrite-fuel" => {
                let n = args.next().unwrap_or_else(|| usage());
                parsed.ctrl.rewrite_fuel = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--time-passes" => parsed.time_passes = true,
            "--no-opt" => {
                parsed.opts.lower = LowerOptions {
                    optimize: false,
                    ..parsed.opts.lower.clone()
                }
            }
            "--unroll" => {
                let k = args.next().unwrap_or_else(|| usage());
                parsed.opts.lower.unroll = k.parse().unwrap_or_else(|_| usage());
            }
            "--emit" => {
                let kind = args.next().unwrap_or_else(|| usage());
                if !EMIT_KINDS.iter().any(|(k, _)| *k == kind) {
                    eprintln!("unknown --emit kind `{kind}`\n");
                    usage();
                }
                parsed.emit.push(kind);
            }
            "--dump-after" => {
                let pass = args.next().unwrap_or_else(|| usage());
                if passes::find_pass(&pass).is_none() {
                    eprintln!("unknown pass `{pass}` for --dump-after\n");
                    usage();
                }
                parsed.dump_after.push(pass);
            }
            "--cells" => {
                let n = args.next().unwrap_or_else(|| usage());
                let n: u32 = n.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!("--cells must be at least 1\n");
                    usage();
                }
                parsed.cells = Some(n);
            }
            "--run" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let (name, vals) = spec.split_once('=').unwrap_or_else(|| usage());
                let data: Vec<f32> = vals
                    .split(',')
                    .map(|v| v.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                parsed.runs.push((name.to_owned(), data));
            }
            "--corpus" => {
                let name = args.next().unwrap_or_else(|| usage());
                if name == "all" {
                    parsed.corpus_all = true;
                    continue;
                }
                let Some((_, src)) = corpus::TABLE_7_1.iter().find(|(n, _)| *n == name) else {
                    eprintln!("unknown corpus program `{name}`");
                    std::process::exit(2);
                };
                parsed.source = Some((name, (*src).to_owned()));
            }
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') => {
                let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read `{path}`: {e}");
                    std::process::exit(2);
                });
                parsed.source = Some((path.to_owned(), source));
            }
            _ => usage(),
        }
    }
    if parsed.corpus_all {
        if parsed.source.is_some()
            || !parsed.runs.is_empty()
            || !parsed.emit.is_empty()
            || !parsed.dump_after.is_empty()
            || parsed.check
            || parsed.inject.is_some()
        {
            eprintln!(
                "--corpus all batch-compiles the whole corpus; it only combines with \
                 compilation options, --time-passes, and --audit-guarantees\n"
            );
            usage();
        }
    } else if parsed.source.is_none() && parsed.differential.is_none() && parsed.fuzz.is_none() {
        usage();
    }
    if parsed.differential_check && parsed.source.is_none() {
        eprintln!("--differential-check needs a FILE to check\n");
        usage();
    }
    parsed
}

/// Passes whose artifacts must be captured: explicit `--dump-after`
/// plus the pass-mapped `--emit` kinds, in request order, deduplicated.
fn wanted_dumps(args: &Args) -> Vec<String> {
    let mut wanted: Vec<String> = Vec::new();
    let mapped = args.emit.iter().filter_map(|kind| {
        EMIT_KINDS
            .iter()
            .find(|(k, _)| k == kind)
            .and_then(|(_, pass)| *pass)
            .map(str::to_owned)
    });
    for pass in args.dump_after.iter().cloned().chain(mapped) {
        if !wanted.contains(&pass) {
            wanted.push(pass);
        }
    }
    wanted
}

fn print_summary(module: &CompiledModule, source_name: &str) {
    println!(
        "compiled `{}` ({}) for {} cells",
        module.name, source_name, module.n_cells
    );
    println!("  W2 lines      : {}", module.metrics.w2_lines);
    println!("  cell ucode    : {}", module.metrics.cell_ucode);
    println!("  IU ucode      : {}", module.metrics.iu_ucode);
    println!("  IU registers  : {}", module.iu.regs_used);
    println!("  IU table words: {}", module.iu.table.len());
    println!("  min skew      : {}", module.skew.min_skew);
    println!("  queue bound   : {:?}", module.skew.queue_occupancy);
    println!("  compile time  : {:.1?}", module.metrics.compile_time);
}

fn print_time_passes(module: &CompiledModule) {
    println!("\nper-pass timing for `{}`:", module.name);
    let table = observe::timing_table(&module.metrics.per_pass, module.metrics.compile_time);
    for line in table.lines() {
        println!("  {line}");
    }
}

fn corpus_all(args: &Args) -> ExitCode {
    if args.audit {
        return corpus_audit(args);
    }
    // Batch-compile through the compile service so the summary carries
    // per-job wall times and resilience outcomes (degraded, timed out,
    // quarantined), not just pass/fail.
    let named: Vec<(String, String)> = corpus::TABLE_7_1
        .iter()
        .map(|(name, src)| ((*name).to_owned(), (*src).to_owned()))
        .collect();
    let batch = service::compile_batch_named(
        named,
        &args.opts,
        &ServiceConfig {
            exec: ExecutorConfig {
                queue_capacity: 0,
                ..ExecutorConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    println!(
        "{:<12} {:>9} {:>11} {:>9} {:>6} {:>6} {:>13}",
        "name", "W2 lines", "cell ucode", "IU ucode", "skew", "cells", "compile time"
    );
    let mut failed = 0usize;
    let mut modules: Vec<&CompiledModule> = Vec::new();
    for job in &batch.jobs {
        match &job.outcome {
            JobOutcome::Success(s) => {
                let m = &s.value;
                modules.push(m);
                println!(
                    "{:<12} {:>9} {:>11} {:>9} {:>6} {:>6} {:>13.1?}",
                    job.name,
                    m.metrics.w2_lines,
                    m.metrics.cell_ucode,
                    m.metrics.iu_ucode,
                    m.skew.min_skew,
                    m.n_cells,
                    m.metrics.compile_time,
                );
            }
            JobOutcome::Failed {
                error: warp_compiler::CompileFailure::Diagnostics(diags),
                ..
            } => {
                failed += 1;
                eprintln!("{}: FAILED\n{diags}", job.name);
            }
            other => {
                failed += 1;
                eprintln!("{}: {}", job.name, other.label());
            }
        }
    }
    print!("{}", batch.summary());
    if args.time_passes {
        for module in modules {
            print_time_passes(module);
        }
    }
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--corpus all --audit-guarantees`: audit the size-scaled corpus and
/// summarize per program. Any failed check — or failed compile — fails
/// the run, but never stops the rest of the batch.
fn corpus_audit(args: &Args) -> ExitCode {
    let results = audit::audit_corpus(&audit::AuditOptions::default(), &args.opts);
    let total = results.len();
    let mut failed = 0usize;
    for (name, result) in results {
        match result {
            Ok(report) => {
                if report.passed() {
                    let (passed, _, skipped) = report.tally();
                    println!("{name:<12} PASS ({passed} checks, {skipped} n/a)");
                } else {
                    failed += 1;
                    println!("{report}");
                }
            }
            Err(diags) => {
                failed += 1;
                eprintln!("{name}: compile FAILED\n{diags}");
            }
        }
    }
    println!("guarantee audit: {} ok, {failed} failed", total - failed);
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--differential N`: the generate → compile → simulate → compare
/// loop of [`differential::run_differential`], with mismatch repros
/// shrunk and written to `--repro-dir`. Exits non-zero on any
/// mismatch, generator rejection, or oracle error — a clean compiler
/// and a clean generator produce all-agree runs.
fn run_differential(args: &Args, cases: usize) -> ExitCode {
    let opts = differential::DiffOptions {
        cases,
        seed: args.seed.unwrap_or(1),
        compile: args.opts.clone(),
        pipeline: args.ctrl.pipeline,
        inject: args.inject.clone(),
        repro_dir: args.repro_dir.clone(),
        backend: args.backend,
        ..differential::DiffOptions::default()
    };
    let report = differential::run_differential(&opts);
    print!("{report}");
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--fuzz N`: mutated inputs through the guarded pipeline via
/// [`fuzz::run_fuzz`], with caught panics shrunk and written to
/// `--repro-dir`. Exits non-zero on any crash — a total compiler
/// produces crash-free runs on every seed.
fn run_fuzz(args: &Args, cases: usize) -> ExitCode {
    let opts = fuzz::FuzzOptions {
        cases,
        seed: args.seed.unwrap_or(1),
        compile: args.opts.clone(),
        pipeline: args.ctrl.pipeline,
        repro_dir: args.repro_dir.clone(),
        // `all` has no extra meaning for fuzzing: anything beyond sim
        // exercises the native executor on every compiling input.
        backend: if args.backend == differential::BackendSel::Sim {
            ExecBackend::Sim
        } else {
            ExecBackend::Native
        },
        ..fuzz::FuzzOptions::default()
    };
    let report = fuzz::run_fuzz(&opts);
    print!("{report}");
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `FILE --differential-check`: one compile + simulate + bitwise
/// oracle comparison — the replay half of the repro workflow the
/// shrunk `.w2` files name in their header comment.
fn differential_check(args: &Args, source: &str, source_name: &str) -> ExitCode {
    let opts = differential::DiffOptions {
        compile: args.opts.clone(),
        pipeline: args.ctrl.pipeline,
        inject: args.inject.clone(),
        backend: args.backend,
        ..differential::DiffOptions::default()
    };
    let input_seed = args.seed.unwrap_or(1);
    match differential::check_case(source, input_seed, &opts) {
        differential::CaseOutcome::Agree => {
            let who = match opts.backend {
                differential::BackendSel::Sim => "simulator agrees with the oracle",
                differential::BackendSel::Native => "native backend agrees with the oracle",
                differential::BackendSel::All => {
                    "oracle, simulator, and native backend agree pairwise"
                }
            };
            println!("differential check `{source_name}`: {who}");
            ExitCode::SUCCESS
        }
        differential::CaseOutcome::Rejected(d) => {
            eprintln!("differential check `{source_name}`: program rejected\n{d}");
            ExitCode::FAILURE
        }
        differential::CaseOutcome::Budget(d) => {
            eprintln!("differential check `{source_name}`: budget exhausted: {d}");
            ExitCode::FAILURE
        }
        differential::CaseOutcome::OracleError(d) => {
            eprintln!("differential check `{source_name}`: oracle error: {d}");
            ExitCode::FAILURE
        }
        differential::CaseOutcome::Mismatch(d) => {
            eprintln!("differential check `{source_name}`: MISMATCH: {d}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.corpus_all {
        return corpus_all(&args);
    }
    if let (Some(cases), None) = (args.differential, &args.source) {
        return run_differential(&args, cases);
    }
    if let (Some(cases), None) = (args.fuzz, &args.source) {
        return run_fuzz(&args, cases);
    }
    let (source_name, source) = args.source.clone().expect("checked by parse_args");
    if args.differential_check {
        return differential_check(&args, &source, &source_name);
    }

    let mut dumps = CollectDumps::for_passes(wanted_dumps(&args));
    let session =
        Session::with_observer(args.opts.clone(), &mut dumps).with_ctrl(args.ctrl.clone());
    let module = match session.compile(&source) {
        Ok(m) => m,
        Err(diags) => {
            for d in &diags {
                eprintln!("{}", d.render(&source));
            }
            // Any error-severity diagnostic means the compile failed;
            // warnings alone never reach this path (the front end
            // returns Ok and carries them on the module).
            return ExitCode::FAILURE;
        }
    };
    for w in &module.warnings {
        eprintln!("{}", w.render(&source));
    }

    print_summary(&module, &source_name);
    if args.time_passes {
        print_time_passes(&module);
    }

    for dump in dumps.dumps() {
        println!("\n=== dump after {} ({}) ===", dump.pass, dump.kind);
        print!("{}", dump.text);
    }

    for what in args.emit.iter().map(String::as_str) {
        match what {
            "cell" => println!("\n{}", module.cell_code.listing()),
            "iu" => println!("\n{}", module.iu.listing()),
            // "metrics" is the always-printed summary; pass-mapped
            // kinds were rendered through the dump observer above.
            _ => {}
        }
    }

    if args.audit {
        let report = audit::audit(&module, &audit::AuditOptions::default());
        println!("\n{report}");
        if !report.passed() {
            return ExitCode::FAILURE;
        }
    }

    if let Some(plan) = &args.inject {
        // Simulate under the fault plan, with the caller's inputs if
        // given, otherwise the audit's seeded inputs.
        let owned;
        let inputs: Vec<(&str, &[f32])> = if args.runs.is_empty() {
            owned = audit::seeded_inputs(&module, plan.seed);
            owned
                .iter()
                .map(|(n, d)| (n.as_str(), d.as_slice()))
                .collect()
        } else {
            args.runs
                .iter()
                .map(|(n, d)| (n.as_str(), d.as_slice()))
                .collect()
        };
        let n_cells = args.cells.unwrap_or(module.n_cells);
        println!("\ninjecting: {plan}");
        let opts = SimOptions {
            plan: plan.clone(),
            claims: Some(module.claims()),
            ..SimOptions::default()
        };
        match module.run_audited(n_cells, module.skew.min_skew, &inputs, &opts) {
            Ok(report) => {
                println!(
                    "run survived the fault plan: {} cycles, {} FLOPs (outputs may still \
                     be corrupted — compare against a clean run)",
                    report.cycles, report.fp_ops
                );
            }
            Err(fault) => {
                println!("{fault}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    if !args.runs.is_empty() && args.backend == differential::BackendSel::Native {
        // `--run --backend native`: execute on the native backend.
        // Untimed — no cycle count — but bitwise the same words.
        let inputs: Vec<(&str, &[f32])> = args
            .runs
            .iter()
            .map(|(n, d)| (n.as_str(), d.as_slice()))
            .collect();
        match module.run_native(&inputs, &warp_native::NativeOptions::default()) {
            Ok(report) => {
                println!(
                    "\nran natively on {} cells: {} FLOPs, {} boundary word(s) out",
                    module.n_cells, report.fp_ops, report.words_out
                );
                for name in module
                    .ir
                    .vars
                    .iter()
                    .filter(|(_, v)| v.kind == w2_lang::hir::VarKind::Host)
                    .map(|(_, v)| v.name.clone())
                {
                    let data = match report.host.get(&name) {
                        Ok(d) => d,
                        Err(e) => {
                            eprintln!("cannot read host variable `{name}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let preview: Vec<String> =
                        data.iter().take(8).map(|v| format!("{v}")).collect();
                    println!(
                        "  {name} = [{}{}]",
                        preview.join(", "),
                        if data.len() > 8 { ", ..." } else { "" }
                    );
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("native execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !args.runs.is_empty() {
        let inputs: Vec<(&str, &[f32])> = args
            .runs
            .iter()
            .map(|(n, d)| (n.as_str(), d.as_slice()))
            .collect();
        let n_cells = args.cells.unwrap_or(module.n_cells);
        match module.run_with(n_cells, module.skew.min_skew, &inputs) {
            Ok(report) => {
                println!(
                    "\nran on {} cells: {} cycles, {} FLOPs, {:.3} results/cycle",
                    n_cells,
                    report.cycles,
                    report.fp_ops,
                    report.throughput()
                );
                for name in module
                    .ir
                    .vars
                    .iter()
                    .filter(|(_, v)| v.kind == w2_lang::hir::VarKind::Host)
                    .map(|(_, v)| v.name.clone())
                {
                    let data = match report.host.get(&name) {
                        Ok(d) => d,
                        Err(e) => {
                            eprintln!("cannot read host variable `{name}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let preview: Vec<String> =
                        data.iter().take(8).map(|v| format!("{v}")).collect();
                    println!(
                        "  {name} = [{}{}]",
                        preview.join(", "),
                        if data.len() > 8 { ", ..." } else { "" }
                    );
                }
            }
            Err(e) => {
                eprintln!("simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }

        if args.check {
            let hir = match w2_lang::parse_and_check(&source) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("front end failed during --check: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut host = warp_host::HostMemory::new(&module.ir.vars);
            for (name, data) in &args.runs {
                if let Err(e) = host.set(name, data) {
                    eprintln!("--check setup failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match warp_compiler::oracle::interpret(&hir, &host) {
                Ok(want) => {
                    let sim = match module.run_with(n_cells, module.skew.min_skew, &inputs) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("--check re-run failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let mut mismatches = 0usize;
                    for (_, v) in module.ir.vars.iter() {
                        if v.kind != w2_lang::hir::VarKind::Host {
                            continue;
                        }
                        let (a, b) = match (sim.host.get(&v.name), want.get(&v.name)) {
                            (Ok(a), Ok(b)) => (a, b),
                            (Err(e), _) | (_, Err(e)) => {
                                eprintln!("--check cannot read `{}`: {e}", v.name);
                                return ExitCode::FAILURE;
                            }
                        };
                        for k in 0..a.len() {
                            if a[k].to_bits() != b[k].to_bits() {
                                if mismatches < 5 {
                                    eprintln!(
                                        "  MISMATCH {}[{}]: array {} vs oracle {}",
                                        v.name, k, a[k], b[k]
                                    );
                                }
                                mismatches += 1;
                            }
                        }
                    }
                    if mismatches == 0 {
                        println!("\ncheck: simulated array agrees with the reference interpreter");
                    } else {
                        eprintln!("\ncheck FAILED: {mismatches} word(s) differ");
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("oracle failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
