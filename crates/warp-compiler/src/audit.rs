//! The `GuaranteeAudit` pass: prove the compiler's static safety
//! claims hold — and that the simulator detects every way they can
//! break.
//!
//! The paper's central bargain (§6.2, §6.3.2) is *compiler-guaranteed,
//! runtime-unchecked*: the skew/queue analysis proves at compile time
//! that no queue under- or overflows and every IU address arrives on
//! time, so the hardware needs no interlocks. That bargain is only
//! honest if the claimed bounds are **tight** and the dynamic checks
//! that re-verify them actually fire. [`audit`] checks both directions
//! for one compiled module:
//!
//! * **Guarantee direction** — a nominal run at `min_skew` succeeds,
//!   and the observed queue high-water marks never exceed the claimed
//!   occupancy bounds.
//! * **Tightness direction** — one cycle less skew must fail, with a
//!   starvation error (`QueueUnderflow`/`AddressLate`), proving
//!   `min_skew` is minimal rather than merely sufficient.
//! * **Detection direction** — each class of injected fault
//!   ([`Fault`]) must be caught by the matching [`SimError`] variant;
//!   a silent value corruption must be observable differentially.
//!
//! [`audit_corpus`] runs the whole suite over size-scaled variants of
//! the paper's Table 7-1 corpus (scaled so CI finishes in seconds; the
//! timing structure is size-independent because W2 control flow is
//! static and conditionals are predicated).

use crate::{corpus, CompileOptions, CompiledModule};
use std::fmt;
use w2_lang::hir::VarKind;
use warp_common::DiagnosticBag;
use warp_host::HostWordSource;
use warp_sim::{splitmix64, Fault, FaultPlan, SimError, SimOptions};

/// Options for one audit.
#[derive(Clone, Debug)]
pub struct AuditOptions {
    /// Seed for the generated host inputs and corruption masks.
    /// Predicated execution makes cell timing data-independent, so any
    /// seed exercises the same schedule; the seed only varies values.
    pub seed: u64,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions { seed: 0x06A1_1D17 }
    }
}

/// The result of one named audit check.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// Stable check name (e.g. `skew-tightness`, `detect:adr-delay`).
    pub name: &'static str,
    /// Whether the check passed (not-applicable checks pass).
    pub passed: bool,
    /// `true` when the check did not apply to this module (e.g. no IU
    /// addresses to delay) and was vacuously passed.
    pub skipped: bool,
    /// Human-readable evidence.
    pub detail: String,
}

impl CheckOutcome {
    fn pass(name: &'static str, detail: impl Into<String>) -> CheckOutcome {
        CheckOutcome {
            name,
            passed: true,
            skipped: false,
            detail: detail.into(),
        }
    }

    fn fail(name: &'static str, detail: impl Into<String>) -> CheckOutcome {
        CheckOutcome {
            name,
            passed: false,
            skipped: false,
            detail: detail.into(),
        }
    }

    fn skip(name: &'static str, detail: impl Into<String>) -> CheckOutcome {
        CheckOutcome {
            name,
            passed: true,
            skipped: true,
            detail: detail.into(),
        }
    }
}

/// The full audit result for one module.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Module name.
    pub module: String,
    /// Every check, in execution order.
    pub checks: Vec<CheckOutcome>,
}

impl AuditReport {
    /// `true` when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Counts of (passed, failed, skipped) checks.
    pub fn tally(&self) -> (usize, usize, usize) {
        let failed = self.checks.iter().filter(|c| !c.passed).count();
        let skipped = self.checks.iter().filter(|c| c.skipped).count();
        (self.checks.len() - failed - skipped, failed, skipped)
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (passed, failed, skipped) = self.tally();
        writeln!(
            f,
            "guarantee audit `{}`: {} — {passed} passed, {failed} failed, {skipped} n/a",
            self.module,
            if self.passed() { "PASS" } else { "FAIL" },
        )?;
        for c in &self.checks {
            writeln!(
                f,
                "  [{}] {:<22} {}",
                if !c.passed {
                    "FAIL"
                } else if c.skipped {
                    " n/a"
                } else {
                    "  ok"
                },
                c.name,
                c.detail
            )?;
        }
        Ok(())
    }
}

/// Deterministic host inputs for `module`, seeded by `seed`: every
/// array the host program feeds to the array gets values in
/// `[0.25, 1.25)` (bounded away from zero so corrupted words cannot
/// vanish in a multiplication).
pub fn seeded_inputs(module: &CompiledModule, seed: u64) -> Vec<(String, Vec<f32>)> {
    let mut input_vars: Vec<_> = module
        .host
        .inputs
        .values()
        .flatten()
        .filter_map(|w| match w {
            HostWordSource::Elem { var, .. } => Some(*var),
            HostWordSource::Lit(_) => None,
        })
        .collect();
    input_vars.sort();
    input_vars.dedup();
    input_vars
        .into_iter()
        .map(|var| {
            let info = &module.ir.vars[var];
            debug_assert_eq!(info.kind, VarKind::Host);
            let data = (0..info.size())
                .map(|k| {
                    let bits = splitmix64(seed ^ u64::from(var.0) << 32 ^ u64::from(k));
                    (bits >> 40) as f32 / (1u64 << 24) as f32 + 0.25
                })
                .collect();
            (info.name.clone(), data)
        })
        .collect()
}

/// Audits one compiled module. Never panics: every probe failure is
/// reported as a failing [`CheckOutcome`].
pub fn audit(module: &CompiledModule, opts: &AuditOptions) -> AuditReport {
    let owned = seeded_inputs(module, opts.seed);
    let inputs: Vec<(&str, &[f32])> = owned
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();
    let claims = module.claims();
    let mut checks = Vec::new();

    let run_plan = |plan: FaultPlan| {
        module.run_audited(
            module.n_cells,
            module.skew.min_skew,
            &inputs,
            &SimOptions {
                plan,
                ring_capacity: 16,
                claims: Some(claims.clone()),
                ..SimOptions::default()
            },
        )
    };

    // Guarantee direction: the compiled parameters must run clean.
    let nominal = match run_plan(FaultPlan::new(opts.seed)) {
        Ok(report) => {
            checks.push(CheckOutcome::pass(
                "nominal",
                format!(
                    "min_skew {} runs clean in {} cycles",
                    module.skew.min_skew, report.cycles
                ),
            ));
            report
        }
        Err(fault) => {
            checks.push(CheckOutcome::fail(
                "nominal",
                format!("compiled parameters violate an invariant: {}", fault.error),
            ));
            // Every further check compares against the nominal run;
            // without one the audit cannot continue.
            return AuditReport {
                module: module.name.clone(),
                checks,
            };
        }
    };

    // Observed occupancy must respect (and ideally meet) the claims.
    let mut over = Vec::new();
    let mut evidence = Vec::new();
    for (chan, &claimed) in &claims.queue_occupancy {
        let observed = nominal.queue_high_water.get(chan).copied().unwrap_or(0);
        evidence.push(format!(
            "{chan:?} observed {observed}/{claimed}{}",
            if observed == claimed { " (tight)" } else { "" }
        ));
        if observed > claimed {
            over.push(format!("{chan:?} observed {observed} > claimed {claimed}"));
        }
    }
    checks.push(if over.is_empty() {
        CheckOutcome::pass("occupancy-bound", evidence.join(", "))
    } else {
        CheckOutcome::fail("occupancy-bound", over.join(", "))
    });

    // Tightness direction: one cycle less must starve something. A
    // degraded skew report carries a conservative (sound but not tight)
    // bound, so minimality cannot be asserted — skip, don't fail.
    checks.push(if module.skew.degraded {
        CheckOutcome::skip(
            "skew-tightness",
            "degraded skew: conservative bound is sound but not claimed tight".to_owned(),
        )
    } else if module.skew.min_skew == 0 || module.n_cells <= 1 {
        CheckOutcome::skip(
            "skew-tightness",
            "no positive inter-cell skew to undercut".to_owned(),
        )
    } else {
        match run_plan(FaultPlan::new(opts.seed).with(Fault::SkewDelta(-1))) {
            Err(fault)
                if matches!(
                    fault.error,
                    SimError::QueueUnderflow { .. } | SimError::AddressLate { .. }
                ) =>
            {
                CheckOutcome::pass(
                    "skew-tightness",
                    format!("min_skew - 1 starves the array: {}", fault.error),
                )
            }
            Err(fault) => CheckOutcome::fail(
                "skew-tightness",
                format!(
                    "min_skew - 1 failed, but not by starvation: {}",
                    fault.error
                ),
            ),
            Ok(_) => CheckOutcome::fail(
                "skew-tightness",
                "min_skew - 1 ran clean: the claimed skew is not minimal".to_owned(),
            ),
        }
    });

    // Detection direction: each fault class must trip its matching
    // SimError variant.
    let expect =
        |name: &'static str, plan: FaultPlan, ok: &dyn Fn(&SimError) -> bool, want: &str| {
            match run_plan(plan) {
                Err(fault) if ok(&fault.error) => {
                    CheckOutcome::pass(name, format!("detected: {}", fault.error))
                }
                Err(fault) => CheckOutcome::fail(
                    name,
                    format!(
                        "tripped the wrong invariant (wanted {want}): {}",
                        fault.error
                    ),
                ),
                Ok(_) => CheckOutcome::fail(name, format!("ran clean; {want} was not detected")),
            }
        };

    let max_high_water = nominal
        .queue_high_water
        .values()
        .copied()
        .max()
        .unwrap_or(0);
    checks.push(if max_high_water == 0 {
        CheckOutcome::skip(
            "detect:queue-shrink",
            "no interior queue traffic to overflow".to_owned(),
        )
    } else {
        // A queue one word smaller than the observed peak, plus extra
        // skew so the producer runs ahead, must overflow.
        let cap = u32::try_from(max_high_water - 1).unwrap_or(u32::MAX);
        expect(
            "detect:queue-shrink",
            FaultPlan::new(opts.seed)
                .with(Fault::QueueCapacity(cap))
                .with(Fault::SkewDelta(i64::from(module.machine.queue_capacity))),
            &|e| matches!(e, SimError::QueueOverflow { .. }),
            "QueueOverflow",
        )
    });

    let has_addresses = !module.iu.emissions().is_empty();
    checks.push(if !has_addresses {
        CheckOutcome::skip(
            "detect:adr-delay",
            "program uses no IU addresses".to_owned(),
        )
    } else {
        expect(
            "detect:adr-delay",
            FaultPlan::new(opts.seed).with(Fault::DelayAddresses {
                cell: None,
                cycles: 1 << 30,
            }),
            &|e| matches!(e, SimError::AddressLate { .. }),
            "AddressLate",
        )
    });
    checks.push(if !has_addresses {
        CheckOutcome::skip(
            "detect:adr-corrupt",
            "program uses no IU addresses".to_owned(),
        )
    } else {
        expect(
            "detect:adr-corrupt",
            FaultPlan::new(opts.seed).with(Fault::CorruptAddress {
                cell: None,
                index: 0,
                addr: module.machine.memory_words,
            }),
            &|e| matches!(e, SimError::BadAddress { .. }),
            "BadAddress",
        )
    });

    let input_chan = module
        .host
        .inputs
        .iter()
        .find(|(_, words)| !words.is_empty())
        .map(|(chan, words)| (*chan, words.len()));
    checks.push(match input_chan {
        None => CheckOutcome::skip(
            "detect:input-truncate",
            "host supplies no input words".to_owned(),
        ),
        Some((chan, len)) => expect(
            "detect:input-truncate",
            FaultPlan::new(opts.seed).with(Fault::TruncateInput {
                chan,
                keep: len - 1,
            }),
            &|e| {
                matches!(
                    e,
                    SimError::QueueUnderflow { cell: 0, .. } | SimError::Hang { .. }
                )
            },
            "QueueUnderflow at the boundary cell",
        ),
    });

    // The first word sent on the output-bearing channel is live: it
    // either feeds a downstream cell or is the first host result.
    let output_chan = module
        .host
        .outputs
        .iter()
        .find(|(_, sinks)| sinks.iter().any(Option::is_some))
        .map(|(chan, _)| *chan);
    checks.push(match output_chan {
        None => CheckOutcome::skip(
            "detect:word-drop",
            "module produces no host outputs".to_owned(),
        ),
        Some(chan) => expect(
            "detect:word-drop",
            FaultPlan::new(opts.seed).with(Fault::DropWord { chan, index: 0 }),
            &|e| {
                matches!(
                    e,
                    SimError::QueueUnderflow { .. } | SimError::OutputCountMismatch { .. }
                )
            },
            "QueueUnderflow or OutputCountMismatch",
        ),
    });

    // A corrupted value violates no machine invariant; it must be
    // caught differentially against the clean run. Word 0 can land in
    // a deliberately discarded warm-up prefix (conv1d pads its first
    // taps-1 partial sums), so target the globally *last* word on the
    // output channel: cells are homogeneous, so each sends
    // `outputs[chan].len()` words on `chan`, and the final cell — which
    // finishes last — commits the final one, bound to the last output
    // element.
    let corrupt_target = module
        .host
        .outputs
        .iter()
        .find(|(_, sinks)| sinks.last().is_some_and(Option::is_some))
        .map(|(chan, sinks)| (*chan, u64::from(module.n_cells) * sinks.len() as u64 - 1));
    checks.push(match corrupt_target {
        None => CheckOutcome::skip(
            "detect:word-corrupt",
            "no output channel ends in a host-bound word".to_owned(),
        ),
        Some((chan, index)) => {
            match run_plan(FaultPlan::new(opts.seed).with(Fault::CorruptWord { chan, index })) {
                Err(fault) => CheckOutcome::pass(
                    "detect:word-corrupt",
                    format!("corruption tripped an invariant: {}", fault.error),
                ),
                Ok(corrupted) => {
                    let differs = module.ir.vars.iter().any(|(_, v)| {
                        v.kind == VarKind::Host
                            && match (nominal.host.get(&v.name), corrupted.host.get(&v.name)) {
                                (Ok(a), Ok(b)) => {
                                    a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
                                }
                                _ => false,
                            }
                    });
                    if differs {
                        CheckOutcome::pass(
                            "detect:word-corrupt",
                            format!("corrupted {chan:?} word {index} visible in the output"),
                        )
                    } else {
                        CheckOutcome::fail(
                            "detect:word-corrupt",
                            format!("corrupted {chan:?} word {index} escaped undetected"),
                        )
                    }
                }
            }
        }
    });

    checks.push(expect(
        "detect:flow-flip",
        FaultPlan::new(opts.seed).with(Fault::FlipFlow),
        &|e| matches!(e, SimError::WrongDirection { .. }),
        "WrongDirection",
    ));

    checks.push(expect(
        "detect:hang",
        FaultPlan::new(opts.seed).with(Fault::CycleBudget(nominal.cycles.saturating_sub(2).max(1))),
        &|e| matches!(e, SimError::Hang { .. }),
        "Hang",
    ));

    // A bad host binding must surface as SimError::Host with the
    // underlying HostError reachable through the source() chain.
    checks.push({
        let name = "detect:host-binding";
        let bad_len = owned
            .first()
            .map(|(n, d)| (n.clone(), vec![0.0f32; d.len() + 1]));
        match bad_len {
            None => CheckOutcome::skip(name, "module takes no host inputs".to_owned()),
            Some((var, data)) => {
                let bad: Vec<(&str, &[f32])> = vec![(var.as_str(), data.as_slice())];
                match module.run_audited(
                    module.n_cells,
                    module.skew.min_skew,
                    &bad,
                    &SimOptions::default(),
                ) {
                    Err(fault) if matches!(fault.error, SimError::Host(_)) => {
                        let chained = std::error::Error::source(&fault.error).is_some();
                        if chained {
                            CheckOutcome::pass(
                                name,
                                format!("rejected with source chain intact: {}", fault.error),
                            )
                        } else {
                            CheckOutcome::fail(name, "Host error lost its source".to_owned())
                        }
                    }
                    Err(fault) => CheckOutcome::fail(
                        name,
                        format!("wrong error for a bad binding: {}", fault.error),
                    ),
                    Ok(_) => CheckOutcome::fail(
                        name,
                        "over-long input bound without complaint".to_owned(),
                    ),
                }
            }
        }
    });

    AuditReport {
        module: module.name.clone(),
        checks,
    }
}

/// Compiles and audits the scaled audit corpus
/// ([`corpus::audit_corpus`]). Compilation failures are reported per
/// program; one broken program never aborts the batch.
pub fn audit_corpus(
    opts: &AuditOptions,
    compile_opts: &CompileOptions,
) -> Vec<(&'static str, Result<AuditReport, DiagnosticBag>)> {
    let programs = corpus::audit_corpus();
    let sources: Vec<&str> = programs.iter().map(|(_, src)| src.as_str()).collect();
    let compiled = crate::compile_many(&sources, compile_opts);
    programs
        .iter()
        .zip(compiled)
        .map(|((name, _), result)| (*name, result.map(|m| audit(&m, opts))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn audit_passes_on_a_pipeline_program() {
        let m = compile(&corpus::polynomial_source(3, 8), &CompileOptions::default())
            .expect("compiles");
        let report = audit(&m, &AuditOptions::default());
        assert!(report.passed(), "{report}");
        // A multi-cell program with positive skew exercises the full
        // check suite: nothing but structural n/a skips.
        let ran: Vec<_> = report
            .checks
            .iter()
            .filter(|c| !c.skipped)
            .map(|c| c.name)
            .collect();
        assert!(ran.contains(&"skew-tightness"), "{ran:?}");
        assert!(ran.contains(&"detect:word-corrupt"), "{ran:?}");
        assert!(ran.len() >= 8, "{ran:?}");
    }

    #[test]
    fn audit_passes_on_a_single_cell_program() {
        let m = compile(&corpus::mandelbrot_source(4, 2), &CompileOptions::default())
            .expect("compiles");
        let report = audit(&m, &AuditOptions::default());
        assert!(report.passed(), "{report}");
        let skipped: Vec<_> = report
            .checks
            .iter()
            .filter(|c| c.skipped)
            .map(|c| c.name)
            .collect();
        assert!(
            skipped.contains(&"skew-tightness"),
            "single cell has no skew to undercut: {skipped:?}"
        );
    }

    #[test]
    fn audit_report_renders_every_check() {
        let m = compile(&corpus::binop_source(4, 4), &CompileOptions::default()).expect("compiles");
        let report = audit(&m, &AuditOptions::default());
        let text = report.to_string();
        for c in &report.checks {
            assert!(text.contains(c.name), "{text}");
        }
        assert!(text.contains("PASS") || text.contains("FAIL"));
    }

    #[test]
    fn seeded_inputs_cover_every_host_input() {
        let m = compile(corpus::POLYNOMIAL, &CompileOptions::default()).expect("compiles");
        let inputs = seeded_inputs(&m, 1);
        let names: Vec<_> = inputs.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"z") && names.contains(&"c"), "{names:?}");
        assert!(!names.contains(&"results"), "outputs are not bound");
        for (_, data) in &inputs {
            assert!(data.iter().all(|v| (0.25..1.25).contains(v)));
        }
        // Deterministic per seed, different across seeds.
        assert_eq!(inputs, seeded_inputs(&m, 1));
        assert_ne!(inputs, seeded_inputs(&m, 2));
    }
}
