//! Compile-and-run benchmarking of the corpus: the numbers behind
//! `BENCH_compile.json`.
//!
//! For every program the harness compiles twice — once with the
//! modulo-scheduling pipeline enabled (the default) and once with the
//! `--no-pipeline` list-scheduled baseline — simulates both builds on
//! the same seeded inputs, and records:
//!
//! * static µcode size (cell and IU words),
//! * simulated array cycles for each build,
//! * compile wall time of the pipelined build,
//! * the mid-end's per-pattern rewrite hit counts,
//! * how many innermost loops actually pipelined and at what IIs.
//!
//! The report serializes to JSON without any external dependency (the
//! container is offline), and [`BenchReport::improved`] /
//! [`BenchReport::regressed`] carry the acceptance criterion: modulo
//! scheduling must drop simulated cycles on several programs and may
//! regress none — the scheduler's profitability gate keeps every
//! unprofitable loop on its list schedule, so a regression here is a
//! bug, not a tuning matter.

use crate::{audit, CompileOptions, Session, SessionCtrl};

/// One program's before/after measurements.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Program name (corpus file stem).
    pub name: String,
    /// Cell µcode words of the pipelined build.
    pub cell_ucode: u32,
    /// IU µcode words of the pipelined build.
    pub iu_ucode: u64,
    /// Simulated array cycles of the `pipeline: false` baseline.
    pub cycles_baseline: u64,
    /// Simulated array cycles of the default (pipelined) build.
    pub cycles_pipelined: u64,
    /// Wall-clock compile time of the pipelined build, in milliseconds.
    pub compile_ms: f64,
    /// Per-pattern rewrite application counts (mid-end `Metrics`).
    pub rewrite_hits: Vec<(String, u64)>,
    /// `(ii, stages)` of each innermost loop that modulo-scheduled.
    pub pipelined_loops: Vec<(u32, u32)>,
}

/// The whole corpus, measured.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// One record per program, in input order.
    pub programs: Vec<BenchRecord>,
}

impl BenchReport {
    /// Programs whose simulated cycles dropped under pipelining.
    pub fn improved(&self) -> usize {
        self.programs
            .iter()
            .filter(|r| r.cycles_pipelined < r.cycles_baseline)
            .count()
    }

    /// Programs whose simulated cycles *rose* under pipelining. The
    /// profitability gate makes this a correctness criterion: it must
    /// be zero.
    pub fn regressed(&self) -> usize {
        self.programs
            .iter()
            .filter(|r| r.cycles_pipelined > r.cycles_baseline)
            .count()
    }

    /// Hand-rolled JSON (the container has no serde): the
    /// `BENCH_compile.json` payload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"programs\": [\n");
        for (i, r) in self.programs.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            out.push_str(&format!("\"cell_ucode\": {}, ", r.cell_ucode));
            out.push_str(&format!("\"iu_ucode\": {}, ", r.iu_ucode));
            out.push_str(&format!("\"cycles_baseline\": {}, ", r.cycles_baseline));
            out.push_str(&format!("\"cycles_pipelined\": {}, ", r.cycles_pipelined));
            out.push_str(&format!("\"compile_ms\": {:.3}, ", r.compile_ms));
            out.push_str("\"rewrite_hits\": {");
            for (j, (name, n)) in r.rewrite_hits.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_str(name), n));
            }
            out.push_str("}, \"pipelined_loops\": [");
            for (j, (ii, stages)) in r.pipelined_loops.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"ii\": {ii}, \"stages\": {stages}}}"));
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.programs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"improved\": {},\n", self.improved()));
        out.push_str(&format!("  \"regressed\": {}\n", self.regressed()));
        out.push_str("}\n");
        out
    }

    /// A fixed-width console summary.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<14} {:>10} {:>8} {:>10} {:>10} {:>7} {:>9} {:>6}\n",
            "name", "cell ucode", "iu", "base cyc", "piped cyc", "delta", "rewrites", "loops"
        );
        for r in &self.programs {
            let delta = r.cycles_baseline as i64 - r.cycles_pipelined as i64;
            let rewrites: u64 = r.rewrite_hits.iter().map(|(_, n)| n).sum();
            out.push_str(&format!(
                "{:<14} {:>10} {:>8} {:>10} {:>10} {:>7} {:>9} {:>6}\n",
                r.name,
                r.cell_ucode,
                r.iu_ucode,
                r.cycles_baseline,
                r.cycles_pipelined,
                delta,
                rewrites,
                r.pipelined_loops.len(),
            ));
        }
        out.push_str(&format!(
            "improved on {} of {} programs, regressed on {}\n",
            self.improved(),
            self.programs.len(),
            self.regressed(),
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn compile_mode(
    source: &str,
    opts: &CompileOptions,
    pipeline: bool,
) -> Result<crate::CompiledModule, String> {
    Session::new(opts.clone())
        .with_ctrl(SessionCtrl {
            pipeline,
            ..SessionCtrl::default()
        })
        .compile(source)
        .map_err(|d| d.to_string())
}

fn simulate(module: &crate::CompiledModule, seed: u64) -> Result<u64, String> {
    let owned = audit::seeded_inputs(module, seed);
    let inputs: Vec<(&str, &[f32])> = owned
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();
    module
        .run(&inputs)
        .map(|r| r.cycles)
        .map_err(|e| e.to_string())
}

/// Measures one program: both builds, both simulations.
///
/// # Errors
///
/// Returns the compile diagnostics or simulator error, prefixed with
/// the program name.
pub fn bench_program(
    name: &str,
    source: &str,
    opts: &CompileOptions,
    seed: u64,
) -> Result<BenchRecord, String> {
    let err = |stage: &str, e: String| format!("{name}: {stage}: {e}");

    let t0 = std::time::Instant::now();
    let piped = compile_mode(source, opts, true).map_err(|e| err("compile (pipelined)", e))?;
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    let base = compile_mode(source, opts, false).map_err(|e| err("compile (baseline)", e))?;

    let cycles_pipelined = simulate(&piped, seed).map_err(|e| err("simulate (pipelined)", e))?;
    let cycles_baseline = simulate(&base, seed).map_err(|e| err("simulate (baseline)", e))?;

    Ok(BenchRecord {
        name: name.to_owned(),
        cell_ucode: piped.metrics.cell_ucode,
        iu_ucode: piped.metrics.iu_ucode,
        cycles_baseline,
        cycles_pipelined,
        compile_ms,
        rewrite_hits: piped.metrics.rewrite_hits.clone(),
        pipelined_loops: piped
            .cell_code
            .pipelined
            .iter()
            .map(|p| (p.ii, p.stages))
            .collect(),
    })
}

/// Measures every `(name, source)` pair; fails on the first program
/// that does not compile and simulate in both modes.
///
/// # Errors
///
/// Propagates the first [`bench_program`] failure.
pub fn run_bench(
    programs: &[(String, String)],
    opts: &CompileOptions,
    seed: u64,
) -> Result<BenchReport, String> {
    let mut report = BenchReport::default();
    for (name, source) in programs {
        report
            .programs
            .push(bench_program(name, source, opts, seed)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn polynomial_improves_and_serializes() {
        let report = run_bench(
            &[("polynomial".to_owned(), corpus::polynomial_source(4, 64))],
            &CompileOptions::default(),
            1,
        )
        .expect("benches");
        assert_eq!(report.programs.len(), 1);
        let r = &report.programs[0];
        assert!(
            r.cycles_pipelined < r.cycles_baseline,
            "polynomial should pipeline: {} vs {}",
            r.cycles_pipelined,
            r.cycles_baseline
        );
        assert!(!r.pipelined_loops.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"cycles_baseline\""));
        assert!(json.contains("\"improved\": 1"));
        assert!(json.contains("\"regressed\": 0"));
    }

    #[test]
    fn json_escapes_are_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
