//! Compile-and-run benchmarking of the corpus: the numbers behind
//! `BENCH_compile.json`.
//!
//! For every program the harness compiles twice — once with the
//! modulo-scheduling pipeline enabled (the default) and once with the
//! `--no-pipeline` list-scheduled baseline — simulates both builds on
//! the same seeded inputs, and records:
//!
//! * static µcode size (cell and IU words),
//! * simulated array cycles for each build,
//! * compile wall time of the pipelined build,
//! * the mid-end's per-pattern rewrite hit counts,
//! * how many innermost loops actually pipelined and at what IIs.
//!
//! The report serializes to JSON without any external dependency (the
//! container is offline), and [`BenchReport::improved`] /
//! [`BenchReport::regressed`] carry the acceptance criterion: modulo
//! scheduling must drop simulated cycles on several programs and may
//! regress none — the scheduler's profitability gate keeps every
//! unprofitable loop on its list schedule, so a regression here is a
//! bug, not a tuning matter.
//!
//! The native half ([`run_native_bench`], behind `wbench --native`)
//! measures the serving question instead: best-of-N single-run wall
//! clock for the simulator vs best-of-N for the native backend on the
//! *same* module and inputs, with a bitwise cross-check that the two
//! executors produced identical words before any timing is trusted.
//! Its JSON goes to `BENCH_native.json`.

use crate::{audit, CompileOptions, Session, SessionCtrl};
use warp_ir::Region;

/// One program's before/after measurements.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Program name (corpus file stem).
    pub name: String,
    /// Cell µcode words of the pipelined build.
    pub cell_ucode: u32,
    /// IU µcode words of the pipelined build.
    pub iu_ucode: u64,
    /// Simulated array cycles of the `pipeline: false` baseline.
    pub cycles_baseline: u64,
    /// Simulated array cycles of the default (pipelined) build.
    pub cycles_pipelined: u64,
    /// Wall-clock compile time of the pipelined build, in milliseconds.
    pub compile_ms: f64,
    /// Per-pattern rewrite application counts (mid-end `Metrics`).
    pub rewrite_hits: Vec<(String, u64)>,
    /// One entry per *innermost* loop, in region order:
    /// `Some((ii, stages))` when it modulo-scheduled, `None` when the
    /// profitability gate kept it on its list schedule. The JSON
    /// serialization keeps the entry and emits explicit `null`s, so the
    /// schema is stable whether or not a loop pipelined.
    pub pipelined_loops: Vec<Option<(u32, u32)>>,
}

/// The whole corpus, measured.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// One record per program, in input order.
    pub programs: Vec<BenchRecord>,
}

impl BenchReport {
    /// Programs whose simulated cycles dropped under pipelining.
    pub fn improved(&self) -> usize {
        self.programs
            .iter()
            .filter(|r| r.cycles_pipelined < r.cycles_baseline)
            .count()
    }

    /// Programs whose simulated cycles *rose* under pipelining. The
    /// profitability gate makes this a correctness criterion: it must
    /// be zero.
    pub fn regressed(&self) -> usize {
        self.programs
            .iter()
            .filter(|r| r.cycles_pipelined > r.cycles_baseline)
            .count()
    }

    /// Hand-rolled JSON (the container has no serde): the
    /// `BENCH_compile.json` payload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"programs\": [\n");
        for (i, r) in self.programs.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            out.push_str(&format!("\"cell_ucode\": {}, ", r.cell_ucode));
            out.push_str(&format!("\"iu_ucode\": {}, ", r.iu_ucode));
            out.push_str(&format!("\"cycles_baseline\": {}, ", r.cycles_baseline));
            out.push_str(&format!("\"cycles_pipelined\": {}, ", r.cycles_pipelined));
            out.push_str(&format!("\"compile_ms\": {:.3}, ", r.compile_ms));
            out.push_str("\"rewrite_hits\": {");
            for (j, (name, n)) in r.rewrite_hits.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_str(name), n));
            }
            out.push_str("}, \"pipelined_loops\": [");
            for (j, entry) in r.pipelined_loops.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match entry {
                    Some((ii, stages)) => {
                        out.push_str(&format!("{{\"ii\": {ii}, \"stages\": {stages}}}"));
                    }
                    // A loop the gate skipped still gets its entry —
                    // explicit nulls, never a missing key.
                    None => out.push_str("{\"ii\": null, \"stages\": null}"),
                }
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.programs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"improved\": {},\n", self.improved()));
        out.push_str(&format!("  \"regressed\": {}\n", self.regressed()));
        out.push_str("}\n");
        out
    }

    /// A fixed-width console summary.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<14} {:>10} {:>8} {:>10} {:>10} {:>7} {:>9} {:>6}\n",
            "name", "cell ucode", "iu", "base cyc", "piped cyc", "delta", "rewrites", "loops"
        );
        for r in &self.programs {
            let delta = r.cycles_baseline as i64 - r.cycles_pipelined as i64;
            let rewrites: u64 = r.rewrite_hits.iter().map(|(_, n)| n).sum();
            out.push_str(&format!(
                "{:<14} {:>10} {:>8} {:>10} {:>10} {:>7} {:>9} {:>6}\n",
                r.name,
                r.cell_ucode,
                r.iu_ucode,
                r.cycles_baseline,
                r.cycles_pipelined,
                delta,
                rewrites,
                r.pipelined_loops.iter().flatten().count(),
            ));
        }
        out.push_str(&format!(
            "improved on {} of {} programs, regressed on {}\n",
            self.improved(),
            self.programs.len(),
            self.regressed(),
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Innermost loops of the region tree in region order — the loops the
/// modulo scheduler considers. A loop is innermost when its body
/// contains no further loop.
fn innermost_loops(region: &Region, out: &mut Vec<warp_ir::LoopId>) {
    match region {
        Region::Block(_) => {}
        Region::Loop { id, body } => {
            let before = out.len();
            innermost_loops(body, out);
            if out.len() == before {
                out.push(*id);
            }
        }
        Region::Seq(rs) => {
            for r in rs {
                innermost_loops(r, out);
            }
        }
    }
}

fn compile_mode(
    source: &str,
    opts: &CompileOptions,
    pipeline: bool,
) -> Result<crate::CompiledModule, String> {
    Session::new(opts.clone())
        .with_ctrl(SessionCtrl {
            pipeline,
            ..SessionCtrl::default()
        })
        .compile(source)
        .map_err(|d| d.to_string())
}

fn simulate(module: &crate::CompiledModule, seed: u64) -> Result<u64, String> {
    let owned = audit::seeded_inputs(module, seed);
    let inputs: Vec<(&str, &[f32])> = owned
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();
    module
        .run(&inputs)
        .map(|r| r.cycles)
        .map_err(|e| e.to_string())
}

/// Measures one program: both builds, both simulations.
///
/// # Errors
///
/// Returns the compile diagnostics or simulator error, prefixed with
/// the program name.
pub fn bench_program(
    name: &str,
    source: &str,
    opts: &CompileOptions,
    seed: u64,
) -> Result<BenchRecord, String> {
    let err = |stage: &str, e: String| format!("{name}: {stage}: {e}");

    let t0 = std::time::Instant::now();
    let piped = compile_mode(source, opts, true).map_err(|e| err("compile (pipelined)", e))?;
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    let base = compile_mode(source, opts, false).map_err(|e| err("compile (baseline)", e))?;

    let cycles_pipelined = simulate(&piped, seed).map_err(|e| err("simulate (pipelined)", e))?;
    let cycles_baseline = simulate(&base, seed).map_err(|e| err("simulate (baseline)", e))?;

    let mut loops = Vec::new();
    innermost_loops(&piped.ir.root, &mut loops);
    let pipelined_loops = loops
        .iter()
        .map(|lid| {
            piped
                .cell_code
                .pipelined
                .iter()
                .find(|p| p.id == *lid)
                .map(|p| (p.ii, p.stages))
        })
        .collect();

    Ok(BenchRecord {
        name: name.to_owned(),
        cell_ucode: piped.metrics.cell_ucode,
        iu_ucode: piped.metrics.iu_ucode,
        cycles_baseline,
        cycles_pipelined,
        compile_ms,
        rewrite_hits: piped.metrics.rewrite_hits.clone(),
        pipelined_loops,
    })
}

/// Measures every `(name, source)` pair; fails on the first program
/// that does not compile and simulate in both modes.
///
/// # Errors
///
/// Propagates the first [`bench_program`] failure.
pub fn run_bench(
    programs: &[(String, String)],
    opts: &CompileOptions,
    seed: u64,
) -> Result<BenchReport, String> {
    let mut report = BenchReport::default();
    for (name, source) in programs {
        report
            .programs
            .push(bench_program(name, source, opts, seed)?);
    }
    Ok(report)
}

/// One program's simulator-vs-native wall-clock measurement.
#[derive(Clone, Debug)]
pub struct NativeBenchRecord {
    /// Program name (corpus file stem).
    pub name: String,
    /// Simulated array cycles of the measured (pipelined) build — the
    /// work the native path skips, for context.
    pub cycles: u64,
    /// Best single-run simulator wall time (min over a few timed runs
    /// after one warmup), in milliseconds.
    pub sim_wall_ms: f64,
    /// Best single-run native wall time (min over
    /// [`NativeBenchRecord::native_repeats`] timed runs after one
    /// warmup), in milliseconds.
    pub native_wall_ms: f64,
    /// Timed native runs the minimum was taken over. Sub-millisecond
    /// walls jitter tens of percent on a shared machine; the minimum
    /// is the run least disturbed by that noise, applied symmetrically
    /// to both executors.
    pub native_repeats: u32,
    /// `sim_wall_ms / native_wall_ms` (`inf` if the native time rounds
    /// to zero).
    pub speedup: f64,
    /// Whether the two executors produced bitwise-identical host words
    /// and output streams. Always `true` in a passing run — the timing
    /// of a wrong answer is not interesting.
    pub bitwise_equal: bool,
}

/// The whole corpus, raced: `BENCH_native.json`.
#[derive(Clone, Debug, Default)]
pub struct NativeBenchReport {
    /// One record per program, in input order.
    pub programs: Vec<NativeBenchRecord>,
}

impl NativeBenchReport {
    /// Programs where the native path is at least 10× faster than one
    /// simulator run — the headline acceptance number.
    pub fn speedup_10x(&self) -> usize {
        self.programs.iter().filter(|r| r.speedup >= 10.0).count()
    }

    /// `true` when every program's native run matched the simulator
    /// bitwise.
    pub fn all_bitwise_equal(&self) -> bool {
        self.programs.iter().all(|r| r.bitwise_equal)
    }

    /// Hand-rolled JSON: the `BENCH_native.json` payload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"programs\": [\n");
        for (i, r) in self.programs.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            out.push_str(&format!("\"cycles\": {}, ", r.cycles));
            out.push_str(&format!("\"sim_wall_ms\": {:.3}, ", r.sim_wall_ms));
            out.push_str(&format!("\"native_wall_ms\": {:.4}, ", r.native_wall_ms));
            out.push_str(&format!("\"native_repeats\": {}, ", r.native_repeats));
            let speedup = if r.speedup.is_finite() {
                format!("{:.1}", r.speedup)
            } else {
                // JSON has no Infinity literal.
                "null".to_owned()
            };
            out.push_str(&format!("\"speedup\": {speedup}, "));
            out.push_str(&format!("\"bitwise_equal\": {}}}", r.bitwise_equal));
            out.push_str(if i + 1 < self.programs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"speedup_10x\": {},\n", self.speedup_10x()));
        out.push_str(&format!(
            "  \"all_bitwise_equal\": {}\n",
            self.all_bitwise_equal()
        ));
        out.push_str("}\n");
        out
    }

    /// A fixed-width console summary.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<14} {:>10} {:>10} {:>12} {:>9} {:>8}\n",
            "name", "cycles", "sim ms", "native ms", "speedup", "bitwise"
        );
        for r in &self.programs {
            out.push_str(&format!(
                "{:<14} {:>10} {:>10.3} {:>12.4} {:>8.1}x {:>8}\n",
                r.name,
                r.cycles,
                r.sim_wall_ms,
                r.native_wall_ms,
                r.speedup,
                if r.bitwise_equal { "ok" } else { "MISMATCH" },
            ));
        }
        out.push_str(&format!(
            ">=10x speedup on {} of {} programs\n",
            self.speedup_10x(),
            self.programs.len(),
        ));
        out
    }
}

/// `true` when the two reports carry bitwise-identical host words (for
/// every host variable) and output streams.
fn reports_bitwise_equal(
    module: &crate::CompiledModule,
    a: &warp_sim::RunReport,
    b: &warp_sim::RunReport,
) -> bool {
    for (_, info) in module.ir.vars.iter() {
        if info.kind != w2_lang::hir::VarKind::Host {
            continue;
        }
        let (Ok(av), Ok(bv)) = (a.host.get(&info.name), b.host.get(&info.name)) else {
            return false;
        };
        if av.len() != bv.len() || av.iter().zip(bv).any(|(x, y)| x.to_bits() != y.to_bits()) {
            return false;
        }
    }
    if a.out_streams.len() != b.out_streams.len() {
        return false;
    }
    a.out_streams.iter().all(|(chan, aw)| {
        b.out_streams.get(chan).is_some_and(|bw| {
            aw.len() == bw.len() && aw.iter().zip(bw).all(|(x, y)| x.to_bits() == y.to_bits())
        })
    })
}

/// Times `f` as the minimum over `runs` individually-timed calls. The
/// minimum is the noise-robust estimator for a wall clock: scheduler
/// preemption, interrupts, and cold caches only ever add time. Both
/// executors are timed with this same protocol (single runs, not
/// batched throughput loops), so neither gets an amortization the
/// other is denied.
fn min_single_wall_ms<E>(runs: u32, mut f: impl FnMut() -> Result<(), E>) -> Result<f64, E> {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t = std::time::Instant::now();
        f()?;
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    Ok(best)
}

/// Races one program: compiles pipelined with reassociation off (so
/// the bitwise cross-check is meaningful), then times the simulator
/// and the native backend on the same seeded inputs — one untimed
/// warmup each, then the best of N single runs ([`min_single_wall_ms`]).
/// The native side reuses one [`warp_native::NativeRunner`] across
/// runs, the way a long-lived serving process would; input binding is
/// inside both timed paths.
///
/// # Errors
///
/// Returns the compile diagnostics or either executor's error, prefixed
/// with the program name.
pub fn bench_native_program(
    name: &str,
    source: &str,
    opts: &CompileOptions,
    seed: u64,
    repeats: u32,
) -> Result<NativeBenchRecord, String> {
    let err = |stage: &str, e: String| format!("{name}: {stage}: {e}");
    let repeats = repeats.max(1);
    // The slow side gets fewer runs to keep the bench quick; long
    // walls don't need noise suppression anyway.
    let sim_runs = repeats.min(3);

    let mut copts = opts.clone();
    copts.lower.reassociate = false;
    let module = compile_mode(source, &copts, true).map_err(|e| err("compile", e))?;

    let owned = audit::seeded_inputs(&module, seed);
    let inputs: Vec<(&str, &[f32])> = owned
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();

    // One warmup run per executor keeps cold page faults out of the
    // timed runs and supplies the report for the bitwise check.
    let sim = module
        .run(&inputs)
        .map_err(|e| err("simulate", e.to_string()))?;
    let sim_wall_ms = min_single_wall_ms(sim_runs, || {
        module
            .run(&inputs)
            .map(|_| ())
            .map_err(|e| err("simulate", e.to_string()))
    })?;

    // Build the op tables and the runner once and amortize — the
    // serving path a long-lived daemon would take.
    let program = module.native_program();
    let native_opts = warp_native::NativeOptions::default();
    let mut runner = warp_native::NativeRunner::new(&program, &native_opts)
        .map_err(|e| err("native", e.to_string()))?;
    let mut native_once = || -> Result<warp_sim::RunReport, String> {
        let mut host = warp_host::HostMemory::new(&module.ir.vars);
        for (n, d) in &inputs {
            host.set(n, d).map_err(|e| err("bind", e.to_string()))?;
        }
        runner
            .run(host, &native_opts)
            .map_err(|e| err("native", e.to_string()))
    };
    let native = native_once()?;
    let native_wall_ms = min_single_wall_ms(repeats, || native_once().map(|_| ()))?;

    let speedup = if native_wall_ms > 0.0 {
        sim_wall_ms / native_wall_ms
    } else {
        f64::INFINITY
    };
    Ok(NativeBenchRecord {
        name: name.to_owned(),
        cycles: sim.cycles,
        sim_wall_ms,
        native_wall_ms,
        native_repeats: repeats,
        speedup,
        bitwise_equal: reports_bitwise_equal(&module, &sim, &native),
    })
}

/// Races every `(name, source)` pair; fails on the first program that
/// does not compile and run on both executors.
///
/// # Errors
///
/// Propagates the first [`bench_native_program`] failure.
pub fn run_native_bench(
    programs: &[(String, String)],
    opts: &CompileOptions,
    seed: u64,
    repeats: u32,
) -> Result<NativeBenchReport, String> {
    let mut report = NativeBenchReport::default();
    for (name, source) in programs {
        report
            .programs
            .push(bench_native_program(name, source, opts, seed, repeats)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn polynomial_improves_and_serializes() {
        let report = run_bench(
            &[("polynomial".to_owned(), corpus::polynomial_source(4, 64))],
            &CompileOptions::default(),
            1,
        )
        .expect("benches");
        assert_eq!(report.programs.len(), 1);
        let r = &report.programs[0];
        assert!(
            r.cycles_pipelined < r.cycles_baseline,
            "polynomial should pipeline: {} vs {}",
            r.cycles_pipelined,
            r.cycles_baseline
        );
        assert!(r.pipelined_loops.iter().any(Option::is_some));
        let json = report.to_json();
        assert!(json.contains("\"cycles_baseline\""));
        assert!(json.contains("\"improved\": 1"));
        assert!(json.contains("\"regressed\": 0"));
    }

    #[test]
    fn non_pipelined_loops_serialize_as_explicit_nulls() {
        let report = BenchReport {
            programs: vec![BenchRecord {
                name: "t".to_owned(),
                cell_ucode: 1,
                iu_ucode: 1,
                cycles_baseline: 2,
                cycles_pipelined: 2,
                compile_ms: 0.1,
                rewrite_hits: vec![],
                pipelined_loops: vec![Some((3, 2)), None],
            }],
        };
        let json = report.to_json();
        assert!(
            json.contains("{\"ii\": 3, \"stages\": 2}, {\"ii\": null, \"stages\": null}"),
            "{json}"
        );
    }

    #[test]
    fn every_innermost_loop_gets_a_record_entry() {
        // One pipelined build of the polynomial generator: the record
        // must carry one entry per innermost loop whether or not the
        // gate scheduled it, so consumers can line entries up with the
        // loop structure.
        let src = corpus::polynomial_source(4, 64);
        let r = bench_program("polynomial", &src, &CompileOptions::default(), 1).expect("benches");
        let module = compile_mode(&src, &CompileOptions::default(), true).expect("compiles");
        let mut loops = Vec::new();
        innermost_loops(&module.ir.root, &mut loops);
        assert_eq!(r.pipelined_loops.len(), loops.len());
        assert!(r.pipelined_loops.len() >= module.cell_code.pipelined.len());
    }

    #[test]
    fn native_bench_races_and_serializes() {
        let report = run_native_bench(
            &[("polynomial".to_owned(), corpus::polynomial_source(4, 64))],
            &CompileOptions::default(),
            1,
            3,
        )
        .expect("benches");
        assert_eq!(report.programs.len(), 1);
        let r = &report.programs[0];
        assert!(r.bitwise_equal, "executors must agree before timing");
        assert!(r.cycles > 0);
        assert!(r.sim_wall_ms > 0.0);
        assert!(r.speedup > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"native_wall_ms\""), "{json}");
        assert!(json.contains("\"all_bitwise_equal\": true"), "{json}");
        assert!(report.table().contains("speedup"));
    }

    #[test]
    fn json_escapes_are_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
