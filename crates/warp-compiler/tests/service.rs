//! End-to-end tests of the resilient compile service: budgets,
//! cancellation, graceful degradation, and the circuit breaker driven
//! against the real pipeline on a deterministic clock — no real sleeps,
//! no wall-clock flakiness.
//!
//! The deterministic-time trick: a [`ManualClock`] with auto-advance
//! charges one tick per deadline poll, so "wall time" is the number of
//! cooperative cancellation checks a job performs. The Table 7-1 corpus
//! polls a handful of times per compile (eight pass boundaries plus a
//! few skew-enumeration polls — their timelines are under 10k events),
//! while the runaway program below enumerates millions of events and
//! polls hundreds of times. A deadline between the two kills only the
//! runaway, deterministically.

use std::sync::Arc;
use warp_common::{CancelReason, CancelToken, ManualClock};
use warp_compiler::{
    audit::{self, AuditOptions},
    corpus, CompileFailure, CompileOptions, CompileService, ServiceConfig, Session, SessionCtrl,
};
use warp_service::{ExecutorConfig, FailureKind, JobOutcome};

/// A structurally valid two-cell program whose skew analysis must
/// enumerate two million I/O events — far beyond any deadline a test
/// arms, and far beyond the Table 7-1 corpus (whose timelines stay
/// under 10k events). It must be multi-cell: a single-cell array has
/// no interior queues and the skew pass skips the enumeration.
const RUNAWAY: &str = "module runaway (xs in, ys out) float xs[1000000]; float ys[1000000]; \
    cellprogram (cid : 0 : 1) begin function f begin float v; int i; \
    for i := 0 to 999999 do begin receive (L, X, v, xs[i]); send (R, X, v * 2.0, ys[i]); end; \
    end call f; end";

/// One tick per clock read: a job's budget is its poll count.
fn auto_clock() -> Arc<ManualClock> {
    Arc::new(ManualClock::with_auto_advance(0, 1))
}

fn service(deadline_ticks: u64) -> CompileService {
    CompileService::new(
        CompileOptions::default(),
        ServiceConfig {
            exec: ExecutorConfig {
                queue_capacity: 16,
                deadline_ticks,
                ..ExecutorConfig::default()
            },
            ..ServiceConfig::default()
        },
        auto_clock(),
    )
}

/// The acceptance scenario: a pathological job submitted alongside the
/// full Table 7-1 corpus is killed by its budget with a structured
/// timeout report while every other job completes.
#[test]
fn runaway_job_is_killed_by_its_budget_while_the_corpus_completes() {
    // 200 polls of budget: corpus programs use ~a dozen each, the
    // runaway needs hundreds before its skew enumeration would finish.
    let mut svc = service(200);
    let (first, rest) = corpus::TABLE_7_1.split_at(2);
    for (name, source) in first {
        assert!(svc.submit(*name, *source).is_accepted());
    }
    // Sandwich the runaway between corpus programs: jobs before and
    // after it must be unaffected.
    assert!(svc.submit("runaway", RUNAWAY).is_accepted());
    for (name, source) in rest {
        assert!(svc.submit(*name, *source).is_accepted());
    }

    let batch = svc.run();
    assert_eq!(batch.jobs.len(), 6);
    assert_eq!(batch.succeeded(), 5, "{}", batch.summary());
    assert_eq!(batch.timed_out(), 1, "{}", batch.summary());
    assert!(!batch.is_healthy());

    for job in &batch.jobs {
        if job.name == "runaway" {
            let JobOutcome::TimedOut { reason, attempts } = &job.outcome else {
                panic!("runaway must time out, got {}", job.outcome.label());
            };
            assert!(
                matches!(reason, CancelReason::DeadlineExceeded { .. }),
                "{reason}"
            );
            assert_eq!(*attempts, 1);
            assert!(job.wall_ticks >= 200, "the budget was consumed");
        } else {
            assert!(
                job.outcome.is_success(),
                "{} must complete, got {}",
                job.name,
                job.outcome.label()
            );
            assert!(!job.outcome.is_degraded());
        }
    }
    let summary = batch.summary();
    assert!(summary.contains("runaway"), "{summary}");
    assert!(summary.contains("timeout"), "{summary}");
}

/// A deadline that expires mid-pass (inside the skew enumeration, not
/// at a pass boundary) comes back as a structured
/// [`CompileFailure::Interrupted`] naming the pass — not a hang, not a
/// generic diagnostic.
#[test]
fn deadline_exceeded_mid_pass_is_a_structured_timeout() {
    let clock = auto_clock();
    let token = CancelToken::with_deadline(clock, 50);
    let failure = Session::new(CompileOptions::default())
        .with_ctrl(SessionCtrl {
            cancel: token,
            ..SessionCtrl::default()
        })
        .try_compile(RUNAWAY)
        .expect_err("a 50-poll budget cannot cover a 2M-event enumeration");
    let CompileFailure::Interrupted { pass, reason } = failure else {
        panic!("expected Interrupted, got {failure}");
    };
    assert_eq!(pass, "skew", "the enumeration is where the time goes");
    assert!(
        matches!(reason, CancelReason::DeadlineExceeded { deadline: 50, .. }),
        "{reason}"
    );
}

/// Cancelling a token before the session starts stops the pipeline at
/// the first pass boundary.
#[test]
fn cancelled_session_stops_at_the_first_checkpoint() {
    let token = CancelToken::new(auto_clock());
    token.cancel();
    let failure = Session::new(CompileOptions::default())
        .with_ctrl(SessionCtrl {
            cancel: token,
            ..SessionCtrl::default()
        })
        .try_compile(corpus::POLYNOMIAL)
        .expect_err("a cancelled token must stop the session");
    let CompileFailure::Interrupted { pass, reason } = failure else {
        panic!("expected Interrupted, got {failure}");
    };
    assert_eq!(pass, "frontend");
    assert_eq!(reason, CancelReason::Cancelled);
}

/// The cell-program size ceiling rejects an oversized loop nest before
/// the expensive analyses, with a structured report of the excess.
#[test]
fn size_ceiling_rejects_oversized_programs_as_permanent() {
    let mut svc = CompileService::new(
        CompileOptions::default(),
        ServiceConfig {
            max_cell_cycles: 10_000,
            ..ServiceConfig::default()
        },
        auto_clock(),
    );
    assert!(svc.submit("runaway", RUNAWAY).is_accepted());
    let batch = svc.run();
    let JobOutcome::Failed { kind, error, .. } = &batch.jobs[0].outcome else {
        panic!("expected Failed, got {}", batch.jobs[0].outcome.label());
    };
    assert_eq!(*kind, FailureKind::Permanent, "size is deterministic");
    let CompileFailure::TooLarge {
        pass,
        what,
        size,
        limit,
    } = error
    else {
        panic!("expected TooLarge, got {error}");
    };
    assert_eq!(*pass, "cell-codegen");
    assert_eq!(*what, "cell cycles");
    assert_eq!(*limit, 10_000);
    assert!(*size > *limit);
}

/// When the skew event budget runs out the compile still succeeds with
/// conservative closed-form bounds, the module is flagged `degraded`,
/// and the guarantee audit (which simulates at the claimed skew) still
/// passes — the bound is sound, just not claimed tight.
#[test]
fn degraded_skew_fallback_still_passes_the_guarantee_audit() {
    let mut svc = CompileService::new(
        CompileOptions::default(),
        ServiceConfig {
            skew_max_events: 8,
            ..ServiceConfig::default()
        },
        auto_clock(),
    );
    assert!(svc.submit("conv1d", corpus::ONED_CONV).is_accepted());
    let batch = svc.run();
    assert_eq!(batch.succeeded(), 1, "{}", batch.summary());
    assert_eq!(batch.degraded(), 1, "{}", batch.summary());
    assert!(batch.is_healthy(), "degraded is not unhealthy");

    let JobOutcome::Success(success) = &batch.jobs[0].outcome else {
        panic!("expected success, got {}", batch.jobs[0].outcome.label());
    };
    let module = &success.value;
    assert!(module.skew.degraded);

    let report = audit::audit(module, &AuditOptions::default());
    assert!(report.passed(), "{report}");
    let tightness = report
        .checks
        .iter()
        .find(|c| c.name == "skew-tightness")
        .expect("the audit always reports skew-tightness");
    assert!(
        tightness.skipped,
        "a degraded bound is sound but not claimed tight: {}",
        tightness.detail
    );
}

/// Three consecutive permanent failures trip the per-program breaker:
/// the fourth submission is refused without running the compiler, and
/// an operator reset reopens it.
#[test]
fn circuit_breaker_quarantines_a_repeatedly_failing_program() {
    const BROKEN: &str = "module broken (xs in) float xs[4]; \
        cellprogram (cid : 0 : 0) begin function f begin \
        this is not w2; end call f; end";
    let mut svc = CompileService::new(
        CompileOptions::default(),
        ServiceConfig {
            exec: ExecutorConfig {
                breaker_threshold: 3,
                ..ExecutorConfig::default()
            },
            ..ServiceConfig::default()
        },
        auto_clock(),
    );
    for round in 0..3 {
        assert!(svc.submit("broken", BROKEN).is_accepted());
        let batch = svc.run();
        assert_eq!(batch.failed(), 1, "round {round}: {}", batch.summary());
    }
    assert!(svc.is_quarantined("broken"));

    assert!(svc.submit("broken", BROKEN).is_accepted());
    let batch = svc.run();
    assert_eq!(batch.quarantined_jobs(), 1, "{}", batch.summary());
    assert_eq!(batch.quarantined, vec!["broken".to_owned()]);
    assert!(!batch.is_healthy());

    svc.reset_breaker("broken");
    assert!(!svc.is_quarantined("broken"));
    // A (fixed) program under the same name runs again after the reset.
    assert!(svc.submit("broken", corpus::POLYNOMIAL).is_accepted());
    let batch = svc.run();
    assert_eq!(batch.succeeded(), 1, "{}", batch.summary());
}

/// Load shedding at the admission boundary: a full queue rejects with a
/// retry hint instead of queueing unboundedly.
#[test]
fn full_queue_sheds_load_with_a_retry_hint() {
    let mut svc = CompileService::new(
        CompileOptions::default(),
        ServiceConfig {
            exec: ExecutorConfig {
                queue_capacity: 2,
                retry_after_ticks: 777,
                ..ExecutorConfig::default()
            },
            ..ServiceConfig::default()
        },
        auto_clock(),
    );
    assert!(svc.submit("a", corpus::POLYNOMIAL).is_accepted());
    assert!(svc.submit("b", corpus::POLYNOMIAL).is_accepted());
    match svc.submit("c", corpus::POLYNOMIAL) {
        warp_service::Admission::Rejected { retry_after_ticks } => {
            assert_eq!(retry_after_ticks, 777);
        }
        warp_service::Admission::Accepted { .. } => panic!("queue of 2 must shed the third job"),
    }
    assert_eq!(svc.queue_len(), 2);
    let batch = svc.run();
    assert_eq!(batch.succeeded(), 2);
}
