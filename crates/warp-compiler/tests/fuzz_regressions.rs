//! Replays the checked-in crasher corpus (`tests/crashers/`) through
//! the guarded pipeline and demands a clean structured verdict for
//! every file — no panic, no hang, no wrapped arithmetic.
//!
//! Each file captures one hostile input class the fuzzer generates:
//! deep expression and statement nesting (parser/sema/lowering
//! recursion guards), mid-token truncation, invalid UTF-8, embedded
//! NUL bytes, and literals sized to overflow i64 parsing, f64
//! finiteness, and trip-count arithmetic. When `w2c --fuzz` finds a
//! new crasher, its shrunk repro belongs here so the fix is pinned
//! forever.

use std::time::Duration;
use warp_compiler::fuzz::{check_case, FuzzOptions, FuzzVerdict};

fn guarded_opts() -> FuzzOptions {
    FuzzOptions {
        case_timeout: Duration::from_secs(10),
        ..FuzzOptions::default()
    }
}

/// Every crasher file must come back as a structured verdict. The
/// corpus holds inputs that once looked dangerous (or still would be
/// without the guards); none of them may compile silently either —
/// they are all malformed on purpose.
#[test]
fn crasher_corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/crashers");
    let opts = guarded_opts();
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(dir).expect("crashers directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "w2") {
            continue;
        }
        let bytes = std::fs::read(&path).expect("crasher readable");
        let verdict = check_case(&bytes, &opts);
        match verdict {
            FuzzVerdict::Rejected | FuzzVerdict::Budget | FuzzVerdict::Overflow => {}
            other => panic!(
                "crasher `{}` must be rejected with a structured error, got {other:?}",
                path.display()
            ),
        }
        replayed += 1;
    }
    assert!(replayed >= 6, "only {replayed} crasher files replayed");
}

/// The hostile classes individually, with the verdict each must hit —
/// pinning not just "no crash" but *which* guard answers.
#[test]
fn deep_nesting_is_rejected_by_the_parser_guard() {
    let bytes = include_bytes!("crashers/deep-nesting.w2");
    let verdict = check_case(bytes, &guarded_opts());
    assert!(matches!(verdict, FuzzVerdict::Rejected), "{verdict:?}");
}

#[test]
fn deep_statement_chains_are_rejected_not_overflowed() {
    let bytes = include_bytes!("crashers/deep-statements.w2");
    let verdict = check_case(bytes, &guarded_opts());
    assert!(matches!(verdict, FuzzVerdict::Rejected), "{verdict:?}");
}

#[test]
fn truncated_source_is_rejected_with_diagnostics() {
    let bytes = include_bytes!("crashers/truncated.w2");
    let verdict = check_case(bytes, &guarded_opts());
    assert!(matches!(verdict, FuzzVerdict::Rejected), "{verdict:?}");
}

#[test]
// The whole point of this corpus file is that it is not valid UTF-8;
// the lint fires because rustc can see that statically.
#[allow(invalid_from_utf8)]
fn non_utf8_input_is_rejected_at_the_boundary() {
    let bytes = include_bytes!("crashers/non-utf8.w2");
    assert!(std::str::from_utf8(bytes).is_err(), "corpus file decayed");
    let verdict = check_case(bytes, &guarded_opts());
    assert!(matches!(verdict, FuzzVerdict::Rejected), "{verdict:?}");
}

#[test]
fn nul_bytes_are_rejected_with_diagnostics() {
    let bytes = include_bytes!("crashers/nul-bytes.w2");
    let verdict = check_case(bytes, &guarded_opts());
    assert!(matches!(verdict, FuzzVerdict::Rejected), "{verdict:?}");
}

#[test]
fn huge_literals_are_rejected_not_wrapped() {
    let bytes = include_bytes!("crashers/huge-literals.w2");
    let verdict = check_case(bytes, &guarded_opts());
    assert!(matches!(verdict, FuzzVerdict::Rejected), "{verdict:?}");
}
