//! Horizontal microcode for the Warp cell.
//!
//! A [`MicroInst`] is one wide instruction word: each field steers one
//! functional unit for one cycle, and all fields fire in parallel (the
//! real word is over 200 bits, paper §2.4). The sequencer executes blocks
//! straight-line and loops under IU control.

use std::fmt;
use w2_lang::ast::{Chan, Dir};
use warp_ir::{CmpOp, HostSlot, LoopId};

/// A physical register number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An operand of a functional-unit operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// A register read.
    Reg(Reg),
    /// A float literal from the instruction word.
    Imm(f32),
    /// A boolean literal.
    ImmB(bool),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
            Operand::ImmB(v) => write!(f, "#{v}"),
        }
    }
}

/// Operation selector for the FPU fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Float add.
    Add,
    /// Float subtract.
    Sub,
    /// Float multiply.
    Mul,
    /// Float divide.
    Div,
    /// Float negate.
    Neg,
    /// Float comparison producing a boolean.
    Cmp(CmpOp),
    /// Boolean and.
    And,
    /// Boolean or.
    Or,
    /// Boolean not.
    Not,
    /// `dst = src0 ? src1 : src2`.
    Select,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "fadd",
            AluOp::Sub => "fsub",
            AluOp::Mul => "fmul",
            AluOp::Div => "fdiv",
            AluOp::Neg => "fneg",
            AluOp::Cmp(CmpOp::Eq) => "fcmp.eq",
            AluOp::Cmp(CmpOp::Ne) => "fcmp.ne",
            AluOp::Cmp(CmpOp::Lt) => "fcmp.lt",
            AluOp::Cmp(CmpOp::Le) => "fcmp.le",
            AluOp::Cmp(CmpOp::Gt) => "fcmp.gt",
            AluOp::Cmp(CmpOp::Ge) => "fcmp.ge",
            AluOp::And => "band",
            AluOp::Or => "bor",
            AluOp::Not => "bnot",
            AluOp::Select => "select",
        };
        write!(f, "{s}")
    }
}

/// One FPU field: the operation, destination, and operands.
#[derive(Clone, Debug, PartialEq)]
pub struct FpuField {
    /// Operation selector.
    pub op: AluOp,
    /// Destination register; `None` discards the result.
    pub dst: Option<Reg>,
    /// Operands (1–3 depending on `op`).
    pub srcs: Vec<Operand>,
}

impl fmt::Display for FpuField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dst {
            Some(d) => write!(f, "{} {d}", self.op)?,
            None => write!(f, "{} _", self.op)?,
        }
        for s in &self.srcs {
            write!(f, ", {s}")?;
        }
        Ok(())
    }
}

/// Where a memory operation's address comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AddrSource {
    /// Literal address in the instruction word (scalars, spill slots).
    Literal(u16),
    /// The next word from the systolic Adr path FIFO (IU-generated).
    AdrQueue,
}

impl fmt::Display for AddrSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrSource::Literal(a) => write!(f, "@{a}"),
            AddrSource::AdrQueue => write!(f, "@adr"),
        }
    }
}

/// One memory-port field.
#[derive(Clone, Debug, PartialEq)]
pub enum MemField {
    /// Read memory into a register.
    Read {
        /// Address source.
        addr: AddrSource,
        /// Destination register; `None` discards (never emitted normally).
        dst: Option<Reg>,
    },
    /// Write an operand to memory.
    Write {
        /// Address source.
        addr: AddrSource,
        /// Value to write.
        src: Operand,
    },
}

impl fmt::Display for MemField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemField::Read { addr, dst: Some(d) } => write!(f, "ld {d}, {addr}"),
            MemField::Read { addr, dst: None } => write!(f, "ld _, {addr}"),
            MemField::Write { addr, src } => write!(f, "st {addr}, {src}"),
        }
    }
}

/// One I/O-port field.
#[derive(Clone, Debug, PartialEq)]
pub enum IoField {
    /// Dequeue from the channel into a register.
    Recv {
        /// Destination register; `None` discards the word (the pop still
        /// happens).
        dst: Option<Reg>,
        /// Host data source, meaningful on the boundary cell only.
        ext: Option<HostSlot>,
    },
    /// Enqueue an operand to the channel.
    Send {
        /// Value to enqueue.
        src: Operand,
        /// Host destination, meaningful on the boundary cell only.
        ext: Option<HostSlot>,
    },
}

impl fmt::Display for IoField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoField::Recv { dst: Some(d), .. } => write!(f, "recv {d}"),
            IoField::Recv { dst: None, .. } => write!(f, "recv _"),
            IoField::Send { src, .. } => write!(f, "send {src}"),
        }
    }
}

/// One horizontal microinstruction: every field executes in the same
/// cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MicroInst {
    /// The add-class FPU field.
    pub fadd: Option<FpuField>,
    /// The multiplier FPU field.
    pub fmul: Option<FpuField>,
    /// The two memory ports.
    pub mem: [Option<MemField>; 2],
    /// The four I/O ports, indexed by [`crate::machine::io_index`].
    pub io: [Option<IoField>; 4],
}

impl MicroInst {
    /// Returns `true` if no field is used (a NOP cycle).
    pub fn is_nop(&self) -> bool {
        self.fadd.is_none()
            && self.fmul.is_none()
            && self.mem.iter().all(Option::is_none)
            && self.io.iter().all(Option::is_none)
    }
}

impl fmt::Display for MicroInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(a) = &self.fadd {
            parts.push(format!("A[{a}]"));
        }
        if let Some(m) = &self.fmul {
            parts.push(format!("M[{m}]"));
        }
        for (i, m) in self.mem.iter().enumerate() {
            if let Some(m) = m {
                parts.push(format!("m{i}[{m}]"));
            }
        }
        const PORT: [&str; 4] = ["LX", "LY", "RX", "RY"];
        for (i, io) in self.io.iter().enumerate() {
            if let Some(io) = io {
                parts.push(format!("{}[{io}]", PORT[i]));
            }
        }
        if parts.is_empty() {
            write!(f, "nop")
        } else {
            write!(f, "{}", parts.join(" "))
        }
    }
}

/// One I/O event of a block's schedule (used by the skew analysis and the
/// host program generator).
#[derive(Clone, Debug, PartialEq)]
pub struct IoEvent {
    /// Issue cycle relative to the block start.
    pub cycle: u32,
    /// Neighbour direction.
    pub dir: Dir,
    /// Channel.
    pub chan: Chan,
    /// `true` for a receive (dequeue), `false` for a send.
    pub is_recv: bool,
    /// Host binding at the array boundary.
    pub ext: Option<HostSlot>,
}

/// The scheduled microcode of one basic block.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockCode {
    /// The instructions; index = cycle within the block.
    pub insts: Vec<MicroInst>,
    /// All queue operations, sorted by cycle.
    pub io_events: Vec<IoEvent>,
    /// Issue cycle of each Adr-queue memory operation, in slot order
    /// (these become the IU's deadlines).
    pub adr_deadlines: Vec<u32>,
    /// The IR block this code was compiled from; `None` for blocks the
    /// code generator synthesizes (software-pipelining prologues and
    /// epilogues), which never carry IU address slots.
    pub source: Option<warp_ir::BlockId>,
}

impl BlockCode {
    /// Number of cycles (= instructions) in the block.
    pub fn len(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Returns `true` if the block is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// The structured microprogram of a cell: code regions mirror the IR
/// region tree so the sequencer (and simulator) can loop bodies without
/// unrolling.
#[derive(Clone, Debug, PartialEq)]
pub enum CodeRegion {
    /// Straight-line code.
    Block(BlockCode),
    /// A counted loop; the IU sends the continue/terminate signal at each
    /// iteration boundary (paper §6.3.1).
    Loop {
        /// Which IR loop this is.
        id: LoopId,
        /// Iteration count.
        count: u64,
        /// Loop body.
        body: Vec<CodeRegion>,
    },
}

impl CodeRegion {
    /// Static instruction count (loop bodies counted once) — the "length
    /// of µcode" metric of Table 7-1.
    pub fn static_len(&self) -> u32 {
        match self {
            CodeRegion::Block(b) => b.len(),
            CodeRegion::Loop { body, .. } => body.iter().map(CodeRegion::static_len).sum(),
        }
    }

    /// Total cycles of one execution (loop bodies multiplied by their
    /// counts).
    pub fn dynamic_len(&self) -> u64 {
        match self {
            CodeRegion::Block(b) => u64::from(b.len()),
            CodeRegion::Loop { count, body, .. } => {
                count * body.iter().map(CodeRegion::dynamic_len).sum::<u64>()
            }
        }
    }
}

/// The complete compiled cell program.
#[derive(Clone, Debug, PartialEq)]
pub struct CellCode {
    /// Module name.
    pub name: String,
    /// Top-level code regions, in execution order.
    pub regions: Vec<CodeRegion>,
    /// Registers used (max over blocks).
    pub regs_used: u32,
    /// Scratch memory words reserved for register spills.
    pub scratch_words: u32,
    /// Loops that were modulo-scheduled (see [`crate::modulo`]), in
    /// region order.
    pub pipelined: Vec<PipelineInfo>,
}

/// Summary of one software-pipelined (modulo-scheduled) loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineInfo {
    /// The source loop.
    pub id: LoopId,
    /// Initiation interval: cycles between successive iteration starts.
    pub ii: u32,
    /// Stage count: iterations in flight in the steady state.
    pub stages: u32,
    /// Kernel executions (`count − stages + 1`).
    pub kernel_count: u64,
}

impl CellCode {
    /// Static µcode length — the Table 7-1 "cell µcode" metric.
    pub fn static_len(&self) -> u32 {
        self.regions.iter().map(CodeRegion::static_len).sum()
    }

    /// Cycles of one complete execution on one cell.
    pub fn dynamic_len(&self) -> u64 {
        self.regions.iter().map(CodeRegion::dynamic_len).sum()
    }

    /// A human-readable microcode listing with loop structure.
    pub fn listing(&self) -> String {
        fn region(out: &mut String, r: &CodeRegion, indent: usize) {
            let pad = "  ".repeat(indent);
            match r {
                CodeRegion::Block(b) => {
                    for (cycle, inst) in b.insts.iter().enumerate() {
                        out.push_str(&format!(
                            "{pad}{cycle:>4}: {inst}
"
                        ));
                    }
                }
                CodeRegion::Loop { id, count, body } => {
                    out.push_str(&format!(
                        "{pad}loop {id} x{count} {{
"
                    ));
                    for r in body {
                        region(out, r, indent + 1);
                    }
                    out.push_str(&format!(
                        "{pad}}}
"
                    ));
                }
            }
        }
        let mut out = format!(
            "; cell program `{}`: {} instructions, {} registers, {} spill words
",
            self.name,
            self.static_len(),
            self.regs_used,
            self.scratch_words
        );
        for p in &self.pipelined {
            out.push_str(&format!(
                "; pipelined {}: ii={} stages={} kernel x{}
",
                p.id, p.ii, p.stages, p.kernel_count
            ));
        }
        for r in &self.regions {
            region(&mut out, r, 0);
        }
        out
    }
}

impl warp_common::Artifact for CellCode {
    fn kind(&self) -> &'static str {
        "cell-ucode"
    }

    fn dump(&self) -> String {
        self.listing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_detection_and_display() {
        let mut inst = MicroInst::default();
        assert!(inst.is_nop());
        assert_eq!(inst.to_string(), "nop");
        inst.fadd = Some(FpuField {
            op: AluOp::Add,
            dst: Some(Reg(3)),
            srcs: vec![Operand::Reg(Reg(1)), Operand::Imm(2.0)],
        });
        assert!(!inst.is_nop());
        assert_eq!(inst.to_string(), "A[fadd r3, r1, #2]");
    }

    #[test]
    fn mem_io_display() {
        let mut inst = MicroInst::default();
        inst.mem[0] = Some(MemField::Read {
            addr: AddrSource::AdrQueue,
            dst: Some(Reg(5)),
        });
        inst.io[2] = Some(IoField::Send {
            src: Operand::Reg(Reg(5)),
            ext: None,
        });
        assert_eq!(inst.to_string(), "m0[ld r5, @adr] RX[send r5]");
    }

    #[test]
    fn region_lengths() {
        let block = |n: usize| {
            CodeRegion::Block(BlockCode {
                insts: vec![MicroInst::default(); n],
                io_events: vec![],
                adr_deadlines: vec![],
                source: None,
            })
        };
        let r = CodeRegion::Loop {
            id: LoopId(0),
            count: 10,
            body: vec![block(3), block(2)],
        };
        assert_eq!(r.static_len(), 5);
        assert_eq!(r.dynamic_len(), 50);
        let code = CellCode {
            name: "t".into(),
            regions: vec![block(4), r],
            regs_used: 2,
            scratch_words: 0,
            pipelined: vec![],
        };
        assert_eq!(code.static_len(), 9);
        assert_eq!(code.dynamic_len(), 54);
    }
}
